"""Audit aggregation integrity in business spreadsheets.

A standalone use of Algorithm 2 (derived cell detection): given CSV
exports of business spreadsheets, verify that every line labelled as
an aggregate really is one, and flag 'Total' rows whose numbers do not
add up — the kind of spreadsheet error the UCheck line of work (cited
by the paper) hunts for.

Usage::

    python examples/spreadsheet_audit.py
"""

from __future__ import annotations

from repro import read_table_text
from repro.core.derived import DerivedDetector
from repro.core.keywords import contains_aggregation_keyword

BOOKS = {
    "q1_sales.csv": """\
Division,Jan,Feb,Mar
North,120,130,125
South,210,205,220
West,95,100,98
Total,425,435,443
""",
    "q2_sales.csv": """\
Division,Apr,May,Jun
North,118,122,127
South,215,212,218
West,99,97,101
Total,432,431,499
""",
    "headcount.csv": """\
Team,Engineers,Sales
Platform,24,3
Apps,31,5
Average,27.5,4
""",
}


def audit(name: str, text: str) -> None:
    table = read_table_text(text)
    detector = DerivedDetector(delta=0.1, coverage=0.9)
    verified = detector.detect(table)

    print(f"\n{name}")
    print("-" * len(name))
    for i in range(table.n_rows):
        row = table.row(i)
        if not any(contains_aggregation_keyword(v) for v in row):
            continue
        numeric_cells = [
            (i, j) for j, v in enumerate(row) if v.strip().replace(
                ".", "", 1).replace(",", "").lstrip("-").isdigit()
        ]
        confirmed = [cell for cell in numeric_cells if cell in verified]
        if not numeric_cells:
            continue
        if len(confirmed) == len(numeric_cells):
            print(f"  line {i}: OK — all {len(numeric_cells)} aggregate "
                  "cells verified")
        else:
            # Algorithm 2 verifies whole candidate rows: if any column
            # breaks the required coverage the aggregate line as a
            # whole fails the audit.
            values = ", ".join(table.cell(i, j) for _, j in numeric_cells)
            print(f"  line {i}: MISMATCH — aggregate row [{values}] does "
                  "not reproduce from the cells above it")


def main() -> None:
    print("Auditing aggregation integrity with Algorithm 2 ...")
    for name, text in BOOKS.items():
        audit(name, text)
    print(
        "\n(q2_sales.csv column Jun is intentionally corrupted: "
        "432+... does not reach 499.)"
    )


if __name__ == "__main__":
    main()
