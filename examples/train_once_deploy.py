"""Train once, persist, and deploy: the production workflow.

A downstream service should not retrain Strudel per request.  This
example trains the cell classifier, saves it with the pickle-free
persistence layer, reloads it in a fresh "deployment" step, and runs
the full extract-to-relation flow on an incoming file.

Usage::

    python examples/train_once_deploy.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import CellClass, make_corpus
from repro.core.extraction import extract_tables
from repro.core.strudel import StrudelCellClassifier, StructureResult
from repro.dialect.detector import detect_dialect
from repro.io.reader import read_table_text
from repro.io.writer import write_csv_text
from repro.ml.persistence import load_cell_classifier, save_cell_classifier

INCOMING = """\
Quarterly Inventory Report
Prepared by the statistics unit
,,,
Warehouse,Widgets,Gadgets,Gizmos
East,120,45,78
West,95,61,80
Total,215,106,158
,,,
Note: counts exclude returned units.
"""


def train_and_save(model_dir: Path) -> None:
    print("[training] generating corpus and fitting Strudel-C ...")
    corpus = make_corpus("govuk", seed=5, scale=0.05)
    model = StrudelCellClassifier(n_estimators=30, random_state=0)
    model.fit(corpus.files)
    save_cell_classifier(model, model_dir)
    size_kb = sum(
        f.stat().st_size for f in model_dir.rglob("*") if f.is_file()
    ) / 1024
    print(f"[training] model saved to {model_dir} ({size_kb:.0f} KiB)")


def deploy_and_serve(model_dir: Path, text: str) -> None:
    print("[deploy] loading persisted model (no retraining) ...")
    model = load_cell_classifier(model_dir)

    dialect = detect_dialect(text)
    table = read_table_text(text, dialect)
    line_classes = model.line_classifier.predict(table)
    cell_classes = model.predict(table)
    result = StructureResult(
        dialect=dialect,
        table=table,
        line_classes=line_classes,
        cell_classes=cell_classes,
    )

    print(f"[deploy] dialect: {dialect.describe()}")
    tables = extract_tables(result)
    for index, extracted in enumerate(tables):
        print(
            f"[deploy] table {index}: {extracted.n_rows} rows, "
            f"columns={extracted.columns}"
        )
        if extracted.metadata:
            print(f"         metadata: {extracted.metadata[0]!r}")
        print("         relation:")
        print(
            "\n".join(
                "           " + line
                for line in write_csv_text(
                    extracted.to_grid(include_group_column=False)
                ).splitlines()
            )
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as scratch:
        model_dir = Path(scratch) / "strudel-model"
        train_and_save(model_dir)
        deploy_and_serve(model_dir, INCOMING)


if __name__ == "__main__":
    main()
