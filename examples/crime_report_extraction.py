"""Extract a clean relational table from a verbose crime report.

The paper's motivating scenario (Figure 1 shows a "Crime In the US"
file): verbose CSV files cannot be ingested by an RDBMS because
metadata, group headers, derived lines and footnotes are interleaved
with the actual data.  Structure detection makes them machine-readable.

This example:

1. trains Strudel on the CIUS personality (templated crime reports);
2. takes a verbose report and uses the line/cell predictions to strip
   everything that is not header or data;
3. emits the clean relational table and an extraction report.

Usage::

    python examples/crime_report_extraction.py
"""

from __future__ import annotations

from repro import CellClass, StrudelPipeline, make_corpus
from repro.io.writer import write_csv_text

VERBOSE_REPORT = """\
Crime in the United States, Annual Report 2019
Offense analysis by drug type
,,,
Drug type,Arrests,Seizures,Convictions
Sale/Manufacturing:,,,
Heroin,1204,388,611
Cocaine,2383,771,1299
Marijuana,3350,1205,1786
Total,6937,2364,3696
Possession:,,,
Heroin,8114,2441,4310
Cocaine,14091,4189,7717
Marijuana,29226,8712,16002
Total,51431,15342,28029
,,,
1 Rounded to the nearest whole number.
Source: Federal Bureau of Investigation.
"""


def extract_relation(pipeline: StrudelPipeline, text: str):
    """Split a verbose file into header, data rows and everything else."""
    result = pipeline.analyze(text)
    header_rows: list[list[str]] = []
    data_rows: list[list[str]] = []
    dropped: dict[str, int] = {}
    for i in range(result.table.n_rows):
        klass = result.line_classes[i]
        if klass is CellClass.HEADER:
            header_rows.append(result.table.row(i))
        elif klass is CellClass.DATA:
            data_rows.append(result.table.row(i))
        elif klass is not CellClass.EMPTY:
            dropped[klass.value] = dropped.get(klass.value, 0) + 1
    return result, header_rows, data_rows, dropped


def main() -> None:
    print("Training on the CIUS personality (templated crime reports) ...")
    corpus = make_corpus("cius", seed=3, scale=0.15)
    pipeline = StrudelPipeline(n_estimators=40, random_state=0)
    pipeline.fit(corpus.files)

    result, header, data, dropped = extract_relation(
        pipeline, VERBOSE_REPORT
    )

    print("\nExtraction report")
    print("-" * 40)
    print(f"header lines kept : {len(header)}")
    print(f"data lines kept   : {len(data)}")
    for klass, count in sorted(dropped.items()):
        print(f"dropped {klass:<9}: {count} lines")

    print("\nClean relational table:")
    print(write_csv_text(header + data), end="")

    # Group cells inside data lines (e.g. 'Sale/Manufacturing:') are
    # section labels, not values; show how the cell classifier exposes
    # them for downstream normalization.
    group_cells = [
        (i, j)
        for (i, j), klass in result.cell_classes.items()
        if klass is CellClass.GROUP
    ]
    if group_cells:
        print("\nsection-label cells spotted by Strudel-C:")
        for i, j in sorted(group_cells):
            print(f"  line {i}, col {j}: {result.table.cell(i, j)!r}")


if __name__ == "__main__":
    main()
