"""Batch-process an "open data portal" of mixed-dialect files.

Open data portals (data.gov.uk, govdata.de, ...) publish verbose
plain-text files under wildly different dialects — the paper builds
its GovUK and Mendeley corpora from exactly such portals.  This
example simulates a portal dump: files are serialized with assorted
delimiters and quote characters, then processed end to end (dialect
detection, parsing, structure detection) and summarized.

Usage::

    python examples/open_data_portal.py
"""

from __future__ import annotations

from collections import Counter

from repro import CellClass, Dialect, StrudelPipeline, make_corpus
from repro.io.writer import write_csv_text
from repro.ml.metrics import accuracy_score

PORTAL_DIALECTS = [
    Dialect.standard(),
    Dialect(delimiter=";"),
    Dialect(delimiter="\t"),
    Dialect(delimiter="|", quotechar="'"),
]


def main() -> None:
    print("Training Strudel on the GovUK personality ...")
    train = make_corpus("govuk", seed=11, scale=0.05)
    pipeline = StrudelPipeline(n_estimators=30, random_state=0)
    pipeline.fit(train.files)

    print("Simulating a portal dump with mixed dialects ...")
    portal = make_corpus("govuk", seed=99, scale=0.03)
    dump = [
        (
            annotated,
            PORTAL_DIALECTS[index % len(PORTAL_DIALECTS)],
        )
        for index, annotated in enumerate(portal.files)
    ]

    print(f"Processing {len(dump)} files ...\n")
    dialect_hits = 0
    line_scores = []
    class_totals: Counter[str] = Counter()
    for annotated, dialect in dump:
        text = write_csv_text(annotated.table.rows(), dialect)
        result = pipeline.analyze(text)
        dialect_hits += result.dialect.delimiter == dialect.delimiter

        y_true = [
            annotated.line_labels[i]
            for i in annotated.non_empty_line_indices()
        ]
        y_pred = [
            result.line_classes[i]
            for i in annotated.non_empty_line_indices()
        ]
        line_scores.append(accuracy_score(y_true, y_pred))
        class_totals.update(k.value for k in y_pred)

    print("Portal processing summary")
    print("-" * 40)
    print(f"dialects recovered : {dialect_hits}/{len(dump)}")
    mean_accuracy = sum(line_scores) / len(line_scores)
    print(f"mean line accuracy : {mean_accuracy:.3f}")
    print("\npredicted line classes across the portal:")
    total = sum(class_totals.values())
    for klass in CellClass:
        if klass.value in class_totals:
            share = class_totals[klass.value] / total
            bar = "#" * int(50 * share)
            print(f"  {klass.value:<9} {share:>6.1%} {bar}")


if __name__ == "__main__":
    main()
