"""Quickstart: train Strudel and classify a verbose CSV file.

Runs in a few seconds:

1. generate a small annotated corpus (the SAUS personality);
2. fit the end-to-end Strudel pipeline (Strudel-L then Strudel-C);
3. analyze a raw CSV snippet — dialect detection included — and print
   every line with its predicted class, plus the per-cell view of the
   most interesting line.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import StrudelPipeline, make_corpus

RAW_FILE = """\
Table 12. Motor Vehicle Thefts by Region, 2020
All figures in thousands
,,,
Region,Q1,Q2,Q3,Q4
Northeast,113,98,121,134
Midwest,187,201,178,190
South,245,239,260,271
West,198,187,205,214
Total,743,725,764,809
,,,
Note: Preliminary figures. Columns may not add due to rounding.
"""


def main() -> None:
    print("Generating training corpus ...")
    corpus = make_corpus("saus", seed=7, scale=0.2)
    print(f"  {len(corpus)} files, {corpus.total_lines()} annotated lines")

    print("Training the Strudel pipeline (line + cell classifiers) ...")
    pipeline = StrudelPipeline(n_estimators=40, random_state=0)
    pipeline.fit(corpus.files)

    print("Analyzing a raw file ...\n")
    result = pipeline.analyze(RAW_FILE)
    print(f"detected dialect: {result.dialect.describe()}\n")

    print(f"{'line class':<10}  content")
    print("-" * 64)
    for i in range(result.table.n_rows):
        label = result.line_classes[i].value
        preview = ",".join(result.table.row(i))[:50]
        print(f"{label:<10}  {preview}")

    # Show the cell-level view of the 'Total' line: its leading cell is
    # a group label while the numbers are derived aggregates.
    total_row = next(
        i
        for i in range(result.table.n_rows)
        if result.table.cell(i, 0) == "Total"
    )
    print(f"\ncell classes of line {total_row} ('Total ...'):")
    for (i, j), klass in sorted(result.cell_classes.items()):
        if i == total_row:
            print(f"  col {j}: {result.table.cell(i, j):<8} -> {klass.value}")


if __name__ == "__main__":
    main()
