"""Table 5 — class distribution over SAUS + CIUS + DeEx."""

from __future__ import annotations

from repro.eval.experiments import class_distribution
from repro.eval.paper_values import TABLE5_CLASSES


def test_table5_class_distribution(benchmark, config, report):
    result = benchmark.pedantic(
        class_distribution, args=(config,), rounds=1, iterations=1
    )
    lines = [f"{'class':<10} {'lines':>8} {'cells':>10} {'cells/line':>11}"]
    for name, (n_lines, n_cells, per_line) in result.items():
        paper_lines, paper_cells, paper_ratio = TABLE5_CLASSES[name]
        lines.append(
            f"{name:<10} {n_lines:>8} {n_cells:>10} {per_line:>11.2f}"
        )
        lines.append(
            f"{'  (paper)':<10} {paper_lines:>8} {paper_cells:>10} "
            f"{paper_ratio:>11.2f}"
        )
    report("Table 5 — lines/cells per class (SAUS+CIUS+DeEx)",
           "\n".join(lines))

    # Shape checks mirroring the paper: data dominates both counts;
    # derived lines are the widest (they span whole numeric rows);
    # metadata and notes are the narrowest (mostly one cell per line).
    assert result["data"][0] == max(row[0] for row in result.values())
    ratios = {name: row[2] for name, row in result.items()}
    assert ratios["derived"] > ratios["metadata"]
    assert ratios["derived"] > ratios["notes"]
    assert ratios["metadata"] < 3.0
    assert ratios["notes"] < 3.0
