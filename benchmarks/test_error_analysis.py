"""Section 6.3.6 — analysis of difficult cases.

Runs Strudel-L on held-out DeEx files and prints the programmatic
version of the paper's difficult-case catalogue: every confusion pair
above the 10% threshold with its root cause, plus the data-sink share
(how much of the minority-class error mass lands on ``data``).
"""

from __future__ import annotations

from repro.eval.errors import (
    analyze_errors,
    data_sink_share,
    format_error_report,
)
from repro.eval.runner import evaluate_lines
from repro.types import CellClass


def test_difficult_case_analysis(benchmark, config, report):
    corpus = config.corpus("deex")
    files = corpus.files
    cut = max(1, int(0.8 * len(files)))

    def run():
        model = config.strudel_line()
        model.fit(files[:cut])
        y_true, y_pred = evaluate_lines(model, files[cut:])
        return (
            analyze_errors(y_true, y_pred),
            data_sink_share(y_true, y_pred),
        )

    patterns, sink = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Difficult cases (Section 6.3.6) — Strudel-L on held-out DeEx",
        format_error_report(patterns)
        + f"\n\nminority errors absorbed by 'data': {sink:.0%} "
        "(paper: misclassified minority lines tend toward 'data')",
    )

    # When a meaningful number of confusions exists, 'data' appears
    # among the sinks; with only a handful of stray errors on the
    # held-out slice there is nothing to assert beyond well-formedness.
    total_errors = sum(p.count for p in patterns)
    if total_errors >= 10:
        sinks = {p.predicted for p in patterns}
        assert CellClass.DATA in sinks
    for pattern in patterns:
        assert 0.0 < pattern.share_of_actual <= 1.0
    assert 0.0 <= sink <= 1.0
