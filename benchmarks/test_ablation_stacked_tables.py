"""Ablation — vertically stacked multi-table files (Section 6.3.6).

The paper names "the geographical characteristic of vertically
stacked multi-table files" as a top accuracy limiter: headers of
lower tables sit at unusual line positions, and interior metadata
captions break the one-file-one-table prior.  This benchmark
quantifies the effect by evaluating Strudel-L on two DeEx-like
corpora that differ only in tables-per-file.
"""

from __future__ import annotations

import dataclasses

from repro.datagen.corpora import DEEX_SPEC, _build
from repro.eval.runner import cross_validate_lines
from repro.types import CellClass


def _variant(tables_per_file: tuple[int, int], seed: int, scale: float):
    spec = dataclasses.replace(
        DEEX_SPEC,
        name=f"deex_stack_{tables_per_file[1]}",
        tables_per_file=tables_per_file,
    )
    return _build(spec, seed, scale)


def test_ablation_stacked_tables(benchmark, config, report):
    def run():
        results = {}
        for label, bounds in (
            ("single_table", (1, 1)),
            ("stacked_2_to_4", (2, 4)),
        ):
            corpus = _variant(bounds, seed=23, scale=config.scale)
            results[label] = cross_validate_lines(
                corpus,
                config.strudel_line,
                n_splits=config.n_splits,
                n_repeats=config.n_repeats,
                seed=config.seed,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'variant':<16} {'accuracy':>9} {'macro-F1':>9} "
        f"{'header F1':>10} {'metadata F1':>12}"
    ]
    for name, cv in results.items():
        scores = cv.scores
        lines.append(
            f"{name:<16} {scores.accuracy:>9.3f} {scores.macro_f1:>9.3f} "
            f"{scores.per_class_f1[CellClass.HEADER]:>10.3f} "
            f"{scores.per_class_f1[CellClass.METADATA]:>12.3f}"
        )
    report(
        "Ablation — vertically stacked multi-table files (DeEx-like)",
        "\n".join(lines)
        + "\npaper: stacked tables are a principal accuracy limiter "
        "(headers at unusual positions)",
    )

    single = results["single_table"].scores
    stacked = results["stacked_2_to_4"].scores
    # Stacking must not make the task easier; typically it costs
    # header/metadata accuracy.
    assert stacked.macro_f1 <= single.macro_f1 + 0.03
