"""Ablation S4 — Algorithm 2 parameters (Section 6.1.2).

"We do not observe a substantial difference in the result with
different values of the aggregation delta d and coverage c" — checked
by sweeping both around the paper's defaults (d=0.1, c=0.5).  The
keyword-anchor ablation quantifies the design decision the paper's
error analysis discusses: anchoring misses unanchored aggregates.
"""

from __future__ import annotations

import numpy as np

from repro.eval.experiments import (
    anchor_mode_ablation,
    derived_parameter_sweep,
)


def test_ablation_derived_parameter_sweep(benchmark, config, report):
    result = benchmark.pedantic(
        derived_parameter_sweep, args=(config,), rounds=1, iterations=1
    )
    lines = [f"{'delta':>7} {'coverage':>9} {'derived F1':>11}"]
    for (delta, coverage), f1 in sorted(result.items()):
        lines.append(f"{delta:>7g} {coverage:>9g} {f1:>11.3f}")
    report("Ablation S4 — aggregation delta/coverage sweep (SAUS)",
           "\n".join(lines))

    values = np.array(list(result.values()))
    # Insensitivity claim: the spread across settings stays modest.
    assert values.max() - values.min() < 0.35
    # The paper's default setting is within reach of the best.
    assert result[(0.1, 0.5)] >= values.max() - 0.25


def test_ablation_anchor_mode(benchmark, config, report):
    result = benchmark.pedantic(
        anchor_mode_ablation, args=(config,), rounds=1, iterations=1
    )
    report(
        "Ablation S4b — Algorithm 2 anchoring on Troy (derived line F1)",
        f"{'keyword':<12} {result['keyword']:.3f}\n"
        f"{'exhaustive':<12} {result['exhaustive']:.3f}\n"
        "paper: keyword anchoring misses Troy's unanchored derived "
        "lines (F1 .070)",
    )
    # Out of domain, keyword anchoring leaves derived recall on the
    # table; the exhaustive variant recovers (some of) it.
    assert result["exhaustive"] >= result["keyword"]
