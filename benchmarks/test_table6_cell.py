"""Table 6 (bottom) — cell classification: Line-C vs RNN-C vs Strudel-C."""

from __future__ import annotations

import pytest

from repro.eval.experiments import cell_comparison
from repro.eval.paper_values import TABLE6_CELL
from repro.eval.reporting import format_comparison_table
from repro.types import CellClass


@pytest.mark.parametrize("dataset", ["saus", "cius", "deex"])
def test_table6_cell_classification(benchmark, config, report, dataset):
    result = benchmark.pedantic(
        cell_comparison,
        args=(config,),
        kwargs={"datasets": (dataset,)},
        rounds=1,
        iterations=1,
    )[dataset]
    report(
        f"Table 6 (bottom) — cell classification F1 on {dataset}",
        format_comparison_table(
            f"dataset={dataset} scale={config.scale:g} "
            f"folds={config.n_splits}x{config.n_repeats}",
            {name: cv.scores for name, cv in result.items()},
            TABLE6_CELL[dataset],
        ),
    )

    strudel = result["Strudel-C"].scores
    line_c = result["Line-C"].scores
    rnn = result["RNN-C"].scores
    # Strudel-C surpasses both competitors on macro-average.
    assert strudel.macro_f1 >= line_c.macro_f1 - 0.02
    assert strudel.macro_f1 >= rnn.macro_f1 - 0.02
    # The paper's Line-C failure mode: group cells co-occur with data
    # in the same lines, so majority extension hurts group F1 relative
    # to Strudel-C.
    assert strudel.per_class_f1[CellClass.GROUP] >= (
        line_c.per_class_f1[CellClass.GROUP]
    )
    # Strudel-C's derived detection keeps derived F1 ahead of Line-C.
    assert strudel.per_class_f1[CellClass.DERIVED] >= (
        line_c.per_class_f1[CellClass.DERIVED] - 0.02
    )
