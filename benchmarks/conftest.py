"""Shared benchmark fixtures.

Every benchmark regenerates one paper table or figure and prints the
measured values next to the published ones.  The corpora and model
budgets come from one shared :class:`ExperimentConfig`, controlled by
the ``REPRO_*`` environment variables (see
:mod:`repro.eval.experiments`); defaults are laptop-friendly.

Rendered outputs are also appended to ``benchmarks/results/report.txt``
so the full reproduction record survives pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.experiments import ExperimentConfig

_RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """One config (and corpus cache) shared by all benchmarks."""
    return ExperimentConfig.from_env()


@pytest.fixture(scope="session", autouse=True)
def _fresh_report() -> None:
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / "report.txt").write_text("")


@pytest.fixture
def report(capsys):
    """Print a block to the real terminal and persist it to disk."""

    def _report(title: str, body: str) -> None:
        block = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}\n"
        with capsys.disabled():
            print(block)
        with open(_RESULTS_DIR / "report.txt", "a") as handle:
            handle.write(block)

    return _report
