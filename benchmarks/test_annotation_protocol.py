"""Annotation-protocol benchmark (Section 6.1.1).

Reproduces the paper's labelling statistics — three annotators,
majority vote, fourth-annotator tie-breaks, ~1% disagreement — and
measures how much the reconciliation buys when the reconciled labels
train Strudel-L versus labels from a single noisy annotator.
"""

from __future__ import annotations

from repro.datagen.annotators import NoisyAnnotator, annotate_corpus
from repro.eval.runner import evaluate_lines
from repro.ml.metrics import macro_f1
from repro.types import CONTENT_CLASSES, AnnotatedFile, Corpus


def _single_annotator_corpus(corpus, error_rate, seed):
    annotator = NoisyAnnotator(error_rate, rng=seed)
    files = [
        AnnotatedFile(
            name=annotated.name,
            table=annotated.table,
            line_labels=annotator.annotate_file(annotated),
            cell_labels=annotated.cell_labels,
        )
        for annotated in corpus
    ]
    return Corpus(name=f"{corpus.name}-single", files=files)


def test_annotation_protocol(benchmark, config, report):
    corpus = config.corpus("saus")
    files = corpus.files
    cut = max(1, int(0.8 * len(files)))
    clean_test = files[cut:]
    train_truth = Corpus("train", files[:cut])

    def run():
        error_rate = 0.05
        reconciled, stats = annotate_corpus(
            train_truth, error_rate=error_rate, seed=config.seed
        )
        single = _single_annotator_corpus(
            train_truth, error_rate, config.seed + 1
        )
        scores = {}
        for name, training in (
            ("ground_truth", train_truth),
            ("single_annotator", single),
            ("reconciled_3+1", reconciled),
        ):
            model = config.strudel_line()
            model.fit(training.files)
            y_true, y_pred = evaluate_lines(model, clean_test)
            scores[name] = macro_f1(y_true, y_pred, labels=CONTENT_CLASSES)
        return stats, scores

    stats, scores = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"per-annotator error rate: 5%",
        f"disagreement rate : {stats.disagreement_rate:.3%} "
        "(paper observed ~1% at human error levels)",
        f"full ties         : {stats.tie_broken} of {stats.total_lines} "
        "(paper: <250 of ~110k)",
        f"residual label err: {stats.residual_error_rate:.3%}",
        "",
        f"{'training labels':<18} {'macro-F1':>9}",
    ]
    for name, value in scores.items():
        lines.append(f"{name:<18} {value:>9.3f}")
    report("Annotation protocol (Section 6.1.1)", "\n".join(lines))

    # Reconciliation suppresses label noise below the per-annotator
    # error rate ...
    assert stats.residual_error_rate < 0.05
    # ... and the model trained on reconciled labels is at least as
    # good as one trained on a single annotator's labels.
    assert scores["reconciled_3+1"] >= scores["single_annotator"] - 0.02
    assert scores["ground_truth"] >= scores["reconciled_3+1"] - 0.02
