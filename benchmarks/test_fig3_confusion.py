"""Figure 3 — normalized confusion matrices for Strudel-L and Strudel-C.

The paper's headline confusion finding: misclassified minority-class
lines overwhelmingly drift to ``data`` — derived lines most of all.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import cell_confusion, line_confusion
from repro.eval.reporting import format_confusion
from repro.types import CLASS_TO_INDEX, CellClass

_DATA = CLASS_TO_INDEX[CellClass.DATA]
_DERIVED = CLASS_TO_INDEX[CellClass.DERIVED]


@pytest.mark.parametrize("dataset", ["govuk", "cius", "deex"])
def test_fig3_line_confusion(benchmark, config, report, dataset):
    matrix = benchmark.pedantic(
        line_confusion,
        args=(config,),
        kwargs={"datasets": (dataset,)},
        rounds=1,
        iterations=1,
    )[dataset]
    report(
        f"Figure 3 (top) — Strudel-L confusion on {dataset}",
        format_confusion(matrix),
    )
    # Diagonal dominates for the major classes.
    assert matrix[_DATA, _DATA] > 0.95
    # When derived lines are misclassified, 'data' is the main sink.
    off_diagonal = matrix[_DERIVED].copy()
    off_diagonal[_DERIVED] = 0.0
    if off_diagonal.sum() > 0.02:
        assert int(np.argmax(off_diagonal)) == _DATA


@pytest.mark.parametrize("dataset", ["saus", "cius", "deex"])
def test_fig3_cell_confusion(benchmark, config, report, dataset):
    matrix = benchmark.pedantic(
        cell_confusion,
        args=(config,),
        kwargs={"datasets": (dataset,)},
        rounds=1,
        iterations=1,
    )[dataset]
    report(
        f"Figure 3 (bottom) — Strudel-C confusion on {dataset}",
        format_confusion(matrix),
    )
    assert matrix[_DATA, _DATA] > 0.9
    # Row-normalized rows of present classes sum to 1.
    for row in matrix:
        total = row.sum()
        assert total == pytest.approx(1.0, abs=1e-9) or total == 0.0
