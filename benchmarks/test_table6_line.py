"""Table 6 (top) — line classification: CRF-L vs Pytheas-L vs Strudel-L.

Repeated grouped cross-validation on the GovUK, SAUS, CIUS and DeEx
personalities; prints per-class F1, accuracy and macro-average next to
the published values and asserts the paper's comparative shape:
Strudel-L leads on macro-average and Pytheas-L trails.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import line_comparison
from repro.eval.paper_values import TABLE6_LINE
from repro.eval.reporting import format_comparison_table
from repro.types import CellClass


@pytest.mark.parametrize("dataset", ["govuk", "saus", "cius", "deex"])
def test_table6_line_classification(benchmark, config, report, dataset):
    result = benchmark.pedantic(
        line_comparison,
        args=(config,),
        kwargs={"datasets": (dataset,)},
        rounds=1,
        iterations=1,
    )[dataset]
    report(
        f"Table 6 (top) — line classification F1 on {dataset}",
        format_comparison_table(
            f"dataset={dataset} scale={config.scale:g} "
            f"folds={config.n_splits}x{config.n_repeats}",
            {name: cv.scores for name, cv in result.items()},
            TABLE6_LINE[dataset],
        ),
    )

    strudel = result["Strudel-L"].scores
    crf = result["CRF-L"].scores
    pytheas = result["Pytheas-L"].scores
    # Who wins: Strudel leads on macro-average (small tolerance — the
    # paper's GovUK gap between CRF and Strudel is only 0.018).
    assert strudel.macro_f1 >= crf.macro_f1 - 0.03
    assert strudel.macro_f1 > pytheas.macro_f1
    # Derived is among the hardest classes for Strudel everywhere (on
    # DeEx the numeric headers compete for last place, as the paper's
    # own header-as-data analysis describes).
    ranked = sorted(strudel.per_class_f1.values())
    assert strudel.per_class_f1[CellClass.DERIVED] <= ranked[1] + 1e-9
    # Data is reliably recognized by everyone (paper: >= .96 everywhere).
    assert strudel.per_class_f1[CellClass.DATA] > 0.9
    assert pytheas.per_class_f1[CellClass.DATA] > 0.9
