"""Ablation S5 — feature-group contribution (line and cell tasks).

Drops each of the paper's three feature groups (content, contextual,
computational) in turn and measures the macro-F1 cost, quantifying
DESIGN.md's called-out design decisions.
"""

from __future__ import annotations

from repro.eval.experiments import (
    cell_feature_group_ablation,
    feature_group_ablation,
)
from repro.types import CellClass


def _render(result) -> str:
    lines = [f"{'variant':<22} {'accuracy':>9} {'macro-F1':>9} "
             f"{'derived F1':>11}"]
    for name, cv in result.items():
        derived = cv.scores.per_class_f1.get(CellClass.DERIVED, 0.0)
        lines.append(
            f"{name:<22} {cv.scores.accuracy:>9.3f} "
            f"{cv.scores.macro_f1:>9.3f} {derived:>11.3f}"
        )
    return "\n".join(lines)


def test_ablation_line_feature_groups(benchmark, config, report):
    result = benchmark.pedantic(
        feature_group_ablation, args=(config,), rounds=1, iterations=1
    )
    report("Ablation S5 — Strudel-L feature groups (SAUS)",
           _render(result))
    full = result["all"].scores
    # Removing the computational group (DerivedCoverage) costs derived
    # F1 — the feature exists precisely for that class.  Fold noise at
    # reduced scale warrants a tolerance.
    without = result["without_computational"].scores
    assert full.per_class_f1[CellClass.DERIVED] >= (
        without.per_class_f1[CellClass.DERIVED] - 0.06
    )
    # Content features carry most of the signal: dropping them hurts
    # more than dropping the single computational feature.
    assert (
        result["without_content"].scores.macro_f1
        <= result["without_computational"].scores.macro_f1 + 0.02
    )


def test_ablation_cell_feature_groups(benchmark, config, report):
    result = benchmark.pedantic(
        cell_feature_group_ablation, args=(config,), rounds=1, iterations=1
    )
    report("Ablation S5 — Strudel-C feature groups (SAUS)",
           _render(result))
    full = result["all"].scores
    without = result["without_computational"].scores
    assert full.per_class_f1[CellClass.DERIVED] >= (
        without.per_class_f1[CellClass.DERIVED] - 0.05
    )
