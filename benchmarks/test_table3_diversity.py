"""Table 3 — percentage of lines per cell-class diversity degree."""

from __future__ import annotations

from repro.eval.experiments import diversity_table
from repro.eval.paper_values import TABLE3_DIVERSITY


def test_table3_diversity(benchmark, config, report):
    result = benchmark.pedantic(
        diversity_table, args=(config,), rounds=1, iterations=1
    )
    lines = [f"{'dataset':<10} " + " ".join(f"deg{d:>6}" for d in range(1, 6))]
    for dataset, shares in result.items():
        measured = " ".join(f"{shares[d]:>8.1f}" for d in range(1, 6))
        lines.append(f"{dataset:<10} {measured}")
        paper = TABLE3_DIVERSITY[dataset]
        reference = " ".join(f"{paper[d]:>8.1f}" for d in range(1, 6))
        lines.append(f"{'  (paper)':<10} {reference}")
    report("Table 3 — cell-class diversity degree (% of lines)",
           "\n".join(lines))

    for dataset, shares in result.items():
        # The paper's shape: degree 1 dominates, higher degrees vanish.
        assert shares[1] > 60.0
        assert shares[1] + shares[2] > 95.0
        assert shares[4] + shares[5] < 2.0
