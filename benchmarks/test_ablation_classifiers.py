"""Ablation S1 — backbone choice (Section 6.1.2).

"Random forest consistently outperformed the other candidate
algorithms (Naive Bayes, KNN, SVM) on our datasets."
"""

from __future__ import annotations

from repro.eval.experiments import classifier_ablation


def test_ablation_backbone_choice(benchmark, config, report):
    result = benchmark.pedantic(
        classifier_ablation, args=(config,), rounds=1, iterations=1
    )
    lines = [f"{'backbone':<15} {'accuracy':>9} {'macro-F1':>9}"]
    for name, cv in result.items():
        lines.append(
            f"{name:<15} {cv.scores.accuracy:>9.3f} "
            f"{cv.scores.macro_f1:>9.3f}"
        )
    report("Ablation S1 — Strudel-L backbone choice (SAUS)",
           "\n".join(lines))

    # The paper: "random forest consistently outperformed the other
    # candidate algorithms".  At reduced corpus scale the gap can sit
    # inside fold noise, so allow a small tolerance; the printed table
    # carries the exact values.
    forest = result["random_forest"].scores.macro_f1
    for name in ("naive_bayes", "knn", "svm"):
        assert forest >= result[name].scores.macro_f1 - 0.04, name
