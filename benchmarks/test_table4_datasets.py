"""Table 4 — corpus inventory (files / non-empty lines / cells)."""

from __future__ import annotations

from repro.eval.experiments import dataset_summary
from repro.eval.paper_values import TABLE4_DATASETS


def test_table4_datasets(benchmark, config, report):
    result = benchmark.pedantic(
        dataset_summary, args=(config,), rounds=1, iterations=1
    )
    lines = [
        f"{'dataset':<10} {'files':>8} {'lines':>10} {'cells':>12}   "
        f"(paper at scale {config.scale:g})"
    ]
    for name, (files, n_lines, n_cells) in result.items():
        paper_files, paper_lines, paper_cells = TABLE4_DATASETS[name]
        lines.append(
            f"{name:<10} {files:>8} {n_lines:>10} {n_cells:>12}"
        )
        lines.append(
            f"{'  (paper)':<10} {paper_files:>8} {paper_lines:>10} "
            f"{paper_cells:>12}"
        )
    report("Table 4 — dataset summary", "\n".join(lines))

    # Shape checks: the corpora keep the paper's relative ordering of
    # scale: Mendeley has by far the highest lines-per-file ratio and
    # Troy by far the lowest.
    per_file = {
        name: n_lines / files
        for name, (files, n_lines, _) in result.items()
    }
    assert per_file["mendeley"] == max(per_file.values())
    assert per_file["troy"] == min(per_file.values())
    for name, (files, n_lines, n_cells) in result.items():
        assert n_cells > n_lines
