"""Section 6.3.4 — scalability: runtime linear in file size.

The paper measures the end-to-end per-file runtime (dialect detection,
feature creation, prediction) on growing Mendeley files and reports
linear scaling.  We time the same pipeline stages on generated files
of increasing length and fit a linear model; the fit must explain the
variance well and clearly beat a quadratic-only explanation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.strudel import StrudelPipeline
from repro.datagen.filegen import generate_file
from repro.datagen.spec import FileSpec, TableSpec
from repro.io.writer import write_csv_text

#: Data rows per timed file (geometric-ish growth).
SIZES = (50, 100, 200, 400, 800)


def _make_file(n_rows: int, seed: int):
    spec = FileSpec(
        domain="science",
        metadata_lines=2,
        notes_lines=2,
        tables=[
            TableSpec(
                n_numeric_cols=6,
                n_groups=0,
                rows_per_group=n_rows,
                grand_total=True,
            )
        ],
    )
    return generate_file(spec, np.random.default_rng(seed), f"s{n_rows}")


def test_scalability_is_linear(benchmark, config, report):
    train = config.corpus("saus")
    pipeline = StrudelPipeline(
        n_estimators=config.n_estimators, random_state=config.seed
    )
    pipeline.fit(train.files)

    texts = {
        n: write_csv_text(_make_file(n, seed=n).table.rows())
        for n in SIZES
    }

    def timed_runs():
        # Median of three runs per size resists scheduler noise.
        timings = {}
        for n, text in texts.items():
            samples = []
            for _ in range(3):
                start = time.perf_counter()
                pipeline.analyze(text)
                samples.append(time.perf_counter() - start)
            timings[n] = sorted(samples)[1]
        return timings

    # Warm up (first call pays numpy/JIT-ish caches), then measure.
    timed_runs()
    timings = benchmark.pedantic(timed_runs, rounds=1, iterations=1)

    sizes = np.array(sorted(timings))
    seconds = np.array([timings[n] for n in sizes])
    # Least-squares linear fit through the measurements.
    coefficients = np.polyfit(sizes, seconds, 1)
    predicted = np.polyval(coefficients, sizes)
    residual = seconds - predicted
    r_squared = 1.0 - residual.var() / seconds.var()

    lines = [f"{'rows':>6} {'seconds':>9} {'sec/row (x1e3)':>15}"]
    for n, s in zip(sizes, seconds):
        lines.append(f"{n:>6} {s:>9.3f} {1000 * s / n:>15.3f}")
    lines.append(f"linear fit R^2 = {r_squared:.3f}")
    lines.append("paper: overall runtime is linear in the file size")
    report("Scalability (Section 6.3.4)", "\n".join(lines))

    assert r_squared > 0.85
    # Doubling the input must not quadruple the cost (sub-quadratic):
    ratio = seconds[-1] / seconds[-2]
    assert ratio < 3.0


def test_runtime_breakdown(benchmark, config, report):
    """Section 6.3.4: 'Most of the time is spent on creating the
    feature vectors' — measured by timing the pipeline stages
    separately on one large file.

    The staged flow mirrors the single-pass plan of
    ``StrudelPipeline.analyze``: the line feature matrix is extracted
    once and both line probabilities and cell features derive from it,
    so the stage timings add up to one real analyze.
    """
    from repro.dialect.detector import detect_dialect
    from repro.io.reader import read_table_text

    train = config.corpus("saus")
    pipeline = StrudelPipeline(
        n_estimators=config.n_estimators, random_state=config.seed
    )
    pipeline.fit(train.files)
    text = write_csv_text(_make_file(600, seed=0).table.rows())

    def staged():
        timings = {}
        start = time.perf_counter()
        dialect = detect_dialect(text)
        timings["dialect_detection"] = time.perf_counter() - start

        start = time.perf_counter()
        table = read_table_text(text, dialect)
        timings["parsing"] = time.perf_counter() - start

        start = time.perf_counter()
        line_features = pipeline.line_classifier.extractor.extract(table)
        probabilities = (
            pipeline.line_classifier.predict_proba_from_features(
                line_features
            )
        )
        positions, cell_features = pipeline.cell_classifier.extractor.extract(
            table, probabilities
        )
        timings["feature_creation"] = time.perf_counter() - start

        start = time.perf_counter()
        pipeline.cell_classifier.predict_from_features(
            positions, cell_features
        )
        timings["prediction"] = time.perf_counter() - start
        return timings

    staged()  # warm-up
    timings = benchmark.pedantic(staged, rounds=1, iterations=1)
    total = sum(timings.values())
    lines = [f"{'stage':<20} {'seconds':>9} {'share':>7}"]
    for stage, seconds in timings.items():
        lines.append(
            f"{stage:<20} {seconds:>9.3f} {seconds / total:>7.1%}"
        )
    lines.append(
        "paper: most of the time is spent on creating the feature "
        "vectors"
    )
    report("Runtime breakdown (Section 6.3.4)", "\n".join(lines))

    # Feature creation dominates dialect detection and raw parsing.
    assert timings["feature_creation"] > timings["dialect_detection"]
    assert timings["feature_creation"] > timings["parsing"]


def test_analyze_extracts_each_feature_matrix_once(config):
    """The single-pass plan: one ``analyze`` call runs the line
    feature extractor exactly once and the cell feature extractor
    exactly once (before the plan, line features were extracted twice
    — once for line labels, once for the probability features)."""
    train = config.corpus("saus")
    pipeline = StrudelPipeline(
        n_estimators=config.n_estimators, random_state=config.seed
    )
    pipeline.fit(train.files)
    text = write_csv_text(_make_file(60, seed=0).table.rows())

    calls = {"line": 0, "cell": 0}
    line_extract = pipeline.line_classifier.extractor.extract
    cell_extract = pipeline.cell_classifier.extractor.extract

    def counting_line_extract(table):
        calls["line"] += 1
        return line_extract(table)

    def counting_cell_extract(table, probabilities):
        calls["cell"] += 1
        return cell_extract(table, probabilities)

    pipeline.line_classifier.extractor.extract = counting_line_extract
    pipeline.cell_classifier.extractor.extract = counting_cell_extract
    try:
        pipeline.analyze(text)
    finally:
        pipeline.line_classifier.extractor.extract = line_extract
        pipeline.cell_classifier.extractor.extract = cell_extract

    assert calls == {"line": 1, "cell": 1}
