"""Plain-text acquisition pipeline (Section 6.1.1).

The paper selected 100 Mendeley plain-text files and kept the 62
whose table region parsed correctly under the detected dialect.  This
benchmark runs the same acquisition over generated science-domain
files emitted under random exotic dialects and reports the survival
rate per dialect.
"""

from __future__ import annotations

from repro.datagen.corpora import make_mendeley
from repro.datagen.plaintext import acquire_plain_text_corpus


def test_acquisition_parseability(benchmark, config, report):
    def run():
        corpus = make_mendeley(seed=17, scale=0.25)
        return acquire_plain_text_corpus(corpus, seed=config.seed)

    kept, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"candidate files : {stats.total}",
        f"parse-able      : {stats.parseable} "
        f"({stats.parseable_rate:.0%}) — paper kept 62/100",
        "",
        f"{'delimiter':<12} {'parse-able':>11}",
    ]
    for delimiter, (ok, total) in sorted(stats.per_dialect.items()):
        lines.append(f"{delimiter:<12} {ok:>6}/{total}")
    report("Acquisition — plain-text parse-ability filtering",
           "\n".join(lines))

    # The filter must actually reject some files (exotic dialects
    # destroy some tables) while keeping a solid majority, matching
    # the paper's 62% survival order of magnitude.
    assert 0.3 <= stats.parseable_rate < 1.0
    assert len(kept) == stats.parseable
