"""Ablation S2 — global line features (Section 4).

The paper tested file-level features (empty-line share, width, length,
empty-block count) and found "no positive impact"; Strudel ships with
local features only.  This benchmark reproduces that comparison.
"""

from __future__ import annotations

from repro.eval.experiments import global_feature_ablation


def test_ablation_global_features(benchmark, config, report):
    result = benchmark.pedantic(
        global_feature_ablation, args=(config,), rounds=1, iterations=1
    )
    local = result["local_only"].scores
    with_global = result["with_global"].scores
    report(
        "Ablation S2 — global line features (DeEx)",
        f"{'variant':<15} {'accuracy':>9} {'macro-F1':>9}\n"
        f"{'local_only':<15} {local.accuracy:>9.3f} {local.macro_f1:>9.3f}\n"
        f"{'with_global':<15} {with_global.accuracy:>9.3f} "
        f"{with_global.macro_f1:>9.3f}\n"
        "paper: global features showed no positive impact",
    )
    # "No positive impact": adding the global features must not yield a
    # material improvement.
    assert with_global.macro_f1 <= local.macro_f1 + 0.03
