"""Figure 4 — permutation feature importance per class.

The paper's claims checked here:

* the line-probability features top notes/metadata/header for cells;
* ``is_aggregation`` dominates for derived cells;
* column emptiness/position drive group cells.
"""

from __future__ import annotations

from repro.eval.experiments import (
    cell_feature_importance,
    line_feature_importance,
)
from repro.eval.paper_values import FIGURE4_CLAIMS
from repro.eval.reporting import format_importance_table


def test_fig4_line_importance(benchmark, config, report):
    shares = benchmark.pedantic(
        line_feature_importance, args=(config,), rounds=1, iterations=1
    )
    report(
        "Figure 4 (top) — Strudel-L per-class feature importance",
        format_importance_table(shares),
    )
    # DerivedCoverage is a *derived-specific* signal: its importance
    # share for the derived class must exceed its share for any other
    # class, and the lexical AggregationWord cue must rank among the
    # derived class's strongest features.
    derived = shares["derived"]
    for class_name, class_shares in shares.items():
        if class_name == "derived":
            continue
        assert derived["derived_coverage"] >= (
            class_shares.get("derived_coverage", 0.0) - 0.02
        ), class_name
    top3 = sorted(derived.values(), reverse=True)[:3]
    assert derived["aggregation_word"] >= top3[-1]


def test_fig4_cell_importance(benchmark, config, report):
    shares = benchmark.pedantic(
        cell_feature_importance, args=(config,), rounds=1, iterations=1
    )
    report(
        "Figure 4 (bottom) — Strudel-C per-class feature importance\n"
        + "paper claims: " + "; ".join(FIGURE4_CLAIMS),
        format_importance_table(shares),
    )
    derived = shares["derived"]
    # is_aggregation plays a leading role in detecting derived cells:
    # a clearly non-zero share that tops its share for every other
    # class (the feature is derived-specific).
    assert derived["is_aggregation"] >= 0.03
    for class_name, class_shares in shares.items():
        if class_name == "derived":
            continue
        assert derived["is_aggregation"] >= (
            class_shares.get("is_aggregation", 0.0) - 0.02
        ), class_name

    # Line class probability is influential for the line-homogeneous
    # classes (notes and metadata live in their own lines).
    for class_name in ("notes", "metadata"):
        class_shares = shares[class_name]
        probability_mass = sum(
            share
            for name, share in class_shares.items()
            if name.startswith("line_class_probability")
        )
        assert probability_mass >= 0.1
