"""Extension — column classification (paper future work iii).

The conclusions ask "whether column classification can help boost the
classification quality".  This benchmark measures Strudel-C derived-
cell F1 with and without the column-majority refinement of
:mod:`repro.core.columns` on a corpus rich in derived columns.
"""

from __future__ import annotations

from repro.core.columns import refine_cell_predictions
from repro.core.strudel import StrudelCellClassifier
from repro.ml.metrics import f1_per_class
from repro.types import CONTENT_CLASSES, CellClass


def _evaluate(config, refine: bool):
    corpus = config.corpus("deex")
    files = corpus.files
    cut = max(1, int(0.8 * len(files)))
    model = StrudelCellClassifier(
        n_estimators=config.n_estimators, random_state=config.seed
    ).fit(files[:cut])
    y_true, y_pred = [], []
    for annotated in files[cut:]:
        predictions = model.predict(annotated.table)
        if refine:
            predictions = refine_cell_predictions(
                predictions, annotated.table
            )
        for i, j, truth in annotated.non_empty_cell_items():
            y_true.append(truth)
            y_pred.append(predictions[(i, j)])
    return f1_per_class(y_true, y_pred, labels=CONTENT_CLASSES)


def test_extension_column_refinement(benchmark, config, report):
    def run():
        return {
            "baseline": _evaluate(config, refine=False),
            "refined": _evaluate(config, refine=True),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'variant':<10} {'derived F1':>11} {'data F1':>9}"]
    for name, scores in result.items():
        lines.append(
            f"{name:<10} {scores[CellClass.DERIVED]:>11.3f} "
            f"{scores[CellClass.DATA]:>9.3f}"
        )
    report(
        "Extension — column-majority refinement on DeEx cells",
        "\n".join(lines),
    )

    # The refinement must not wreck either class; whether it helps is
    # the experiment's question (the paper leaves it open).
    assert result["refined"][CellClass.DERIVED] >= (
        result["baseline"][CellClass.DERIVED] - 0.05
    )
    assert result["refined"][CellClass.DATA] >= (
        result["baseline"][CellClass.DATA] - 0.02
    )
