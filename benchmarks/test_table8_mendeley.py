"""Table 8 — plain-text transfer: train SAUS+CIUS+DeEx, test Mendeley."""

from __future__ import annotations

from repro.eval.experiments import plain_text
from repro.eval.paper_values import TABLE8_MENDELEY
from repro.eval.reporting import format_comparison_table
from repro.types import CellClass


def test_table8_mendeley_transfer(benchmark, config, report):
    result = benchmark.pedantic(
        plain_text, args=(config,), rounds=1, iterations=1
    )
    report(
        "Table 8 — plain-text F1 on Mendeley "
        "(trained on SAUS+CIUS+DeEx)",
        format_comparison_table(
            f"scale={config.scale:g}", result, TABLE8_MENDELEY
        ),
    )

    lines = result["Strudel-L"]
    # The paper's shape: data is near-perfect (0.999 — these files are
    # data-dominated), while the minority classes degrade badly under
    # the domain shift and the delimiter dilemma.
    assert lines.per_class_f1[CellClass.DATA] > 0.98
    minority_mean = sum(
        lines.per_class_f1[klass]
        for klass in (CellClass.METADATA, CellClass.NOTES, CellClass.GROUP)
    ) / 3
    assert minority_mean < lines.per_class_f1[CellClass.DATA]
    assert lines.macro_f1 < 0.95  # the transfer visibly hurts
