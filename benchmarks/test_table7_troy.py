"""Table 7 — out-of-domain transfer: train SAUS+CIUS+DeEx, test Troy."""

from __future__ import annotations

from repro.eval.experiments import out_of_domain
from repro.eval.paper_values import TABLE7_TROY
from repro.eval.reporting import format_comparison_table
from repro.types import CellClass


def test_table7_troy_transfer(benchmark, config, report):
    result = benchmark.pedantic(
        out_of_domain, args=(config,), rounds=1, iterations=1
    )
    report(
        "Table 7 — out-of-domain F1 on Troy "
        "(trained on SAUS+CIUS+DeEx)",
        format_comparison_table(
            f"scale={config.scale:g}", result, TABLE7_TROY
        ),
    )

    lines = result["Strudel-L"]
    cells = result["Strudel-C"]
    # The paper's signature finding: derived collapses out of domain
    # (0.070 line / 0.216 cell) because Troy's derived lines carry no
    # anchoring keywords, while data/metadata/notes stay solid.
    assert lines.per_class_f1[CellClass.DERIVED] == min(
        lines.per_class_f1.values()
    )
    # A clear collapse relative to the in-domain derived scores
    # (roughly 0.9 at this scale; the paper drops from .548-.834 in
    # domain to .070 on Troy).
    assert lines.per_class_f1[CellClass.DERIVED] <= 0.7
    assert lines.per_class_f1[CellClass.DATA] > 0.85
    assert lines.per_class_f1[CellClass.NOTES] > 0.7
    assert cells.per_class_f1[CellClass.DATA] > 0.85
