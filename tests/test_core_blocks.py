"""Tests for Algorithm 1 — block size calculation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import block_sizes, normalized_block_sizes
from repro.types import Table


class TestBlockSizes:
    def test_single_block(self):
        table = Table([["a", "b"], ["c", ""]])
        sizes = block_sizes(table)
        assert sizes == {(0, 0): 3, (0, 1): 3, (1, 0): 3}

    def test_two_blocks_separated_by_empty_column(self):
        table = Table([["a", "", "x"], ["b", "", "y"]])
        sizes = block_sizes(table)
        assert sizes[(0, 0)] == 2
        assert sizes[(0, 2)] == 2

    def test_diagonal_cells_are_not_connected(self):
        table = Table([["a", ""], ["", "b"]])
        sizes = block_sizes(table)
        assert sizes[(0, 0)] == 1
        assert sizes[(1, 1)] == 1

    def test_empty_table(self):
        assert block_sizes(Table([["", ""]])) == {}

    def test_every_non_empty_cell_covered(self, verbose_table):
        sizes = block_sizes(verbose_table)
        cells = {
            (c.row, c.col) for c in verbose_table.non_empty_cells()
        }
        assert set(sizes) == cells

    def test_sizes_cover_exactly_the_non_empty_cells(self, verbose_table):
        sizes = block_sizes(verbose_table)
        assert len(sizes) == verbose_table.count_non_empty_cells()
        assert all(size >= 1 for size in sizes.values())

    def test_normalized_by_file_size(self):
        table = Table([["a", "b"], ["", ""]])
        normalized = normalized_block_sizes(table)
        assert normalized[(0, 0)] == pytest.approx(2 / 4)


# ----------------------------------------------------------------------
# Property: agreement with networkx connected components
# ----------------------------------------------------------------------
@given(
    seed=st.integers(0, 10_000),
    n_rows=st.integers(1, 8),
    n_cols=st.integers(1, 8),
    density=st.floats(0.1, 0.9),
)
@settings(max_examples=60, deadline=None)
def test_matches_networkx_reference(seed, n_rows, n_cols, density):
    rng = np.random.default_rng(seed)
    grid = rng.random((n_rows, n_cols)) < density
    table = Table(
        [
            ["x" if grid[i, j] else "" for j in range(n_cols)]
            for i in range(n_rows)
        ]
    )
    sizes = block_sizes(table)

    graph = nx.Graph()
    for i in range(n_rows):
        for j in range(n_cols):
            if not grid[i, j]:
                continue
            graph.add_node((i, j))
            if i + 1 < n_rows and grid[i + 1, j]:
                graph.add_edge((i, j), (i + 1, j))
            if j + 1 < n_cols and grid[i, j + 1]:
                graph.add_edge((i, j), (i, j + 1))
    for component in nx.connected_components(graph):
        for node in component:
            assert sizes[node] == len(component)
    assert set(sizes) == set(graph.nodes)
