"""Tests for the shared estimator plumbing (:mod:`repro.ml.base`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.base import (
    check_fitted,
    check_X,
    check_X_y,
    classes_and_encoded,
)


class TestCheckXy:
    def test_coerces_dtypes(self):
        X, y = check_X_y([[1, 2], [3, 4]], [0, 1])
        assert X.dtype == np.float64
        assert y.dtype == np.int64

    def test_rejects_1d_X(self):
        with pytest.raises(InvalidParameterError):
            check_X_y(np.zeros(3), np.zeros(3))

    def test_rejects_2d_y(self):
        with pytest.raises(InvalidParameterError):
            check_X_y(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_rejects_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            check_X_y(np.zeros((3, 2)), np.zeros(2))

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            check_X_y(np.zeros((0, 2)), np.zeros(0))


class TestCheckX:
    def test_accepts_matching_width(self):
        X = check_X([[1.0, 2.0]], n_features=2)
        assert X.shape == (1, 2)

    def test_rejects_width_mismatch(self):
        with pytest.raises(InvalidParameterError):
            check_X(np.zeros((1, 3)), n_features=2)

    def test_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            check_X(np.zeros(3), n_features=3)


class TestCheckFitted:
    def test_raises_when_attribute_missing(self):
        class Stub:
            model = None

        with pytest.raises(NotFittedError):
            check_fitted(Stub(), "model")

    def test_passes_when_set(self):
        class Stub:
            model = object()

        check_fitted(Stub(), "model")


class TestClassesAndEncoded:
    def test_sorted_classes_and_inverse(self):
        classes, encoded = classes_and_encoded(np.array([5, 2, 5, 9]))
        assert classes.tolist() == [2, 5, 9]
        assert encoded.tolist() == [1, 0, 1, 2]
        assert np.array_equal(classes[encoded], np.array([5, 2, 5, 9]))
