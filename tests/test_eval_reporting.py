"""Tests for result rendering (:mod:`repro.eval.reporting`)."""

from __future__ import annotations

import numpy as np

from repro.eval.reporting import (
    format_comparison_table,
    format_confusion,
    format_importance_table,
    format_paper_row,
    format_scores_row,
    scores_header,
)
from repro.eval.runner import ClassificationScores
from repro.types import CONTENT_CLASSES, CellClass


def _scores():
    return ClassificationScores.from_predictions(
        [CellClass.DATA, CellClass.NOTES, CellClass.DATA],
        [CellClass.DATA, CellClass.NOTES, CellClass.NOTES],
    )


class TestRows:
    def test_scores_row_contains_all_columns(self):
        row = format_scores_row("Strudel-L", _scores())
        assert "Strudel-L" in row
        assert row.count(".") >= 8

    def test_missing_class_renders_dash(self):
        scores = ClassificationScores.from_predictions(
            [CellClass.DATA], [CellClass.DATA],
            labels=[c for c in CONTENT_CLASSES if c is not CellClass.DERIVED],
        )
        row = format_scores_row(
            "Pytheas-L", scores,
            labels=[c for c in CONTENT_CLASSES if c is not CellClass.DERIVED],
        )
        assert "-" in row

    def test_paper_row_handles_none(self):
        row = format_paper_row("x", {"metadata": 0.5, "derived": None})
        assert "0.500" in row
        assert "-" in row

    def test_header_alignment(self):
        header = scores_header()
        assert "metadata" in header
        assert "macro" in header


class TestBlocks:
    def test_comparison_table_includes_paper_rows(self):
        block = format_comparison_table(
            "title",
            {"Strudel-L": _scores()},
            {"Strudel-L": {"metadata": 0.9, "accuracy": 0.9,
                           "macro_avg": 0.9}},
        )
        assert "title" in block
        assert "(paper)" in block

    def test_confusion_rendering(self):
        matrix = np.eye(6)
        text = format_confusion(matrix)
        assert "metadata" in text
        assert "1.000" in text

    def test_importance_rendering(self):
        text = format_importance_table(
            {"data": {"f1": 0.7, "f2": 0.3}}, top_k=1
        )
        assert "data" in text
        assert "f1=70%" in text
