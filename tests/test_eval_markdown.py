"""Smoke test for the EXPERIMENTS.md generator at micro scale."""

from __future__ import annotations

import pytest

from repro.eval.experiments import ExperimentConfig
from repro.eval.markdown import build_experiments_report


@pytest.mark.slow
def test_report_contains_every_section():
    config = ExperimentConfig(
        scale=0.02,
        n_splits=2,
        n_repeats=1,
        n_estimators=4,
        crf_max_iter=10,
        rnn_epochs=1,
        seed=0,
        mendeley_scale=0.03,
    )
    report = build_experiments_report(config)
    for marker in (
        "# EXPERIMENTS",
        "## Table 3",
        "## Table 4",
        "## Table 5",
        "## Table 6 (top)",
        "## Table 6 (bottom)",
        "## Table 7",
        "## Table 8",
        "## Figure 3",
        "## Figure 4",
        "### S1",
        "### S2",
        "### S4",
        "### S5",
        "## Headline shape checks",
        "(paper)",
    ):
        assert marker in report, marker
    # Markdown tables render: header separators present.
    assert report.count("|---|") > 10
