"""Tests for CSV I/O: reader, writer, cropping, annotations."""

from __future__ import annotations

import pytest

from repro.dialect.dialect import Dialect
from repro.errors import AnnotationError
from repro.io.annotations import (
    annotated_file_from_dict,
    annotated_file_to_dict,
    load_annotated_file,
    load_corpus,
    save_annotated_file,
    save_corpus,
)
from repro.io.cropping import crop_annotated_file, crop_table
from repro.io.reader import read_table, read_table_text
from repro.io.writer import write_csv_text, write_table
from repro.types import AnnotatedFile, CellClass, Corpus, Table


class TestReader:
    def test_read_with_detection(self):
        table = read_table_text("a;b\n1;2\n3;4\n")
        assert table.shape == (3, 2)
        assert table.cell(1, 1) == "2"

    def test_read_with_explicit_dialect(self):
        table = read_table_text("a|b\n", Dialect(delimiter="|"))
        assert table.row(0) == ["a", "b"]

    def test_read_pads_ragged_rows(self):
        table = read_table_text("a,b,c\nd\n", Dialect.standard())
        assert table.shape == (2, 3)
        assert table.row(1) == ["d", "", ""]

    def test_read_file_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        original = Table([["a", "b"], ["1", "2"]])
        write_table(original, path)
        assert read_table(path, Dialect.standard()) == original


class TestWriter:
    def test_quotes_delimiter(self):
        text = write_csv_text([["a,b", "c"]])
        assert text == '"a,b",c\n'

    def test_quotes_embedded_quote(self):
        text = write_csv_text([['say "hi"']])
        assert text == '"say ""hi"""\n'

    def test_no_quote_dialect_replaces_specials(self):
        dialect = Dialect(delimiter=",", quotechar="")
        text = write_csv_text([["a,b"]], dialect)
        assert "," not in text.strip().replace("\n", "")

    def test_escape_dialect(self):
        dialect = Dialect(delimiter=",", quotechar="", escapechar="\\")
        assert write_csv_text([["a,b"]], dialect) == "a\\,b\n"

    def test_empty_rows(self):
        assert write_csv_text([]) == ""


class TestCropping:
    def test_crops_marginal_empties(self):
        table = Table(
            [
                ["", "", ""],
                ["", "a", "b"],
                ["", "", ""],
                ["", "c", ""],
                ["", "", ""],
            ]
        )
        cropped = crop_table(table)
        assert cropped.shape == (3, 2)
        assert cropped.cell(0, 0) == "a"
        # Interior empty row is preserved as a separator.
        assert cropped.is_empty_row(1)

    def test_fully_empty_table(self):
        assert crop_table(Table([["", ""], ["", ""]])).shape == (1, 1)

    def test_no_crop_needed(self):
        table = Table([["a", "b"], ["c", "d"]])
        assert crop_table(table) == table

    def test_crop_annotated_file_consistency(self, verbose_file):
        width = verbose_file.table.n_cols + 1
        padded = AnnotatedFile(
            name="padded",
            table=Table(
                [[""] * width]
                + [["", *row] for row in verbose_file.table.rows()]
            ),
            line_labels=[CellClass.EMPTY] + list(verbose_file.line_labels),
            cell_labels=[[CellClass.EMPTY] * width]
            + [
                [CellClass.EMPTY, *row]
                for row in verbose_file.cell_labels
            ],
        )
        cropped = crop_annotated_file(padded)
        assert cropped.table == verbose_file.table
        assert cropped.line_labels == verbose_file.line_labels
        assert cropped.cell_labels == verbose_file.cell_labels

    def test_crop_annotated_fully_empty(self):
        annotated = AnnotatedFile(
            name="empty",
            table=Table([["", ""]]),
            line_labels=[CellClass.EMPTY],
            cell_labels=[[CellClass.EMPTY, CellClass.EMPTY]],
        )
        cropped = crop_annotated_file(annotated)
        assert cropped.table.shape == (1, 1)


class TestAnnotations:
    def test_dict_round_trip(self, verbose_file):
        payload = annotated_file_to_dict(verbose_file)
        restored = annotated_file_from_dict(payload)
        assert restored.table == verbose_file.table
        assert restored.line_labels == verbose_file.line_labels
        assert restored.cell_labels == verbose_file.cell_labels

    def test_file_round_trip(self, tmp_path, verbose_file):
        path = tmp_path / "f.json"
        save_annotated_file(verbose_file, path)
        restored = load_annotated_file(path)
        assert restored.name == verbose_file.name
        assert restored.table == verbose_file.table

    def test_malformed_payload_raises(self):
        with pytest.raises(AnnotationError):
            annotated_file_from_dict({"name": "x"})

    def test_bad_class_value_raises(self, verbose_file):
        payload = annotated_file_to_dict(verbose_file)
        payload["line_labels"][0] = "not-a-class"
        with pytest.raises(AnnotationError):
            annotated_file_from_dict(payload)

    def test_corpus_round_trip(self, tmp_path, verbose_file):
        corpus = Corpus(name="c", files=[verbose_file])
        save_corpus(corpus, tmp_path / "corpus")
        restored = load_corpus(tmp_path / "corpus", name="c")
        assert len(restored) == 1
        assert restored.files[0].table == verbose_file.table

    def test_load_empty_directory_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(AnnotationError):
            load_corpus(tmp_path / "empty")
