"""Tests for dialect detection (:mod:`repro.dialect`)."""

from __future__ import annotations

import pytest

from repro.dialect import Dialect, DialectDetector, detect_dialect
from repro.dialect.patterns import pattern_score, row_pattern
from repro.dialect.type_score import cell_type_name, is_known_type, type_score
from repro.errors import DialectError


class TestDialectValue:
    def test_standard(self):
        dialect = Dialect.standard()
        assert dialect.delimiter == ","
        assert dialect.quotechar == '"'

    def test_rejects_multichar_delimiter(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=",,")

    def test_rejects_quote_equal_to_delimiter(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=",", quotechar=",")

    def test_rejects_escape_clash(self):
        with pytest.raises(DialectError):
            Dialect(delimiter=",", quotechar='"', escapechar='"')

    def test_describe(self):
        assert "delimiter" in Dialect.standard().describe()


class TestTypeScore:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("123", "integer"),
            ("1,234", "integer"),
            ("-4.5", "float"),
            ("12%", "percentage"),
            ("$1,000.50", "currency"),
            ("2020-01-02", "date"),
            ("12:30", "time"),
            ("hello", "word"),
            ("a@b.com", "email"),
            ("http://x.org/p", "url"),
            ("N/A", "missing"),
            ("", "empty"),
        ],
    )
    def test_known_types(self, value, expected):
        assert cell_type_name(value) == expected

    def test_unknown_type(self):
        assert cell_type_name("@@##&&!! garbage ~~ 123abc$%") is None
        assert not is_known_type("@@##&&!! garbage ~~ 123abc$%")

    def test_score_is_known_fraction(self):
        rows = [["1", "x&!@#$%^&*()_+ 77y"], ["2", "hello"]]
        assert type_score(rows) == pytest.approx(0.75)

    def test_empty_rows_floor(self):
        assert type_score([]) > 0


class TestPatternScore:
    def test_row_pattern_is_width(self):
        assert row_pattern(["a", "b"]) == 2

    def test_single_column_rows_score_floor(self):
        assert pattern_score([["a"], ["b"]]) == pytest.approx(1e-10)

    def test_consistent_wide_rows_beat_inconsistent(self):
        consistent = [["a", "b", "c"]] * 4
        inconsistent = [["a"], ["a", "b"], ["a", "b", "c"], ["a"]]
        assert pattern_score(consistent) > pattern_score(inconsistent)

    def test_wider_patterns_score_higher(self):
        narrow = [["a", "b"]] * 4
        wide = [["a", "b", "c", "d", "e"]] * 4
        assert pattern_score(wide) > pattern_score(narrow)


class TestDetection:
    def test_comma_file(self):
        text = "name,count,share\nalpha,10,0.5\nbeta,20,0.5\n"
        assert detect_dialect(text).delimiter == ","

    def test_semicolon_file(self):
        text = "name;count;share\nalpha;10;0,5\nbeta;20;0,5\n"
        assert detect_dialect(text).delimiter == ";"

    def test_tab_file(self):
        text = "name\tcount\nalpha\t10\nbeta\t20\n"
        assert detect_dialect(text).delimiter == "\t"

    def test_pipe_file(self):
        text = "name|count\nalpha|10\nbeta|20\n"
        assert detect_dialect(text).delimiter == "|"

    def test_quoted_commas_do_not_fool_detection(self):
        text = '"last, first";age\n"doe, jane";33\n"roe, rick";40\n'
        assert detect_dialect(text).delimiter == ";"

    def test_empty_text_raises(self):
        with pytest.raises(DialectError):
            detect_dialect("   \n  ")

    def test_single_column_file_defaults_to_comma(self):
        text = "alpha\nbeta\ngamma\n"
        assert detect_dialect(text).delimiter == ","

    def test_rank_returns_sorted_scores(self):
        text = "a,b\nc,d\n"
        ranking = DialectDetector().rank(text)
        scores = [s.score for s in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_max_lines_validation(self):
        with pytest.raises(DialectError):
            DialectDetector(max_lines=0)

    def test_detection_is_deterministic(self):
        text = "x;1\ny;2\nz;3\n"
        assert detect_dialect(text) == detect_dialect(text)

    def test_sample_bounds_work(self):
        # Only the first lines matter; junk far below must not break it.
        text = "a,b,c\n" * 50 + "zzz|zzz|zzz\n" * 500
        assert DialectDetector(max_lines=20).detect(text).delimiter == ","


class TestDetectionMemo:
    """The module-level detection memo: consistency of its counters,
    including under concurrent detection (the R105 lock-discipline
    story — every counter mutation happens under ``_MEMO_LOCK``)."""

    def test_repeat_detection_hits_the_memo(self):
        from repro.dialect.detector import (
            clear_dialect_memo,
            dialect_memo_stats,
        )

        clear_dialect_memo()
        text = "x;1\ny;2\nz;3\n"
        first = detect_dialect(text)
        second = detect_dialect(text)
        assert first == second
        stats = dialect_memo_stats()
        assert stats == {"hits": 1, "misses": 1, "entries": 1}

    def test_memo_counters_stay_consistent_across_threads(self):
        """N threads hammering a small text pool: no update may be
        lost — hits + misses must equal the exact number of detect
        calls, and the entry count the distinct-sample count."""
        import random
        import threading

        from repro.dialect.detector import (
            clear_dialect_memo,
            dialect_memo_stats,
        )

        clear_dialect_memo()
        texts = [f"h{i},k\n1,2\n3,4\n5,6\n" for i in range(8)]
        n_threads, calls_each = 6, 50
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(calls_each):
                    detect_dialect(rng.choice(texts))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = dialect_memo_stats()
        assert stats["hits"] + stats["misses"] == n_threads * calls_each
        assert stats["entries"] == len(texts)
        # Every distinct text missed at least once, never spuriously
        # more than once per thread (the lookup and insert race is
        # benign but bounded).
        assert len(texts) <= stats["misses"] <= len(texts) * n_threads
