"""Tests for the top-level public API and the paper-value tables."""

from __future__ import annotations

import pytest

import repro
from repro.eval import paper_values

_CLASS_NAMES = (
    "metadata", "header", "group", "data", "derived", "notes",
)


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_docstring_quickstart_names_exist(self):
        # The names used in the module docstring's example must exist.
        assert hasattr(repro, "StrudelPipeline")
        assert hasattr(repro, "make_corpus")

    def test_convenience_flow(self):
        table = repro.read_table_text("a;1\nb;2\nc;3\n")
        assert table.shape == (3, 2)
        dialect = repro.detect_dialect("x|1\ny|2\nz|3\n")
        assert dialect.delimiter == "|"


class TestPaperValues:
    """Internal consistency of the transcribed paper numbers."""

    def test_table6_line_rows_complete(self):
        for dataset, algorithms in paper_values.TABLE6_LINE.items():
            assert set(algorithms) == {"CRF-L", "Pytheas-L", "Strudel-L"}
            for name, row in algorithms.items():
                for class_name in _CLASS_NAMES:
                    assert class_name in row
                if name == "Pytheas-L":
                    assert row["derived"] is None
                else:
                    assert 0.0 <= row["derived"] <= 1.0

    def test_table6_cell_rows_complete(self):
        for dataset, algorithms in paper_values.TABLE6_CELL.items():
            assert set(algorithms) == {"Line-C", "RNN-C", "Strudel-C"}

    def test_strudel_wins_macro_in_paper(self):
        """Sanity: the transcription preserves the paper's headline
        result — Strudel leads every macro-average column."""
        for dataset, algorithms in paper_values.TABLE6_LINE.items():
            strudel = algorithms["Strudel-L"]["macro_avg"]
            for name, row in algorithms.items():
                assert strudel >= row["macro_avg"], (dataset, name)
        for dataset, algorithms in paper_values.TABLE6_CELL.items():
            strudel = algorithms["Strudel-C"]["macro_avg"]
            for name, row in algorithms.items():
                assert strudel >= row["macro_avg"], (dataset, name)

    def test_table4_sizes_positive(self):
        for name, (files, lines, cells) in (
            paper_values.TABLE4_DATASETS.items()
        ):
            assert files > 0 and lines > 0 and cells > lines

    def test_table5_matches_class_names(self):
        assert set(paper_values.TABLE5_CLASSES) == set(_CLASS_NAMES)

    def test_diversity_rows_sum_to_about_100(self):
        for dataset, shares in paper_values.TABLE3_DIVERSITY.items():
            assert sum(shares.values()) == pytest.approx(100.0, abs=0.5)

    def test_troy_derived_collapse_recorded(self):
        assert paper_values.TABLE7_TROY["Strudel-L"]["derived"] == 0.070
