"""Property-based tests over the corpus generators.

Any table spec the sampler can produce must yield structurally sound
annotated files: labels consistent with emptiness, aggregates that
really aggregate, group placement rules respected.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.datatypes import parse_number
from repro.datagen.filegen import generate_file
from repro.datagen.spec import FileSpec, TableSpec
from repro.types import CellClass

_SPEC = st.builds(
    TableSpec,
    n_numeric_cols=st.integers(1, 6),
    n_groups=st.integers(0, 3),
    rows_per_group=st.integers(1, 6),
    header_rows=st.integers(0, 2),
    numeric_headers=st.booleans(),
    group_subtotals=st.booleans(),
    grand_total=st.booleans(),
    derived_column=st.booleans(),
    anchored_total_words=st.booleans(),
    plain_key_totals=st.booleans(),
    subtotals_on_top=st.booleans(),
    group_column=st.booleans(),
    blank_after_header=st.booleans(),
    blank_between_groups=st.booleans(),
    missing_value_rate=st.sampled_from([0.0, 0.05, 0.2]),
    float_values=st.booleans(),
)

_FILE = st.builds(
    FileSpec,
    domain=st.sampled_from(["admin", "business", "science", "foreign"]),
    metadata_lines=st.integers(0, 3),
    notes_lines=st.integers(0, 3),
    notes_as_table=st.booleans(),
    notes_multicell=st.booleans(),
    metadata_as_table=st.booleans(),
    metadata_split_cells=st.booleans(),
    tables=st.lists(_SPEC, min_size=1, max_size=2),
)


@given(spec=_FILE, seed=st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_generated_labels_are_structurally_sound(spec, seed):
    annotated = generate_file(spec, np.random.default_rng(seed), "prop")
    table = annotated.table

    for i in range(table.n_rows):
        line_label = annotated.line_labels[i]
        row_empty = table.is_empty_row(i)
        # Empty lines carry the EMPTY label and vice versa.
        assert row_empty == (line_label is CellClass.EMPTY)
        for j in range(table.n_cols):
            cell_label = annotated.cell_labels[i][j]
            cell_empty = table.is_empty_cell(i, j)
            assert cell_empty == (cell_label is CellClass.EMPTY)

    # Non-empty cells in a DATA line are only data/group/derived/notes
    # (group columns and derived columns legitimately mix in).
    allowed_in_data = {
        CellClass.DATA, CellClass.GROUP, CellClass.DERIVED,
        CellClass.NOTES,
    }
    for i in range(table.n_rows):
        if annotated.line_labels[i] is CellClass.DATA:
            for j in range(table.n_cols):
                label = annotated.cell_labels[i][j]
                if label is not CellClass.EMPTY:
                    assert label in allowed_in_data


@given(seed=st.integers(0, 10_000), n_cols=st.integers(1, 5),
       rows=st.integers(2, 6))
@settings(max_examples=50, deadline=None)
def test_subtotals_sum_displayed_values(seed, n_cols, rows):
    """Derived subtotal cells equal the sum of the displayed values of
    their group's data rows (missing cells count as zero)."""
    spec = FileSpec(
        metadata_lines=0,
        notes_lines=0,
        tables=[
            TableSpec(
                n_numeric_cols=n_cols,
                n_groups=1,
                rows_per_group=rows,
                header_rows=1,
                group_subtotals=True,
                grand_total=False,
                derived_column=False,
                anchored_total_words=True,
                missing_value_rate=0.1,
                float_values=False,
            )
        ],
    )
    annotated = generate_file(spec, np.random.default_rng(seed), "sum")
    table = annotated.table

    derived_lines = [
        i
        for i in range(table.n_rows)
        if annotated.line_labels[i] is CellClass.DERIVED
    ]
    assert len(derived_lines) == 1
    total_line = derived_lines[0]
    data_lines = [
        i
        for i in range(table.n_rows)
        if annotated.line_labels[i] is CellClass.DATA
    ]
    for j in range(1, 1 + n_cols):
        expected = sum(
            parse_number(table.cell(i, j)) or 0.0 for i in data_lines
        )
        actual = parse_number(table.cell(total_line, j))
        assert actual is not None
        assert abs(actual - expected) < 1e-6


@given(seed=st.integers(0, 5_000))
@settings(max_examples=30, deadline=None)
def test_derived_column_cells_are_row_sums(seed):
    spec = FileSpec(
        metadata_lines=0,
        notes_lines=0,
        tables=[
            TableSpec(
                n_numeric_cols=3,
                n_groups=0,
                rows_per_group=4,
                header_rows=1,
                group_subtotals=False,
                grand_total=False,
                derived_column=True,
                missing_value_rate=0.15,
            )
        ],
    )
    annotated = generate_file(spec, np.random.default_rng(seed), "col")
    table = annotated.table
    last = table.n_cols - 1
    for i in range(table.n_rows):
        if annotated.line_labels[i] is not CellClass.DATA:
            continue
        row_sum = sum(
            parse_number(table.cell(i, j)) or 0.0 for j in range(1, last)
        )
        derived_value = parse_number(table.cell(i, last))
        assert derived_value is not None
        assert abs(derived_value - row_sum) < 1e-6
