"""Tests for relational table extraction."""

from __future__ import annotations

import pytest

from repro.core.extraction import (
    ExtractedTable,
    _segment_regions,
    extract_tables,
)
from repro.core.strudel import StructureResult
from repro.dialect.dialect import Dialect
from repro.types import CellClass, Table

M = CellClass.METADATA
H = CellClass.HEADER
G = CellClass.GROUP
D = CellClass.DATA
V = CellClass.DERIVED
N = CellClass.NOTES
E = CellClass.EMPTY


def _result(rows, line_classes, cell_classes=None):
    table = Table(rows)
    if cell_classes is None:
        cell_classes = {}
        for i, klass in enumerate(line_classes):
            if klass in (E,):
                continue
            for j, value in enumerate(table.row(i)):
                if value.strip():
                    cell_classes[(i, j)] = klass
    return StructureResult(
        dialect=Dialect.standard(),
        table=table,
        line_classes=line_classes,
        cell_classes=cell_classes,
    )


@pytest.fixture
def classified_file():
    rows = [
        ["Report Title", "", ""],
        ["", "", ""],
        ["State", "A", "B"],
        ["North", "", ""],
        ["x", "1", "2"],
        ["y", "3", "4"],
        ["Total", "4", "6"],
        ["", "", ""],
        ["Note: something.", "", ""],
    ]
    line_classes = [M, E, H, G, D, D, V, E, N]
    cell_classes = {
        (0, 0): M,
        (2, 0): H, (2, 1): H, (2, 2): H,
        (3, 0): G,
        (4, 0): D, (4, 1): D, (4, 2): D,
        (5, 0): D, (5, 1): D, (5, 2): D,
        (6, 0): G, (6, 1): V, (6, 2): V,
        (8, 0): N,
    }
    return _result(rows, line_classes, cell_classes)


class TestSegmentation:
    def test_single_region(self):
        assert _segment_regions([M, E, H, D, D, E, N]) == [(2, 4)]

    def test_empty_lines_bridge_regions(self):
        assert _segment_regions([H, D, E, D, D]) == [(0, 4)]

    def test_metadata_splits_regions(self):
        classes = [H, D, D, E, M, H, D]
        assert _segment_regions(classes) == [(0, 2), (5, 6)]

    def test_no_regions(self):
        assert _segment_regions([M, N, E]) == []


class TestExtraction:
    def test_basic_shape(self, classified_file):
        tables = extract_tables(classified_file)
        assert len(tables) == 1
        extracted = tables[0]
        assert extracted.columns == ["State", "A", "B"]
        assert extracted.n_rows == 2
        assert extracted.metadata == ["Report Title"]
        assert extracted.notes == ["Note: something."]

    def test_group_context_resolved(self, classified_file):
        extracted = extract_tables(classified_file)[0]
        assert all(row.group == "North" for row in extracted.rows)

    def test_derived_dropped_by_default(self, classified_file):
        extracted = extract_tables(classified_file)[0]
        assert all(not row.is_derived for row in extracted.rows)

    def test_keep_derived(self, classified_file):
        extracted = extract_tables(classified_file, keep_derived=True)[0]
        derived = [row for row in extracted.rows if row.is_derived]
        assert len(derived) == 1
        # The 'Total' leading cell is a group cell in the derived line,
        # so it resolves as that row's group context.
        assert derived[0].group == "Total"

    def test_to_grid_with_group_column(self, classified_file):
        grid = extract_tables(classified_file)[0].to_grid()
        assert grid[0] == ["group", "State", "A", "B"]
        assert grid[1] == ["North", "x", "1", "2"]

    def test_to_grid_without_group_column(self, classified_file):
        grid = extract_tables(classified_file)[0].to_grid(
            include_group_column=False
        )
        assert grid[0] == ["State", "A", "B"]

    def test_unlabelled_columns_get_positional_names(self):
        rows = [["", "A"], ["x", "1"]]
        result = _result(rows, [H, D])
        extracted = extract_tables(result)[0]
        assert extracted.columns == ["column_0", "A"]

    def test_multi_line_headers_joined(self):
        rows = [["", "2020"], ["State", "Count"], ["x", "1"]]
        result = _result(rows, [H, H, D])
        extracted = extract_tables(result)[0]
        assert extracted.columns == ["State", "2020 Count"]

    def test_stacked_tables_split_and_attribute_context(self):
        rows = [
            ["Table 1", ""],
            ["A", "B"],
            ["1", "2"],
            ["Note one.", ""],
            ["Table 2", ""],
            ["C", "D"],
            ["3", "4"],
            ["Note two.", ""],
        ]
        classes = [M, H, D, N, M, H, D, N]
        tables = extract_tables(_result(rows, classes))
        assert len(tables) == 2
        assert tables[0].metadata == ["Table 1"]
        assert tables[0].notes == ["Note one."]
        assert tables[1].metadata == ["Table 2"]
        assert tables[1].notes == ["Note two."]

    def test_file_without_tables(self):
        result = _result([["hello"]], [M])
        assert extract_tables(result) == []

    def test_end_to_end_with_pipeline(self, tiny_corpus):
        from repro.core.strudel import StrudelPipeline

        files = tiny_corpus.files
        pipeline = StrudelPipeline(n_estimators=10, random_state=0)
        pipeline.fit(files[:9])
        result = pipeline.analyze_table(files[10].table)
        tables = extract_tables(result)
        assert tables, "the generated file must yield at least one table"
        assert all(isinstance(t, ExtractedTable) for t in tables)
        widths = {len(r.values) for t in tables for r in t.rows}
        assert len(widths) <= 1  # rectangular relations
