"""Tests for the alternative backbones: Naive Bayes, kNN, linear SVM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.knn import KNeighborsClassifier
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.svm import LinearSVM


def _blobs(seed=0, n=120):
    """Three well-separated Gaussian blobs."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [6, 0], [0, 6]])
    X = np.vstack(
        [rng.normal(c, 0.7, size=(n // 3, 2)) for c in centers]
    )
    y = np.repeat(np.arange(3), n // 3)
    return X, y


class TestGaussianNaiveBayes:
    def test_separates_blobs(self):
        X, y = _blobs()
        model = GaussianNaiveBayes().fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_proba_normalized(self):
        X, y = _blobs()
        proba = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_constant_feature_does_not_crash(self):
        X, y = _blobs()
        X = np.hstack([X, np.ones((len(X), 1))])
        model = GaussianNaiveBayes().fit(X, y)
        assert np.isfinite(model.predict_proba(X)).all()

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            GaussianNaiveBayes().predict(np.zeros((1, 2)))


class TestKNN:
    def test_separates_blobs(self):
        X, y = _blobs()
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_one_neighbor_memorizes(self):
        X, y = _blobs()
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert (model.predict(X) == y).mean() == 1.0

    def test_k_larger_than_training_set(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, y)
        proba = model.predict_proba(np.array([[0.5]]))
        assert proba.shape == (1, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_blocking_does_not_change_result(self):
        X, y = _blobs()
        small = KNeighborsClassifier(n_neighbors=3, block_size=7).fit(X, y)
        large = KNeighborsClassifier(n_neighbors=3, block_size=4096).fit(X, y)
        assert np.array_equal(small.predict(X), large.predict(X))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            KNeighborsClassifier(n_neighbors=0)


class TestLinearSVM:
    def test_separates_blobs(self):
        X, y = _blobs()
        model = LinearSVM(epochs=30, random_state=0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_decision_function_shape(self):
        X, y = _blobs()
        model = LinearSVM(random_state=0).fit(X, y)
        assert model.decision_function(X).shape == (len(X), 3)

    def test_proba_normalized(self):
        X, y = _blobs()
        proba = LinearSVM(random_state=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_seed_determinism(self):
        X, y = _blobs()
        a = LinearSVM(random_state=4).fit(X, y)
        b = LinearSVM(random_state=4).fit(X, y)
        assert np.allclose(a._weights, b._weights)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LinearSVM(epochs=0)
        with pytest.raises(InvalidParameterError):
            LinearSVM(alpha=-1.0)
