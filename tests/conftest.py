"""Shared fixtures: hand-built tables and small generated corpora."""

from __future__ import annotations

import pytest

from repro.datagen import make_saus
from repro.types import AnnotatedFile, CellClass, Corpus, Table

M = CellClass.METADATA
H = CellClass.HEADER
G = CellClass.GROUP
D = CellClass.DATA
V = CellClass.DERIVED
N = CellClass.NOTES
E = CellClass.EMPTY


@pytest.fixture
def verbose_table() -> Table:
    """A small verbose CSV table with all six content classes."""
    return Table(
        [
            ["Table 1. Crime report", "", "", ""],
            ["", "", "", ""],
            ["State", "2019", "2020", "2021"],
            ["Alabama", "10", "20", "30"],
            ["Alaska", "5", "5", "5"],
            ["Total", "15", "25", "35"],
            ["", "", "", ""],
            ["Note: preliminary data.", "", "", ""],
        ]
    )


@pytest.fixture
def verbose_file(verbose_table: Table) -> AnnotatedFile:
    """The fixture table with exact line and cell labels."""
    return AnnotatedFile(
        name="fixture",
        table=verbose_table,
        line_labels=[M, E, H, D, D, V, E, N],
        cell_labels=[
            [M, E, E, E],
            [E, E, E, E],
            [H, H, H, H],
            [D, D, D, D],
            [D, D, D, D],
            [G, V, V, V],
            [E, E, E, E],
            [N, E, E, E],
        ],
    )


@pytest.fixture(scope="session")
def tiny_corpus() -> Corpus:
    """A small deterministic SAUS-personality corpus (12 files)."""
    return make_saus(seed=42, scale=0.055)


@pytest.fixture(scope="session")
def train_test_files(tiny_corpus: Corpus):
    """An 80/20 file split of the tiny corpus."""
    files = tiny_corpus.files
    cut = max(1, int(0.8 * len(files)))
    return files[:cut], files[cut:]
