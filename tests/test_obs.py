"""The observability subsystem: tracing, metrics, emitters, CLI.

The contract under test: observability only *watches*.  With the
default :class:`NullTracer` the instrumented pipeline must be
byte-identical to an uninstrumented one, and activating a real tracer
must not change a single prediction either.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.strudel import StrudelPipeline
from repro.errors import InvalidParameterError
from repro.io.writer import write_csv_text
from repro.obs import (
    NULL_TRACER,
    PIPELINE_STAGES,
    Metrics,
    NullTracer,
    Span,
    Tracer,
    activate,
    get_metrics,
    get_tracer,
    render_trace_text,
    set_tracer,
    trace_payload,
    write_trace,
)
from repro.perf.bench import BenchConfig, run_benchmark


# ----------------------------------------------------------------------
# Tracer: span nesting, ordering, determinism
# ----------------------------------------------------------------------
def _run_fixture_spans(tracer: Tracer) -> None:
    with tracer.span("analyze"):
        with tracer.span("parsing", rows=3):
            pass
        with tracer.span("line_features"):
            with tracer.span("profile"):
                pass
        with tracer.span("line_prediction"):
            pass


def test_spans_record_start_order_parents_and_depth():
    tracer = Tracer()
    _run_fixture_spans(tracer)
    got = [
        (s.name, s.index, s.parent, s.depth) for s in tracer.spans
    ]
    assert got == [
        ("analyze", 0, None, 0),
        ("parsing", 1, 0, 1),
        ("line_features", 2, 0, 1),
        ("profile", 3, 2, 2),
        ("line_prediction", 4, 0, 1),
    ]


def test_span_tree_is_deterministic_across_runs():
    shapes = []
    for _ in range(3):
        tracer = Tracer()
        _run_fixture_spans(tracer)
        shapes.append(
            [(s.name, s.parent, s.depth) for s in tracer.spans]
        )
    assert shapes[0] == shapes[1] == shapes[2]


def test_span_durations_are_nonnegative_and_closed():
    tracer = Tracer()
    _run_fixture_spans(tracer)
    for span in tracer.spans:
        assert span.end is not None
        assert span.duration >= 0.0


def test_open_span_has_zero_duration():
    span = Span(name="x", index=0, parent=None, depth=0, start=1.0)
    assert span.duration == 0.0


def test_span_closes_even_when_body_raises():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            raise RuntimeError("boom")
    assert tracer.spans[0].end is not None
    # The stack unwound: the next span is a root again.
    with tracer.span("next"):
        pass
    assert tracer.spans[1].parent is None


def test_durations_reads_first_occurrence_in_given_order():
    tracer = Tracer()
    _run_fixture_spans(tracer)
    _run_fixture_spans(tracer)  # second run appends spans 5..9
    first_run = tracer.durations(("parsing", "line_features"))
    assert list(first_run) == ["parsing", "line_features"]
    second_run = tracer.durations(("parsing",), start_index=5)
    assert second_run["parsing"] == tracer.spans[6].duration


def test_activate_scopes_and_restores_the_active_tracer():
    assert get_tracer() is NULL_TRACER
    tracer = Tracer()
    with activate(tracer):
        assert get_tracer() is tracer
    assert get_tracer() is NULL_TRACER


def test_set_tracer_returns_previous():
    tracer = Tracer()
    previous = set_tracer(tracer)
    try:
        assert previous is NULL_TRACER
        assert get_tracer() is tracer
    finally:
        set_tracer(previous)


def test_null_tracer_span_is_shared_noop():
    null = NullTracer()
    a = null.span("anything", key="value")
    b = null.span("else")
    assert a is b
    with a:
        pass


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_metrics_counters_gauges_timers_snapshot():
    metrics = Metrics()
    metrics.increment("a.count")
    metrics.increment("a.count", 4)
    metrics.gauge("a.level", 2.5)
    metrics.observe("a.seconds", 0.25)
    metrics.observe("a.seconds", 0.75)
    snapshot = metrics.snapshot()
    assert snapshot["counters"] == {"a.count": 5}
    assert snapshot["gauges"] == {"a.level": 2.5}
    timer = snapshot["timers"]["a.seconds"]
    assert timer["count"] == 2
    assert timer["total_seconds"] == pytest.approx(1.0)
    assert timer["min_seconds"] == pytest.approx(0.25)
    assert timer["max_seconds"] == pytest.approx(0.75)
    assert metrics.counter("a.count") == 5
    assert metrics.counter("unseen") == 0


def test_metrics_snapshot_is_sorted_and_json_ready():
    metrics = Metrics()
    metrics.increment("z.last")
    metrics.increment("a.first")
    snapshot = metrics.snapshot()
    assert list(snapshot["counters"]) == ["a.first", "z.last"]
    json.dumps(snapshot)  # must not raise


def test_metrics_time_context_observes_duration():
    metrics = Metrics()
    with metrics.time("block"):
        pass
    timer = metrics.snapshot()["timers"]["block"]
    assert timer["count"] == 1
    assert timer["total_seconds"] >= 0.0


def test_metrics_reset_clears_everything():
    metrics = Metrics()
    metrics.increment("x")
    metrics.gauge("y", 1.0)
    metrics.observe("z", 0.1)
    metrics.reset()
    assert metrics.snapshot() == {
        "counters": {}, "gauges": {}, "timers": {}
    }


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------
def test_trace_payload_schema_and_rebased_clocks():
    tracer = Tracer()
    _run_fixture_spans(tracer)
    metrics = Metrics()
    metrics.increment("ingest.files")
    payload = trace_payload(tracer, metrics)
    assert payload["schema"] == "repro-trace/1"
    assert payload["metrics"]["counters"] == {"ingest.files": 1}
    spans = payload["spans"]
    assert [s["name"] for s in spans] == [
        "analyze", "parsing", "line_features", "profile",
        "line_prediction",
    ]
    assert spans[0]["start_seconds"] == 0.0
    for span in spans:
        assert span["start_seconds"] >= 0.0
        assert span["duration_seconds"] >= 0.0
        assert set(span) == {
            "name", "index", "parent", "depth", "start_seconds",
            "duration_seconds", "attributes",
        }
    assert spans[1]["attributes"] == {"rows": 3}
    json.dumps(payload)  # must not raise


def test_write_trace_json_round_trips(tmp_path):
    tracer = Tracer()
    _run_fixture_spans(tracer)
    path = write_trace(tmp_path / "trace.json", tracer, fmt="json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-trace/1"
    assert len(payload["spans"]) == 5


def test_write_trace_text_renders_tree_and_metrics(tmp_path):
    tracer = Tracer()
    _run_fixture_spans(tracer)
    metrics = Metrics()
    metrics.increment("ingest.files", 2)
    path = write_trace(
        tmp_path / "trace.txt", tracer, metrics=metrics, fmt="text"
    )
    text = path.read_text(encoding="utf-8")
    assert "analyze" in text
    assert "ingest.files = 2" in text
    # Nesting is visible: profile sits deeper than line_features.
    profile_line = next(
        line for line in text.splitlines() if "profile" in line
    )
    features_line = next(
        line for line in text.splitlines() if "line_features" in line
    )
    indent = len(profile_line) - len(profile_line.lstrip())
    assert indent > len(features_line) - len(features_line.lstrip())


def test_write_trace_rejects_unknown_format(tmp_path):
    with pytest.raises(InvalidParameterError):
        write_trace(tmp_path / "t", Tracer(), fmt="yaml")


def test_render_trace_text_without_metrics():
    tracer = Tracer()
    with tracer.span("only"):
        pass
    text = render_trace_text(trace_payload(tracer))
    assert "only" in text
    assert "metrics:" not in text


# ----------------------------------------------------------------------
# Pipeline instrumentation
# ----------------------------------------------------------------------
def _fitted_pipeline(tiny_corpus) -> StrudelPipeline:
    pipeline = StrudelPipeline(n_estimators=6, random_state=0)
    pipeline.fit(tiny_corpus.files)
    return pipeline


def test_analyze_emits_every_pipeline_stage_span(tiny_corpus):
    pipeline = _fitted_pipeline(tiny_corpus)
    text = write_csv_text(tiny_corpus.files[0].table.rows())
    tracer = Tracer()
    with activate(tracer):
        pipeline.analyze(text)
    names = [span.name for span in tracer.spans]
    assert names[0] == "analyze"
    # Every stage of the glossary except ingest_decode (analyze takes
    # already-decoded text; the bytes entry points emit it — see
    # test_cli_detect_trace_round_trip) and the bench-only profile
    # span.
    for stage in PIPELINE_STAGES:
        if stage in ("profile", "ingest_decode"):
            continue
        assert stage in names, f"missing span {stage!r}"
    # All stage spans nest under the analyze root.
    analyze = tracer.spans[0]
    for span in tracer.spans[1:]:
        assert span.parent is not None
        assert span.start >= analyze.start


def test_tracing_on_is_byte_identical_to_tracing_off(tiny_corpus):
    pipeline = _fitted_pipeline(tiny_corpus)
    text = write_csv_text(tiny_corpus.files[1].table.rows())

    assert isinstance(get_tracer(), NullTracer)
    off = pipeline.analyze(text)
    with activate(Tracer()):
        on = pipeline.analyze(text)
    again_off = pipeline.analyze(text)

    for other in (on, again_off):
        assert other.line_classes == off.line_classes
        assert other.cell_classes == off.cell_classes
        assert other.dialect == off.dialect
    np.testing.assert_array_equal(
        np.array([c.value for c in off.line_classes], dtype=object),
        np.array([c.value for c in on.line_classes], dtype=object),
    )


def test_ingest_publishes_repair_metrics(tiny_corpus):
    from repro.io.ingest import ingest_bytes

    metrics = get_metrics()
    files_before = metrics.counter("ingest.files")
    nuls_before = metrics.counter("ingest.nul_chars")
    recovered_before = metrics.counter("ingest.recovered")
    result = ingest_bytes(b"a,b\x00\n1,2\n")
    assert result.report.nul_count == 1
    assert metrics.counter("ingest.files") == files_before + 1
    assert metrics.counter("ingest.nul_chars") == nuls_before + 1
    assert metrics.counter("ingest.recovered") == recovered_before + 1


def test_cross_validation_records_fold_metrics(tiny_corpus):
    from repro.core.strudel import StrudelLineClassifier
    from repro.eval.runner import cross_validate_lines
    from repro.perf.cache import FeatureCache

    metrics = get_metrics()
    folds_before = metrics.counter("cv.folds")
    attached_before = metrics.counter("cv.feature_cache_attached")
    tracer = Tracer()
    with activate(tracer):
        cross_validate_lines(
            tiny_corpus,
            lambda: StrudelLineClassifier(
                n_estimators=4, random_state=0
            ),
            n_splits=3, n_repeats=1, seed=0,
            feature_cache=FeatureCache(max_entries=64),
        )
    assert metrics.counter("cv.folds") == folds_before + 3
    assert (
        metrics.counter("cv.feature_cache_attached")
        == attached_before + 3
    )
    names = [span.name for span in tracer.spans]
    assert names.count("cross_validate") == 1
    assert names.count("cv_fold") == 3
    fold_timer = metrics.snapshot()["timers"]["cv.fold_seconds"]
    assert fold_timer["count"] >= 3


# ----------------------------------------------------------------------
# Bench integration: stages come from spans
# ----------------------------------------------------------------------
def test_bench_stage_table_matches_span_glossary():
    config = BenchConfig(
        scale=0.04, trees=4, rows=40, repeats=1, cv_splits=2,
        cv_repeats=1, cv_trees=3, quick=True,
    )
    report = run_benchmark(config)
    assert list(report["stages"]) == list(PIPELINE_STAGES)
    for stage, seconds in report["stages"].items():
        assert seconds >= 0.0, stage


# ----------------------------------------------------------------------
# CLI --trace / REPRO_TRACE
# ----------------------------------------------------------------------
def _write_sample_csv(tmp_path):
    path = tmp_path / "sample.csv"
    path.write_text(
        "Table 1. Sample\nState,2020\nAlabama,10\nTotal,10\n",
        encoding="utf-8",
    )
    return path


def test_cli_detect_trace_round_trip(tmp_path, capsys):
    csv_path = _write_sample_csv(tmp_path)
    trace_path = tmp_path / "trace.json"
    code = main(
        ["detect", str(csv_path), "--trace", str(trace_path)]
    )
    assert code == 0
    payload = json.loads(trace_path.read_text(encoding="utf-8"))
    assert payload["schema"] == "repro-trace/1"
    names = [span["name"] for span in payload["spans"]]
    assert names[0] == "detect"
    assert "ingest_decode" in names
    assert "dialect_detection" in names
    assert "metrics" in payload
    assert "trace written to" in capsys.readouterr().err
    # The active tracer is restored after the command.
    assert isinstance(get_tracer(), NullTracer)


def test_cli_trace_text_format(tmp_path):
    csv_path = _write_sample_csv(tmp_path)
    trace_path = tmp_path / "trace.txt"
    code = main(
        [
            "detect", str(csv_path),
            "--trace", str(trace_path),
            "--trace-format", "text",
        ]
    )
    assert code == 0
    assert "trace (repro-trace/1)" in trace_path.read_text(
        encoding="utf-8"
    )


def test_cli_trace_env_var(tmp_path, monkeypatch):
    csv_path = _write_sample_csv(tmp_path)
    trace_path = tmp_path / "env-trace.json"
    monkeypatch.setenv("REPRO_TRACE", str(trace_path))
    code = main(["detect", str(csv_path)])
    assert code == 0
    payload = json.loads(trace_path.read_text(encoding="utf-8"))
    assert payload["spans"][0]["name"] == "detect"


def test_cli_trace_env_bad_format_rejected(tmp_path, monkeypatch):
    csv_path = _write_sample_csv(tmp_path)
    monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.json"))
    monkeypatch.setenv("REPRO_TRACE_FORMAT", "yaml")
    assert main(["detect", str(csv_path)]) == 2


def test_cli_without_trace_writes_nothing(tmp_path):
    csv_path = _write_sample_csv(tmp_path)
    assert main(["detect", str(csv_path)]) == 0
    assert list(tmp_path.glob("*.json")) == []
