"""Fine-grained tests of baseline internals: rules and features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.crf_line import CRFLineClassifier
from repro.baselines.pytheas import (
    PytheasLineClassifier,
    _default_rules,
    _LineView,
)
from repro.datagen import vocab
from repro.types import DataType, Table


def _view(cells: list[str]) -> _LineView:
    from repro.core.datatypes import infer_data_type

    return _LineView(
        index=0,
        n_lines=10,
        cells=cells,
        types=[infer_data_type(v) for v in cells],
    )


def _rule(name: str):
    return next(r for r in _default_rules() if r.name == name)


class TestPytheasRules:
    def test_numeric_majority(self):
        rule = _rule("numeric_majority")
        assert rule.votes_data
        assert rule.fires(_view(["x", "1", "2"]))
        assert not rule.fires(_view(["x", "y", "1"]))
        assert not rule.fires(_view(["1"]))  # needs >= 2 cells

    def test_many_cells(self):
        rule = _rule("many_cells")
        assert rule.fires(_view(["a", "b", "c"]))
        assert not rule.fires(_view(["a", "b", ""]))

    def test_leading_key_value_shape(self):
        rule = _rule("leading_key_value_shape")
        assert rule.fires(_view(["Alabama", "10", "20"]))
        assert not rule.fires(_view(["10", "20", "30"]))
        assert not rule.fires(_view(["Alabama", "x", "20"]))

    def test_single_leading_cell(self):
        rule = _rule("single_leading_cell")
        assert not rule.votes_data
        assert rule.fires(_view(["West", "", ""]))
        assert not rule.fires(_view(["", "West", ""]))

    def test_long_natural_text(self):
        rule = _rule("long_natural_text")
        assert rule.fires(
            _view(["Note: this is a very long explanatory sentence here."])
        )
        assert not rule.fires(_view(["short", "1"]))

    def test_mostly_empty(self):
        rule = _rule("mostly_empty")
        assert rule.fires(_view(["x", "", "", "", ""]))
        assert not rule.fires(_view(["x", "y", "", ""]))

    def test_aggregation_keyword(self):
        rule = _rule("aggregation_keyword")
        assert rule.fires(_view(["Total", "1", "2"]))
        assert not rule.fires(_view(["Totally", "1", "2"]))

    def test_all_string_cells(self):
        rule = _rule("all_string_cells")
        assert rule.fires(_view(["State", "Name"]))
        assert not rule.fires(_view(["State", "1"]))

    def test_unfitted_confidence_uses_unit_weights(self):
        model = PytheasLineClassifier()
        confidence = model.data_confidence(_view(["Alabama", "10", "20"]))
        assert -1.0 <= confidence <= 1.0


class TestCRFFeatures:
    def test_raw_counts(self):
        model = CRFLineClassifier()
        counts = model._raw_counts([["Total revenue", "1,234", ""]])
        # cells, words, characters, numerics
        assert counts[0, 0] == 2
        assert counts[0, 1] == 4  # Total, revenue, 1, 234
        assert counts[0, 3] == 1

    def test_continuous_position_flags(self):
        model = CRFLineClassifier()
        rows = [["a"], ["b"], ["c"]]
        continuous = model._continuous(rows)
        assert continuous[0, 5] == 1.0  # first line flag
        assert continuous[2, 6] == 1.0  # last line flag
        assert continuous[1, 4] == pytest.approx(0.5)  # position

    def test_context_features_are_shifted_copies(self):
        model = CRFLineClassifier()
        table = Table([["1", "2"], ["a", "b"], ["3", "4"]])
        features = model._features(table)
        continuous = model._continuous(list(table.rows()))
        d = continuous.shape[1]
        own_width = features.shape[1] - 2 * d
        above = features[:, own_width : own_width + d]
        below = features[:, own_width + d :]
        assert np.allclose(above[1], continuous[0])
        assert np.allclose(above[0], 0.0)
        assert np.allclose(below[1], continuous[2])
        assert np.allclose(below[2], 0.0)

    def test_no_lexical_keyword_feature(self):
        """CRF-L must not see the aggregation dictionary — that cue is
        Strudel's novel feature, not the baseline's."""
        model = CRFLineClassifier()
        with_kw = model._features(Table([["Total", "1"], ["x", "2"]]))
        without = model._features(Table([["Zzzzz", "1"], ["x", "2"]]))
        assert np.allclose(with_kw, without)


class TestVocab:
    def test_titles_fill_templates(self):
        rng = np.random.default_rng(0)
        for domain in ("admin", "business", "science", "foreign"):
            title = vocab.make_title(rng, domain, 1)
            assert "{" not in title and "}" not in title
            assert len(title) > 5

    def test_notes_fill_templates(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            note = vocab.make_note(rng)
            assert "{" not in note

    def test_config_metadata_shape(self):
        rng = np.random.default_rng(0)
        cells = vocab.make_config_metadata(rng)
        assert len(cells) == 3
        from repro.core.datatypes import parse_number

        assert parse_number(cells[1]) is not None

    def test_unanchored_words_contain_no_keywords(self):
        from repro.core.keywords import contains_aggregation_keyword

        for word in vocab.TOTAL_WORDS_UNANCHORED:
            assert not contains_aggregation_keyword(word), word

    def test_anchored_words_contain_keywords(self):
        from repro.core.keywords import contains_aggregation_keyword

        for word in vocab.TOTAL_WORDS_ANCHORED:
            assert contains_aggregation_keyword(word), word
