"""Tests for data-type inference and numeric parsing."""

from __future__ import annotations

import pytest

from repro.core.datatypes import infer_data_type, is_numeric_type, parse_number
from repro.core.keywords import (
    AGGREGATION_KEYWORDS,
    contains_aggregation_keyword,
    line_contains_aggregation_keyword,
)
from repro.types import DataType


class TestInferDataType:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("", DataType.EMPTY),
            ("   ", DataType.EMPTY),
            ("42", DataType.INT),
            ("-7", DataType.INT),
            ("1,234,567", DataType.INT),
            ("2019", DataType.INT),  # bare years type as integers
            ("3.14", DataType.FLOAT),
            ("-0.5", DataType.FLOAT),
            ("1,234.5", DataType.FLOAT),
            ("1e5", DataType.FLOAT),
            ("2020-01-31", DataType.DATE),
            ("31/12/2020", DataType.DATE),
            ("2020/01", DataType.DATE),
            ("5 March 2019", DataType.DATE),
            ("Mar 5, 2019", DataType.DATE),
            ("hello", DataType.STRING),
            ("Total:", DataType.STRING),
            ("12 apples", DataType.STRING),
        ],
    )
    def test_cases(self, value, expected):
        assert infer_data_type(value) is expected

    def test_is_numeric_type(self):
        assert is_numeric_type(DataType.INT)
        assert is_numeric_type(DataType.FLOAT)
        assert not is_numeric_type(DataType.STRING)
        assert not is_numeric_type(DataType.DATE)
        assert not is_numeric_type(DataType.EMPTY)


class TestParseNumber:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("42", 42.0),
            ("-3.5", -3.5),
            ("1,234", 1234.0),
            ("1,234.56", 1234.56),
            ("$1,000", 1000.0),
            ("€50", 50.0),
            ("12%", 12.0),
            ("(123)", -123.0),
            ("( 42 )", -42.0),
            ("  7  ", 7.0),
        ],
    )
    def test_parses(self, value, expected):
        assert parse_number(value) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "value", ["", "abc", "2020-01-01", "12 apples", "-", "n/a", "()"]
    )
    def test_rejects(self, value):
        assert parse_number(value) is None


class TestKeywords:
    def test_dictionary_matches_paper(self):
        assert AGGREGATION_KEYWORDS == {
            "total", "all", "sum", "average", "avg", "mean", "median",
        }

    @pytest.mark.parametrize(
        "text", ["Total", "TOTAL:", "Grand total", "All items", "the Avg"]
    )
    def test_positive(self, text):
        assert contains_aggregation_keyword(text)

    @pytest.mark.parametrize("text", ["totally", "summer", "meaning", ""])
    def test_negative_substrings(self, text):
        assert not contains_aggregation_keyword(text)

    def test_line_level(self):
        assert line_contains_aggregation_keyword(["x", "", "Sum"])
        assert not line_contains_aggregation_keyword(["x", "y"])
