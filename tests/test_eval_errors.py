"""Tests for the Section 6.3.6 error-analysis module."""

from __future__ import annotations

import pytest

from repro.eval.errors import (
    ROOT_CAUSES,
    analyze_errors,
    data_sink_share,
    format_error_report,
)
from repro.types import CellClass

D = CellClass.DATA
V = CellClass.DERIVED
H = CellClass.HEADER
N = CellClass.NOTES


class TestAnalyzeErrors:
    def test_pattern_above_threshold_reported(self):
        y_true = [V] * 10 + [D] * 90
        y_pred = [D] * 4 + [V] * 6 + [D] * 90
        patterns = analyze_errors(y_true, y_pred)
        assert len(patterns) == 1
        pattern = patterns[0]
        assert pattern.actual is V and pattern.predicted is D
        assert pattern.count == 4
        assert pattern.share_of_actual == pytest.approx(0.4)
        assert pattern.root_cause is not None

    def test_pattern_below_threshold_suppressed(self):
        y_true = [V] * 100
        y_pred = [D] * 5 + [V] * 95  # 5% < 10% threshold
        assert analyze_errors(y_true, y_pred) == []

    def test_sorted_by_share(self):
        y_true = [V] * 10 + [H] * 10
        y_pred = [D] * 9 + [V] + [D] * 3 + [H] * 7
        patterns = analyze_errors(y_true, y_pred)
        shares = [p.share_of_actual for p in patterns]
        assert shares == sorted(shares, reverse=True)

    def test_unknown_pattern_has_no_root_cause(self):
        y_true = [D] * 10
        y_pred = [N] * 2 + [D] * 8
        patterns = analyze_errors(y_true, y_pred)
        assert patterns[0].root_cause is None

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            analyze_errors([D], [D, D])

    def test_perfect_predictions(self):
        assert analyze_errors([D, V], [D, V]) == []


class TestFormatting:
    def test_report_lines(self):
        y_true = [V] * 10
        y_pred = [D] * 4 + [V] * 6
        text = format_error_report(analyze_errors(y_true, y_pred))
        assert "derived as data" in text
        assert "40%" in text

    def test_empty_report(self):
        assert "no confusion" in format_error_report([])


class TestDataSink:
    def test_all_errors_to_data(self):
        y_true = [V, H, N]
        y_pred = [D, D, D]
        assert data_sink_share(y_true, y_pred) == 1.0

    def test_mixed_errors(self):
        y_true = [V, H]
        y_pred = [D, N]
        assert data_sink_share(y_true, y_pred) == 0.5

    def test_no_errors(self):
        assert data_sink_share([V], [V]) == 0.0

    def test_data_errors_excluded(self):
        # Misclassified *data* lines do not count as minority errors.
        y_true = [D, V]
        y_pred = [H, D]
        assert data_sink_share(y_true, y_pred) == 1.0


class TestRootCauses:
    def test_catalogue_matches_paper_patterns(self):
        names = {
            (a.value, p.value) for (a, p) in ROOT_CAUSES
        }
        for pair in (
            ("derived", "data"),
            ("header", "data"),
            ("notes", "data"),
            ("group", "data"),
            ("metadata", "data"),
            ("derived", "header"),
        ):
            assert pair in names
