"""The serve layer: protocol, dead-letter queue, service, replay.

The contract under test is the sweep parity contract extended across
the service boundary: a payload classified through the asyncio front
end — in-process or over the ``repro-serve/1`` wire — produces the
same prediction bytes as a direct engine sweep.  The failure half
mirrors the engine's loud-degradation promise: every failed request
resolves to a :class:`SkipEntry`, lands durably in the DLQ, and is
recoverable by ``replay`` once the cause (here: a strict policy) is
fixed.
"""

from __future__ import annotations

import asyncio
import hashlib
import json

import pytest

from repro.core.strudel import StrudelPipeline
from repro.errors import ProtocolError, ServeError
from repro.io.ingest import IngestPolicy
from repro.io.writer import write_csv_text
from repro.obs import get_metrics
from repro.perf.engine import CorpusEngine, FileResult, SkipEntry
from repro.serve import (
    DLQ_SCHEMA,
    ClassificationService,
    DeadLetter,
    DeadLetterQueue,
    ServiceClient,
    connect,
    decode_request,
    encode_request,
    replay_dead_letters,
    result_from_payload,
)

#: Bytes the lenient ingest policy repairs but the strict one rejects.
DAMAGED = b"Region,Q1\nNorth,\x005\nSouth,6\n"

#: A deterministic clock for byte-exact dead-letter records.
T0 = "2026-01-01T00:00:00+00:00"


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_pipeline(tiny_corpus) -> StrudelPipeline:
    pipeline = StrudelPipeline(n_estimators=4, random_state=0)
    pipeline.fit(tiny_corpus.files)
    return pipeline


@pytest.fixture(scope="module")
def corpus_dir(tiny_corpus, tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve_corpus")
    paths = []
    for file in tiny_corpus.files[:4]:
        path = directory / f"{file.name}.csv"
        path.write_text(
            write_csv_text(file.table.rows()), encoding="utf-8"
        )
        paths.append(path)
    return paths


def _arrays(result: FileResult):
    return (
        result.dialect,
        result.line_codes.tobytes(),
        result.cell_positions.tobytes(),
        result.cell_codes.tobytes(),
    )


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_request_roundtrip_path(self):
        line = encode_request("r1", path="/data/a.csv")
        request = decode_request(line)
        assert request.id == "r1"
        assert request.op == "classify"
        assert request.path == "/data/a.csv"
        assert request.data is None
        assert request.display_name == "/data/a.csv"

    def test_request_roundtrip_bytes_with_name(self):
        line = encode_request("r2", data=b"a,b\n1,2\n", name="upload")
        request = decode_request(line)
        assert request.data == b"a,b\n1,2\n"
        assert request.path is None
        assert request.display_name == "upload"

    def test_request_without_name_labels_by_id(self):
        request = decode_request(encode_request("r9", data=b"x,y\n"))
        assert request.display_name == "<bytes:r9>"

    def test_op_defaults_to_classify(self):
        request = decode_request(b'{"id": "r1", "path": "a.csv"}\n')
        assert request.op == "classify"

    @pytest.mark.parametrize(
        "line",
        [
            b"\xff\xfe not utf-8",
            b"this is not json\n",
            b"[1, 2, 3]\n",
            b'{"op": "classify", "path": "a.csv"}\n',  # no id
            b'{"id": "", "path": "a.csv"}\n',  # empty id
            b'{"id": 7, "path": "a.csv"}\n',  # non-string id
            b'{"id": "r1", "op": "explode", "path": "a.csv"}\n',
            b'{"id": "r1"}\n',  # classify with no payload
            b'{"id": "r1", "path": "a", "data_b64": "YQ=="}\n',  # both
            b'{"id": "r1", "path": 4}\n',
            b'{"id": "r1", "data_b64": "!!!not base64!!!"}\n',
            b'{"id": "r1", "data_b64": 4}\n',
            b'{"id": "r1", "path": "a.csv", "name": 4}\n',
        ],
    )
    def test_violations_raise_protocol_error(self, line):
        with pytest.raises(ProtocolError):
            decode_request(line)

    def test_ping_and_stats_need_no_payload(self):
        assert decode_request(b'{"id": "r1", "op": "ping"}\n').op == "ping"
        assert (
            decode_request(b'{"id": "r2", "op": "stats"}\n').op
            == "stats"
        )


# ----------------------------------------------------------------------
# DeadLetterQueue
# ----------------------------------------------------------------------
class TestDeadLetterQueue:
    def test_append_is_durable_and_deterministic(self, tmp_path):
        metrics = get_metrics()
        before = metrics.counter("serve.dead_letters")
        queue = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        record = queue.append(
            "r1", "upload.csv", "classify", "boom", payload=DAMAGED
        )
        assert record.timestamp == T0
        assert record.payload_sha256 == hashlib.sha256(
            DAMAGED
        ).hexdigest()
        assert record.replays == 0
        assert metrics.counter("serve.dead_letters") == before + 1
        # Round-trips through the journal, payload included.
        reloaded = DeadLetterQueue(tmp_path / "dlq")
        assert reloaded.records() == [record]
        assert reloaded.payload(record) == DAMAGED
        assert len(reloaded) == 1
        # The journal line is the documented repro-dlq/1 shape.
        (line,) = (
            (tmp_path / "dlq" / "records.ndjson")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        assert json.loads(line)["schema"] == DLQ_SCHEMA

    def test_read_failures_park_no_payload(self, tmp_path):
        queue = DeadLetterQueue(tmp_path, clock=lambda: T0)
        record = queue.append("r1", "gone.csv", "read", "ENOENT")
        assert record.payload_sha256 is None
        assert queue.payload(record) is None
        assert not (tmp_path / "payloads").exists()

    def test_corrupt_journal_lines_are_skipped(self, tmp_path):
        queue = DeadLetterQueue(tmp_path, clock=lambda: T0)
        queue.append("r1", "a.csv", "classify", "x", payload=b"a")
        queue.append("r2", "b.csv", "classify", "y", payload=b"b")
        with open(
            tmp_path / "records.ndjson", "a", encoding="utf-8"
        ) as handle:
            handle.write("definitely not json\n")
            handle.write('{"schema": "wrong/1", "request_id": "r3"}\n')
            handle.write('{"schema": "repro-dlq/1", "request_id": 7}\n')
        assert [r.request_id for r in queue.records()] == ["r1", "r2"]

    def test_replace_prunes_unreferenced_payloads(self, tmp_path):
        queue = DeadLetterQueue(tmp_path, clock=lambda: T0)
        keep = queue.append("r1", "a.csv", "classify", "x", payload=b"a")
        drop = queue.append("r2", "b.csv", "classify", "y", payload=b"b")
        queue.replace([keep])
        assert queue.records() == [keep]
        assert queue.payload(keep) == b"a"
        assert queue.payload(drop) is None

    def test_purge_empties_everything(self, tmp_path):
        queue = DeadLetterQueue(tmp_path, clock=lambda: T0)
        queue.append("r1", "a.csv", "classify", "x", payload=b"a")
        queue.append("r2", "b.csv", "read", "y")
        assert queue.purge() == 2
        assert len(queue) == 0
        assert list((tmp_path / "payloads").glob("*.bin")) == []

    def test_missing_directory_reads_as_empty(self, tmp_path):
        assert DeadLetterQueue(tmp_path / "never").records() == []

    def test_from_dict_rejects_malformed_records(self):
        assert DeadLetter.from_dict("not a dict") is None
        assert DeadLetter.from_dict({"schema": "other/1"}) is None


# ----------------------------------------------------------------------
# ClassificationService: in-process end to end
# ----------------------------------------------------------------------
class TestServiceRoundtrip:
    def test_serves_paths_and_bytes_byte_identical(
        self, fitted_pipeline, corpus_dir
    ):
        """The parity contract across the service boundary: served
        results match a direct engine sweep array-byte for array-byte,
        and the same payload as raw bytes matches its path twin."""

        async def drive():
            service = ClassificationService(fitted_pipeline, n_jobs=1)
            await service.start()
            client = ServiceClient(service)
            served = await asyncio.gather(
                *[client.classify_path(p) for p in corpus_dir]
            )
            raw = await client.classify_bytes(
                corpus_dir[0].read_bytes(), name=str(corpus_dir[0])
            )
            summary = await service.drain()
            return served, raw, summary

        served, raw, summary = asyncio.run(drive())
        with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
            direct, report = engine.sweep_paths(corpus_dir)
        assert report.skipped == []
        assert [_arrays(r) for r in served] == [
            _arrays(result) for _path, result in direct
        ]
        assert _arrays(raw) == _arrays(served[0])
        assert summary["requests"] == len(corpus_dir) + 1
        assert summary["results"] == len(corpus_dir) + 1
        assert summary["dead_letters"] == 0
        assert summary["inflight"] == 0
        assert summary["accepting"] is False

    def test_drain_under_load_answers_everything(
        self, fitted_pipeline, corpus_dir
    ):
        """Drain while requests are queued: every accepted request is
        still answered (queue.join semantics), then admission stops."""
        payloads = [p.read_bytes() for p in corpus_dir] * 5

        async def drive():
            service = ClassificationService(
                fitted_pipeline, n_jobs=1, batch_files=8
            )
            await service.start()
            client = ServiceClient(service)
            tasks = [
                asyncio.ensure_future(
                    client.classify_bytes(data, name=f"p{i}")
                )
                for i, data in enumerate(payloads)
            ]
            # One tick: every submit passes admission and enqueues.
            await asyncio.sleep(0)
            summary = await service.drain()
            outcomes = await asyncio.gather(*tasks)
            with pytest.raises(ServeError):
                await client.classify_bytes(b"a,b\n", name="late")
            return outcomes, summary

        outcomes, summary = asyncio.run(drive())
        assert len(outcomes) == len(payloads)
        assert all(isinstance(o, FileResult) for o in outcomes)
        assert summary["requests"] == len(payloads)
        assert summary["results"] == len(payloads)
        assert summary["inflight"] == 0

    def test_lifecycle_is_single_use(self, fitted_pipeline):
        async def drive():
            service = ClassificationService(fitted_pipeline)
            await service.start()
            with pytest.raises(ServeError):
                await service.start()
            await service.drain()
            with pytest.raises(ServeError):
                await service.submit_bytes(b"a,b\n")
            with pytest.raises(ServeError):
                await service.start()

        asyncio.run(drive())

    def test_rejects_degenerate_bounds(self, fitted_pipeline):
        with pytest.raises(ServeError):
            ClassificationService(fitted_pipeline, queue_size=0)
        with pytest.raises(ServeError):
            ClassificationService(fitted_pipeline, batch_files=0)

    def test_failures_dead_letter_durably(
        self, fitted_pipeline, tmp_path
    ):
        """A strict-policy rejection and an unreadable path both
        resolve to skips and land in the DLQ with the right stages."""
        dlq = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        missing = tmp_path / "missing.csv"

        async def drive():
            service = ClassificationService(
                fitted_pipeline,
                policy=IngestPolicy(strict=True),
                dlq=dlq,
            )
            await service.start()
            bad = await service.submit_bytes(DAMAGED, name="damaged")
            gone = await service.submit_path(missing)
            summary = await service.drain()
            return bad, gone, summary

        bad, gone, summary = asyncio.run(drive())
        assert isinstance(bad, SkipEntry) and bad.stage == "classify"
        assert isinstance(gone, SkipEntry) and gone.stage == "read"
        assert summary["dead_letters"] == 2
        by_stage = {r.stage: r for r in dlq.records()}
        assert set(by_stage) == {"classify", "read"}
        assert by_stage["classify"].source == "damaged"
        assert dlq.payload(by_stage["classify"]) == DAMAGED
        assert by_stage["read"].payload_sha256 is None
        assert by_stage["read"].source == str(missing)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
class TestReplay:
    def _dead_letter_strictly(self, fitted_pipeline, dlq, missing):
        """Serve one strict-rejected payload and one missing path."""

        async def drive():
            service = ClassificationService(
                fitted_pipeline,
                policy=IngestPolicy(strict=True),
                dlq=dlq,
            )
            await service.start()
            await service.submit_bytes(DAMAGED, name="damaged")
            await service.submit_path(missing)
            await service.drain()

        asyncio.run(drive())

    def test_lenient_replay_recovers_strict_rejections(
        self, fitted_pipeline, tmp_path
    ):
        """The fixed-the-cause story: strict dead-letters the damaged
        payload, a default-lenient replay recovers it; the missing
        path stays unreplayable until the file appears."""
        dlq = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        missing = tmp_path / "missing.csv"
        self._dead_letter_strictly(fitted_pipeline, dlq, missing)
        assert len(dlq) == 2

        with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
            report = replay_dead_letters(dlq, engine)
        assert report.total == 2
        assert report.recovered == 1
        assert report.unreplayable == 1
        assert report.still_dead == 0
        (left,) = dlq.records()
        assert left.stage == "read" and left.replays == 0

        # The operator restores the file: the next replay drains it.
        missing.write_text("a,b\n1,2\n3,4\n", encoding="utf-8")
        with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
            report = replay_dead_letters(dlq, engine)
        assert report.recovered == 1
        assert len(dlq) == 0
        assert list((tmp_path / "dlq" / "payloads").glob("*.bin")) == []

    def test_still_strict_replay_bumps_not_drops(
        self, fitted_pipeline, tmp_path
    ):
        """Replaying under the same strict policy keeps the record,
        bumps ``replays``, and re-stamps it from the queue clock."""
        dlq = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        dlq.append("r1", "damaged", "classify", "old", payload=DAMAGED)
        with CorpusEngine(
            fitted_pipeline, n_jobs=1, policy=IngestPolicy(strict=True)
        ) as engine:
            report = replay_dead_letters(dlq, engine)
        assert report.still_dead == 1 and report.recovered == 0
        (record,) = dlq.records()
        assert record.replays == 1
        assert record.timestamp == T0
        assert "old" not in record.reason

    def test_protocol_records_are_unreplayable(
        self, fitted_pipeline, tmp_path
    ):
        """A dead-lettered wire line is not CSV; replay must keep it
        untouched instead of 'recovering' garbage."""
        dlq = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        dlq.append(
            "?", "<wire>", "protocol", "not json", payload=b"not json\n"
        )
        with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
            report = replay_dead_letters(dlq, engine)
        assert report.unreplayable == 1
        assert report.replayed == 0
        (record,) = dlq.records()
        assert record.stage == "protocol" and record.replays == 0

    def test_replay_summary_line(self):
        from repro.serve import ReplayReport

        report = ReplayReport(
            total=4, replayed=3, recovered=2, still_dead=1,
            unreplayable=1,
        )
        assert report.summary() == (
            "replayed 3/4 dead letters: 2 recovered, 1 still dead, "
            "1 unreplayable"
        )


# ----------------------------------------------------------------------
# The TCP front end
# ----------------------------------------------------------------------
class TestTcpFrontEnd:
    def test_wire_roundtrip_ping_classify_stats_and_garbage(
        self, fitted_pipeline, corpus_dir, tmp_path
    ):
        """One connection exercises the whole wire protocol: ping,
        classify by path and by bytes (byte-identical to a direct
        sweep after :func:`result_from_payload`), stats, and a
        malformed line that is answered — not a dropped connection —
        and dead-lettered."""
        dlq = DeadLetterQueue(tmp_path / "dlq", clock=lambda: T0)
        target = corpus_dir[0]

        async def drive():
            service = ClassificationService(
                fitted_pipeline, n_jobs=1, dlq=dlq
            )
            await service.start(host="127.0.0.1", port=0)
            client = await connect("127.0.0.1", service.port)
            pong = await client.ping()
            by_path = await client.classify_path(target)
            by_bytes = await client.classify_bytes(
                target.read_bytes(), name=str(target)
            )
            garbage = await client.request(b"this is not json\n")
            bad_path = await client.classify_path(
                tmp_path / "missing.csv"
            )
            stats = await client.stats()
            await client.close()
            summary = await service.drain()
            return pong, by_path, by_bytes, garbage, bad_path, stats, \
                summary

        pong, by_path, by_bytes, garbage, bad_path, stats, summary = (
            asyncio.run(drive())
        )
        assert pong == {"id": "c1", "ok": True, "result": "pong"}
        assert by_path["ok"] and by_bytes["ok"]

        with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
            ((_, direct),), _report = engine.sweep_paths([target])
        assert _arrays(result_from_payload(by_path["result"])) == \
            _arrays(direct)
        assert by_bytes["result"]["cells"] == by_path["result"]["cells"]

        assert garbage["ok"] is False
        assert garbage["stage"] == "protocol"
        assert garbage["id"] == "?"
        # The raw line was parked; the response names its hash.
        assert garbage["dead_letter"] == hashlib.sha256(
            b"this is not json\n"
        ).hexdigest()
        assert bad_path["ok"] is False and bad_path["stage"] == "read"
        assert stats["result"]["requests"] == 3  # classify ops only
        assert summary["dead_letters"] == 2
        stages = sorted(r.stage for r in dlq.records())
        assert stages == ["protocol", "read"]
