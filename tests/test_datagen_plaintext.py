"""Tests for the plain-text acquisition pipeline."""

from __future__ import annotations

import pytest

from repro.datagen.plaintext import (
    EMISSION_DIALECTS,
    AcquisitionReport,
    acquire_plain_text_corpus,
    is_parseable,
)
from repro.dialect.detector import DialectDetector
from repro.dialect.dialect import Dialect
from repro.types import Corpus


class TestIsParseable:
    def test_standard_dialect_parses(self, tiny_corpus):
        annotated = tiny_corpus.files[0]
        assert is_parseable(
            annotated, Dialect.standard(), DialectDetector()
        )

    def test_space_dialect_often_fails(self, tiny_corpus):
        """Space-delimited emission destroys multi-word cells, so the
        detected dialect cannot reconstruct the original table."""
        space = Dialect(delimiter=" ", quotechar="")
        failures = sum(
            not is_parseable(annotated, space, DialectDetector())
            for annotated in tiny_corpus.files[:5]
        )
        assert failures >= 1


class TestAcquisition:
    def test_pipeline_filters_and_reports(self, tiny_corpus):
        kept, report = acquire_plain_text_corpus(tiny_corpus, seed=0)
        assert report.total == len(tiny_corpus)
        assert report.parseable == len(kept)
        assert 0 < report.parseable <= report.total
        assert sum(t for _, t in report.per_dialect.values()) == report.total

    def test_survivors_keep_annotations(self, tiny_corpus):
        kept, _ = acquire_plain_text_corpus(tiny_corpus, seed=0)
        originals = {f.name: f for f in tiny_corpus.files}
        for annotated in kept:
            assert annotated.line_labels == originals[annotated.name].line_labels

    def test_deterministic_under_seed(self, tiny_corpus):
        kept_a, _ = acquire_plain_text_corpus(tiny_corpus, seed=3)
        kept_b, _ = acquire_plain_text_corpus(tiny_corpus, seed=3)
        assert [f.name for f in kept_a] == [f.name for f in kept_b]

    def test_report_rate(self):
        report = AcquisitionReport(total=100, parseable=62, per_dialect={})
        assert report.parseable_rate == pytest.approx(0.62)
        assert AcquisitionReport(0, 0, {}).parseable_rate == 0.0

    def test_empty_corpus(self):
        kept, report = acquire_plain_text_corpus(
            Corpus("empty", []), seed=0
        )
        assert len(kept) == 0
        assert report.total == 0
