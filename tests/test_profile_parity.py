"""Byte-identical parity between the columnar profile and the legacy
per-extractor implementations.

The ``TableProfile`` rewiring (``repro.core.profile``) is a pure
performance change: every consumer must produce *exactly* the output
of its original per-cell Python implementation.  This module keeps
those original implementations alive as references — the line feature
loop, the cell feature loop, the per-cell ``numeric_grid``, the DFS of
Algorithm 1 and the table-scanning anchor enumeration of Algorithm 2 —
and pins equality down to the byte level (``ndarray.tobytes()``), not
just ``allclose``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.blocks import block_sizes, normalized_block_sizes
from repro.core.cell_features import (
    _NEIGHBOR_OFFSETS,
    CELL_FEATURE_NAMES,
    CellFeatureExtractor,
)
from repro.core.datatypes import infer_data_type, is_numeric_type, parse_number
from repro.core.derived import DerivedDetector, numeric_grid
from repro.core.keywords import (
    contains_aggregation_keyword,
    line_contains_aggregation_keyword,
)
from repro.core.line_features import (
    _LENGTH_BINS,
    _LENGTH_RANGE,
    _NEIGHBOR_WINDOW,
    LineFeatureExtractor,
)
from repro.core.profile import table_profile
from repro.datagen import make_corpus
from repro.types import CONTENT_CLASSES, DataType, MISSING_NEIGHBOR, Table
from repro.util.stats import (
    bhattacharyya_distance,
    discounted_cumulative_gain,
    histogram,
    min_max_normalize,
)
from repro.util.text import count_words

# ----------------------------------------------------------------------
# Legacy reference implementations (the pre-profile code, verbatim
# modulo plumbing).  These run in O(cells) Python and exist only to
# pin the vectorized paths.
# ----------------------------------------------------------------------


def legacy_numeric_grid(table: Table) -> np.ndarray:
    grid = np.full(table.shape, np.nan, dtype=np.float64)
    for i, row in enumerate(table.rows()):
        for j, value in enumerate(row):
            number = parse_number(value)
            if number is not None:
                grid[i, j] = number
    return grid


def legacy_block_sizes(table: Table) -> dict[tuple[int, int], int]:
    """The published Algorithm 1: iterative DFS over non-empty cells."""
    non_empty = {(cell.row, cell.col) for cell in table.non_empty_cells()}
    sizes: dict[tuple[int, int], int] = {}
    visited: set[tuple[int, int]] = set()
    for start in non_empty:
        if start in visited:
            continue
        component: list[tuple[int, int]] = []
        stack = [start]
        visited.add(start)
        while stack:
            row, col = stack.pop()
            component.append((row, col))
            for neighbour in (
                (row - 1, col),
                (row + 1, col),
                (row, col - 1),
                (row, col + 1),
            ):
                if neighbour in non_empty and neighbour not in visited:
                    visited.add(neighbour)
                    stack.append(neighbour)
        size = len(component)
        for position in component:
            sizes[position] = size
    return sizes


def legacy_detect(detector: DerivedDetector, table: Table) -> set:
    """The pre-profile ``DerivedDetector.detect``: per-cell grid and a
    table-scanning anchor enumeration, feeding the (unchanged) scan
    internals."""
    grid = legacy_numeric_grid(table)
    if detector.anchor_mode == "keyword":
        anchors = [
            (cell.row, cell.col)
            for cell in table.non_empty_cells()
            if contains_aggregation_keyword(cell.value)
        ]
    else:
        anchors = [
            (int(i), 0)
            for i in np.nonzero((~np.isnan(grid)).any(axis=1))[0]
        ] + [
            (0, int(j))
            for j in np.nonzero((~np.isnan(grid)).any(axis=0))[0]
        ]
    detected: set[tuple[int, int]] = set()
    checked_rows: set[int] = set()
    checked_cols: set[int] = set()
    for row, col in anchors:
        if row not in checked_rows:
            checked_rows.add(row)
            if detector._row_is_derived(grid, row):
                detected.update(
                    (row, j) for j in np.nonzero(~np.isnan(grid[row]))[0]
                )
        if col not in checked_cols:
            checked_cols.add(col)
            if detector._column_is_derived(grid, col):
                detected.update(
                    (int(i), col)
                    for i in np.nonzero(~np.isnan(grid[:, col]))[0]
                )
    return detected


class LegacyLineFeatureExtractor:
    """The pre-profile per-line extraction loop, ported verbatim."""

    def __init__(self, detector=None, include_global_features=False):
        self.detector = detector or DerivedDetector()
        self.include_global_features = include_global_features

    @property
    def n_features(self):
        return 18 if self.include_global_features else 14

    def extract(self, table: Table) -> np.ndarray:
        n_rows, n_cols = table.shape
        rows = list(table.rows())
        types = [[infer_data_type(value) for value in row] for row in rows]
        empty_line = [table.is_empty_row(i) for i in range(n_rows)]
        derived_cells = legacy_detect(self.detector, table)
        word_counts = [
            float(sum(count_words(value) for value in row)) for row in rows
        ]
        word_normalized = min_max_normalize(word_counts)
        above = self._closest_non_empty(empty_line, direction=-1)
        below = self._closest_non_empty(empty_line, direction=+1)

        features = np.zeros((n_rows, self.n_features))
        for i in range(n_rows):
            features[i, :14] = self._line_features(
                i, rows, types, empty_line, derived_cells,
                word_normalized[i], above[i], below[i], n_rows, n_cols,
            )
        if self.include_global_features:
            features[:, 14:] = self._global_features(
                empty_line, n_rows, n_cols
            )
        return features

    def _line_features(
        self, i, rows, types, empty_line, derived_cells, word_amount,
        above, below, n_rows, n_cols,
    ) -> np.ndarray:
        row = rows[i]
        row_types = types[i]
        non_empty = [
            j for j, t in enumerate(row_types) if t is not DataType.EMPTY
        ]
        n_non_empty = len(non_empty)

        empty_ratio = 1.0 - n_non_empty / n_cols if n_cols else 1.0
        dcg = discounted_cumulative_gain(
            [0.0 if t is DataType.EMPTY else 1.0 for t in row_types]
        )
        aggregation = 1.0 if line_contains_aggregation_keyword(row) else 0.0
        numeric = sum(1 for j in non_empty if is_numeric_type(row_types[j]))
        strings = sum(
            1 for j in non_empty if row_types[j] is DataType.STRING
        )
        numeric_ratio = numeric / n_non_empty if n_non_empty else 0.0
        string_ratio = strings / n_non_empty if n_non_empty else 0.0
        position = i / (n_rows - 1) if n_rows > 1 else 0.0

        matching_above = self._data_type_matching(row_types, types, above)
        matching_below = self._data_type_matching(row_types, types, below)
        empties_above = self._empty_neighbor_ratio(empty_line, i, -1)
        empties_below = self._empty_neighbor_ratio(empty_line, i, +1)
        length_above = self._cell_length_difference(row, rows, above)
        length_below = self._cell_length_difference(row, rows, below)

        derived_in_line = sum(
            1
            for j in non_empty
            if is_numeric_type(row_types[j]) and (i, j) in derived_cells
        )
        derived_coverage = derived_in_line / numeric if numeric else 0.0

        return np.array([
            empty_ratio, dcg, aggregation, word_amount, numeric_ratio,
            string_ratio, position, matching_above, matching_below,
            empties_above, empties_below, length_above, length_below,
            derived_coverage,
        ])

    @staticmethod
    def _closest_non_empty(empty_line, direction):
        n = len(empty_line)
        result: list[int | None] = [None] * n
        last: int | None = None
        order = range(n) if direction < 0 else range(n - 1, -1, -1)
        for i in order:
            result[i] = last
            if not empty_line[i]:
                last = i
        return result

    @staticmethod
    def _data_type_matching(row_types, types, neighbour):
        if neighbour is None:
            return 0.0
        other = types[neighbour]
        matches = sum(1 for a, b in zip(row_types, other) if a == b)
        return matches / len(row_types) if row_types else 0.0

    @staticmethod
    def _empty_neighbor_ratio(empty_line, i, direction):
        empties = 0
        for step in range(1, _NEIGHBOR_WINDOW + 1):
            j = i + direction * step
            if j < 0 or j >= len(empty_line) or empty_line[j]:
                empties += 1
        return empties / _NEIGHBOR_WINDOW

    @staticmethod
    def _cell_length_difference(row, rows, neighbour):
        if neighbour is None:
            return 1.0
        lengths_here = [float(len(v.strip())) for v in row if v.strip()]
        lengths_there = [
            float(len(v.strip())) for v in rows[neighbour] if v.strip()
        ]
        hist_here = histogram(lengths_here, _LENGTH_BINS, *_LENGTH_RANGE)
        hist_there = histogram(lengths_there, _LENGTH_BINS, *_LENGTH_RANGE)
        return bhattacharyya_distance(hist_here, hist_there)

    @staticmethod
    def _global_features(empty_line, n_rows, n_cols):
        empty_ratio = sum(empty_line) / n_rows if n_rows else 0.0
        width = n_cols / (n_cols + 25.0)
        length = n_rows / (n_rows + 100.0)
        blocks = 0
        previous = False
        for is_empty in empty_line:
            if is_empty and not previous:
                blocks += 1
            previous = is_empty
        block_count = blocks / (blocks + 5.0)
        return np.array([empty_ratio, width, length, block_count])


class LegacyCellFeatureExtractor:
    """The pre-profile per-cell extraction loop, ported verbatim."""

    def __init__(self, detector=None):
        self.detector = detector or DerivedDetector()

    def extract(self, table: Table, line_probabilities=None):
        n_rows, n_cols = table.shape
        if line_probabilities is None:
            line_probabilities = np.full(
                (n_rows, len(CONTENT_CLASSES)), 1.0 / len(CONTENT_CLASSES)
            )
        rows = list(table.rows())
        # reshape keeps degenerate (0, n) / (n, 0) tables two-dimensional.
        types = np.array(
            [[int(infer_data_type(v)) for v in row] for row in rows],
            dtype=np.float64,
        ).reshape(n_rows, n_cols)
        lengths = np.array(
            [[float(len(v.strip())) for v in row] for row in rows],
            dtype=np.float64,
        ).reshape(n_rows, n_cols)
        max_length = lengths.max() if lengths.size else 1.0
        if max_length <= 0:
            max_length = 1.0
        norm_lengths = lengths / max_length

        empty = types == float(DataType.EMPTY)
        empty_row = empty.all(axis=1)
        empty_col = empty.all(axis=0)
        # Degenerate zero-row/zero-col tables make these means warn
        # (NaN result); the loop below never reads those entries.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            row_empty_ratio = empty.mean(axis=1)
            col_empty_ratio = empty.mean(axis=0)

        keyword = np.zeros((n_rows, n_cols), dtype=bool)
        for i, row in enumerate(rows):
            for j, value in enumerate(row):
                if value.strip() and contains_aggregation_keyword(value):
                    keyword[i, j] = True
        row_keyword = keyword.any(axis=1)
        col_keyword = keyword.any(axis=0)

        total = n_rows * n_cols
        blocks = {
            position: size / total
            for position, size in legacy_block_sizes(table).items()
        }
        derived = legacy_detect(self.detector, table)

        positions: list[tuple[int, int]] = []
        feature_rows: list[np.ndarray] = []
        for cell in table.non_empty_cells():
            i, j = cell.row, cell.col
            positions.append((i, j))
            content = [
                norm_lengths[i, j],
                types[i, j],
                1.0 if keyword[i, j] else 0.0,
                1.0 if row_keyword[i] else 0.0,
                1.0 if col_keyword[j] else 0.0,
                i / (n_rows - 1) if n_rows > 1 else 0.0,
                j / (n_cols - 1) if n_cols > 1 else 0.0,
            ]
            content.extend(float(p) for p in line_probabilities[i])
            contextual = [
                1.0 if (i == 0 or empty_row[i - 1]) else 0.0,
                1.0 if (i == n_rows - 1 or empty_row[i + 1]) else 0.0,
                1.0 if (j == 0 or empty_col[j - 1]) else 0.0,
                1.0 if (j == n_cols - 1 or empty_col[j + 1]) else 0.0,
                float(row_empty_ratio[i]),
                float(col_empty_ratio[j]),
                blocks.get((i, j), 0.0),
            ]
            neighbor_lengths = []
            neighbor_types = []
            for di, dj in _NEIGHBOR_OFFSETS:
                ni, nj = i + di, j + dj
                if 0 <= ni < n_rows and 0 <= nj < n_cols:
                    neighbor_lengths.append(float(norm_lengths[ni, nj]))
                    neighbor_types.append(float(types[ni, nj]))
                else:
                    neighbor_lengths.append(float(MISSING_NEIGHBOR))
                    neighbor_types.append(float(MISSING_NEIGHBOR))
            computational = [1.0 if (i, j) in derived else 0.0]
            feature_rows.append(
                np.array(
                    content + contextual + neighbor_lengths
                    + neighbor_types + computational
                )
            )
        if feature_rows:
            return positions, np.vstack(feature_rows)
        return positions, np.zeros((0, len(CELL_FEATURE_NAMES)))


# ----------------------------------------------------------------------
# Tables under test
# ----------------------------------------------------------------------

EDGE_TABLES: dict[str, Table] = {
    "empty": Table([]),
    "zero_width": Table([[], []]),
    "single_cell": Table([["42"]]),
    "single_empty_cell": Table([[" "]]),
    "all_empty": Table([["", "  "], ["", ""]]),
    "one_row": Table([["a", "", "3.5", "Total", "2019-01-02"]]),
    "one_col": Table([["x"], [""], ["1"], [""], ["sum"]]),
    "checkerboard": Table(
        [["x" if (i + j) % 2 == 0 else "" for j in range(7)]
         for i in range(6)]
    ),
    "u_shape": Table(
        [
            ["a", "", "b"],
            ["c", "", "d"],
            ["e", "f", "g"],
        ]
    ),
    "spiral": Table(
        [
            ["1", "1", "1", "1"],
            ["", "", "", "1"],
            ["1", "1", "", "1"],
            ["1", "", "", "1"],
            ["1", "1", "1", "1"],
        ]
    ),
    "totals": Table(
        [
            ["Region", "Q1", "Q2", ""],
            ["north", "10", "20", ""],
            ["south", "30", "40", ""],
            ["Total", "40", "60", ""],
            ["", "", "", ""],
            ["note: units in k$", "", "", ""],
        ]
    ),
    "wide_types": Table(
        [
            ["1,234", "-5.5", "1e3", "(200)", "45%", "$9"],
            ["2019-01-02", "3 Mar 2020", "text", "", "0", "100.0"],
        ]
    ),
}


def corpus_tables(name: str, scale: float = 0.02) -> list[Table]:
    return [file.table for file in make_corpus(name, seed=0, scale=scale).files]


ALL_TABLES: list[tuple[str, Table]] = list(EDGE_TABLES.items()) + [
    (f"{name}-{index}", table)
    for name in ("govuk", "saus", "deex", "mendeley")
    for index, table in enumerate(corpus_tables(name))
]


def fresh(table: Table) -> Table:
    """A copy of ``table`` with no memoized profile, so each reference
    comparison starts cold."""
    return Table([list(row) for row in table.rows()])


# ----------------------------------------------------------------------
# Parity tests
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "table", [t for _, t in ALL_TABLES], ids=[n for n, _ in ALL_TABLES]
)
class TestParity:
    def test_line_features_byte_identical(self, table):
        legacy = LegacyLineFeatureExtractor().extract(table)
        new = LineFeatureExtractor().extract(fresh(table))
        assert legacy.shape == new.shape
        assert legacy.tobytes() == new.tobytes()

    def test_line_features_with_globals_byte_identical(self, table):
        legacy = LegacyLineFeatureExtractor(
            include_global_features=True
        ).extract(table)
        new = LineFeatureExtractor(include_global_features=True).extract(
            fresh(table)
        )
        assert legacy.tobytes() == new.tobytes()

    def test_cell_features_byte_identical(self, table):
        legacy_positions, legacy = LegacyCellFeatureExtractor().extract(table)
        positions, new = CellFeatureExtractor().extract(fresh(table))
        assert positions == legacy_positions
        assert legacy.shape == new.shape
        assert legacy.tobytes() == new.tobytes()

    def test_cell_features_with_probabilities(self, table):
        rng = np.random.default_rng(7)
        probabilities = rng.random((table.n_rows, len(CONTENT_CLASSES)))
        legacy_positions, legacy = LegacyCellFeatureExtractor().extract(
            table, probabilities
        )
        positions, new = CellFeatureExtractor().extract(
            fresh(table), probabilities
        )
        assert positions == legacy_positions
        assert legacy.tobytes() == new.tobytes()

    def test_numeric_grid_byte_identical(self, table):
        legacy = legacy_numeric_grid(table)
        new = numeric_grid(fresh(table))
        assert legacy.tobytes() == new.tobytes()

    def test_block_sizes_identical(self, table):
        assert block_sizes(fresh(table)) == legacy_block_sizes(table)

    def test_normalized_block_sizes_identical(self, table):
        total = table.n_rows * table.n_cols
        expected = (
            {
                position: size / total
                for position, size in legacy_block_sizes(table).items()
            }
            if total
            else {}
        )
        assert normalized_block_sizes(fresh(table)) == expected

    def test_derived_detection_identical(self, table):
        detector = DerivedDetector()
        legacy = {(int(i), int(j)) for i, j in legacy_detect(detector, table)}
        new = {
            (int(i), int(j)) for i, j in detector.detect(fresh(table))
        }
        assert new == legacy

    def test_derived_detection_exhaustive_identical(self, table):
        detector = DerivedDetector(anchor_mode="exhaustive")
        legacy = {(int(i), int(j)) for i, j in legacy_detect(detector, table)}
        new = {
            (int(i), int(j)) for i, j in detector.detect(fresh(table))
        }
        assert new == legacy


# ----------------------------------------------------------------------
# Profile unit behaviour
# ----------------------------------------------------------------------


class TestProfileGrids:
    @pytest.mark.parametrize(
        "table", [t for _, t in ALL_TABLES], ids=[n for n, _ in ALL_TABLES]
    )
    def test_dtype_grid_matches_per_cell_inference(self, table):
        profile = table_profile(fresh(table))
        for i, row in enumerate(table.rows()):
            for j, value in enumerate(row):
                assert profile.dtype_grid[i, j] == int(
                    infer_data_type(value)
                ), (i, j, value)

    @pytest.mark.parametrize(
        "table", [t for _, t in ALL_TABLES], ids=[n for n, _ in ALL_TABLES]
    )
    def test_value_lengths_and_words(self, table):
        profile = table_profile(fresh(table))
        for i, row in enumerate(table.rows()):
            for j, value in enumerate(row):
                assert profile.value_lengths[i, j] == float(
                    len(value.strip())
                )
                assert profile.word_counts[i, j] == count_words(value)
                assert profile.keyword_mask[i, j] == (
                    contains_aggregation_keyword(value)
                )

    def test_block_labels_partition_matches_dfs_components(self):
        table = EDGE_TABLES["spiral"]
        profile = table_profile(fresh(table))
        labels = profile.block_labels
        sizes = legacy_block_sizes(table)
        # Two cells share a label exactly when the DFS puts them in one
        # component (component = set of positions with the same size
        # *and* connectivity; check via representative flood fill).
        by_label: dict[int, set[tuple[int, int]]] = {}
        for i, j in zip(*np.nonzero(profile.non_empty)):
            by_label.setdefault(int(labels[i, j]), set()).add(
                (int(i), int(j))
            )
        for component in by_label.values():
            size = len(component)
            assert all(sizes[cell] == size for cell in component)
        assert sum(len(c) for c in by_label.values()) == len(sizes)

    def test_empty_cells_labeled_minus_one(self):
        profile = table_profile(Table([["a", ""], ["", "b"]]))
        assert profile.block_labels[0, 1] == -1
        assert profile.block_size_grid[0, 1] == 0


class TestProfileMemoization:
    def test_profile_memoized_on_table(self):
        table = Table([["a", "1"]])
        assert table_profile(table) is table_profile(table)

    def test_profiles_are_per_table(self):
        a, b = Table([["a"]]), Table([["a"]])
        assert table_profile(a) is not table_profile(b)

    def test_derived_memo_shared_between_equal_configs(self):
        table = Table(
            [["Total", "3", "4"], ["x", "1", "2"], ["y", "2", "2"]]
        )
        profile = table_profile(table)
        first = DerivedDetector()
        second = DerivedDetector()
        assert first.cache_key == second.cache_key
        assert profile.derived_cells(first) is profile.derived_cells(second)

    def test_derived_memo_distinct_configs(self):
        table = Table([["Total", "3"], ["x", "1"], ["y", "2"]])
        profile = table_profile(table)
        default = profile.derived_cells(DerivedDetector())
        relaxed = profile.derived_cells(DerivedDetector(delta=5.0))
        assert default is not relaxed

    def test_content_hash_matches_cache_helper(self):
        from repro.perf.cache import table_content_hash

        table = Table([["a", "1"], ["", "x"]])
        assert table_profile(table).content_hash == table_content_hash(table)

    def test_materialize_returns_self(self):
        table = Table([["a", "1"]])
        profile = table_profile(table)
        assert profile.materialize() is profile

    def test_unique_values_sorted_distinct(self):
        table = Table([["b", "a", " a "], ["b", "", "c"]])
        profile = table_profile(table)
        assert list(profile.unique_values) == ["", "a", "b", "c"]


class TestDatatypeMemoization:
    def test_infer_data_type_cached(self):
        infer_data_type.cache_clear()
        assert infer_data_type("123xyz") is DataType.STRING
        before = infer_data_type.cache_info().hits
        assert infer_data_type("123xyz") is DataType.STRING
        assert infer_data_type.cache_info().hits == before + 1

    def test_parse_number_cached(self):
        parse_number.cache_clear()
        assert parse_number("1,234") == 1234.0
        before = parse_number.cache_info().hits
        assert parse_number("1,234") == 1234.0
        assert parse_number.cache_info().hits == before + 1

    def test_cache_is_bounded(self):
        assert infer_data_type.cache_parameters()["maxsize"] == 65536
        assert parse_number.cache_parameters()["maxsize"] == 65536
