"""Tests for the CART decision tree (:mod:`repro.ml.tree`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.tree import DecisionTreeClassifier


def _xor_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestFitting:
    def test_fits_linearly_separable_perfectly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_fits_xor(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.98

    def test_multiclass(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0, 0, 1, 1, 2, 2])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_non_contiguous_class_labels(self):
        X = np.array([[0.0], [1.0], [5.0], [6.0]])
        y = np.array([3, 3, 9, 9])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {3, 9}

    def test_single_class_gives_single_leaf(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1
        assert np.array_equal(tree.predict(X), y)

    def test_constant_features_give_leaf(self):
        X = np.ones((10, 3))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.node_count == 1


class TestConstraints:
    def test_max_depth_respected(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = _xor_data(n=64)
        tree = DecisionTreeClassifier(min_samples_leaf=8,
                                      random_state=0).fit(X, y)
        # Every leaf must have gathered at least 8 samples: with 64
        # samples there can be at most 8 leaves.
        leaves = sum(1 for f in tree._feature if f == -1)
        assert leaves <= 8

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier(min_samples_leaf=0)
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier(max_features=0).fit(
                np.zeros((2, 2)), np.array([0, 1])
            )

    def test_sample_weights_zero_removes_samples(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        # Zero out the class-1 samples; tree must predict all-0.
        weights = np.array([1.0, 1.0, 0.0, 0.0])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=weights)
        assert np.array_equal(tree.predict(X), np.zeros(4, dtype=int))

    def test_sample_weight_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier().fit(
                np.zeros((3, 1)), np.array([0, 1, 0]),
                sample_weight=np.ones(2),
            )


class TestPrediction:
    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_proba_rows_sum_to_one(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (len(X), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_feature_count_mismatch_raises(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        with pytest.raises(InvalidParameterError):
            tree.predict(np.zeros((1, 3)))

    def test_determinism_under_seed(self):
        X, y = _xor_data()
        a = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


@given(seed=st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_training_accuracy_beats_majority_class(seed):
    """On random labelled data an unconstrained tree must fit training
    data at least as well as the majority-class baseline."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(50, 3))
    y = rng.integers(0, 3, size=50)
    tree = DecisionTreeClassifier(random_state=seed).fit(X, y)
    accuracy = (tree.predict(X) == y).mean()
    majority = max(np.bincount(y)) / len(y)
    assert accuracy >= majority


class TestFeatureImportances:
    def test_single_informative_feature(self):
        X = np.array([[0.0, 5.0], [1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        importances = tree.feature_importances_
        assert importances[0] == pytest.approx(1.0)
        assert importances[1] == 0.0

    def test_pure_leaf_tree_importance_is_zero_vector(self):
        X = np.array([[1.0], [2.0]])
        y = np.array([1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.feature_importances_.sum() == 0.0

    def test_importances_sum_to_one(self):
        X, y = _xor_data()
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().feature_importances_
