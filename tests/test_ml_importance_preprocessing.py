"""Tests for permutation importance and feature preprocessing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import normalize_importances, permutation_importance
from repro.ml.preprocessing import LogarithmicBinner, MinMaxScaler


class TestPermutationImportance:
    def test_signal_feature_outranks_noise(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 4))
        y = (X[:, 2] > 0).astype(int)  # only feature 2 matters
        model = RandomForestClassifier(
            n_estimators=15, random_state=0
        ).fit(X, y)
        importances = permutation_importance(
            model, X, y, n_repeats=3, random_state=0
        )
        assert np.argmax(importances) == 2
        assert importances[2] > 0.2

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            permutation_importance(None, np.zeros((2, 2)),
                                   np.zeros(2), n_repeats=0)

    def test_normalize_clips_and_sums_to_one(self):
        shares = normalize_importances(np.array([0.5, -0.2, 0.5]))
        assert shares.tolist() == [0.5, 0.0, 0.5]
        assert shares.sum() == pytest.approx(1.0)

    def test_normalize_all_zero_is_uniform(self):
        shares = normalize_importances(np.zeros(4))
        assert np.allclose(shares, 0.25)


class TestMinMaxScaler:
    def test_scales_to_unit_interval(self):
        X = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        scaled = MinMaxScaler().fit_transform(X)
        assert scaled.min() == 0.0
        assert scaled.max() == 1.0

    def test_constant_column_maps_to_zero(self):
        X = np.array([[1.0], [1.0]])
        assert MinMaxScaler().fit_transform(X).tolist() == [[0.0], [0.0]]

    def test_transform_clips_out_of_range(self):
        scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        out = scaler.transform(np.array([[-5.0], [50.0]]))
        assert out.tolist() == [[0.0], [1.0]]

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros((1, 1)))


class TestLogarithmicBinner:
    def test_bucket_boundaries_double(self):
        binner = LogarithmicBinner(n_bins=5, scale=1.0)
        values = np.array([0.0, 1.0, 3.0, 7.0, 15.0, 1000.0])
        # floor(log2(1+v)): 0, 1, 2, 3, 4, capped at 4.
        assert binner.transform(values).tolist() == [0, 1, 2, 3, 4, 4]

    def test_negatives_clamp_to_zero(self):
        binner = LogarithmicBinner(n_bins=3)
        assert binner.transform(np.array([-10.0])).tolist() == [0]

    def test_one_hot_shape_and_content(self):
        binner = LogarithmicBinner(n_bins=4)
        X = np.array([[0.0, 7.0], [1.0, 0.0]])
        encoded = binner.one_hot(X)
        assert encoded.shape == (2, 8)
        assert encoded.sum(axis=1).tolist() == [2.0, 2.0]
        assert encoded[0, 0] == 1.0  # value 0 -> bucket 0 of feature 0
        assert encoded[0, 4 + 3] == 1.0  # value 7 -> bucket 3 of feature 1

    def test_one_hot_accepts_vector(self):
        binner = LogarithmicBinner(n_bins=4)
        assert binner.one_hot(np.array([1.0, 3.0])).shape == (2, 4)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            LogarithmicBinner(n_bins=1)
        with pytest.raises(InvalidParameterError):
            LogarithmicBinner(scale=0.0)
