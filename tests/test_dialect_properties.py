"""Property-based tests for dialect detection.

The core guarantee: for tables of well-typed values serialized under
any conventional dialect, detection recovers a dialect whose parse
reproduces the original grid — the definition of a correct dialect in
the data-consistency framework.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect.detector import DialectDetector
from repro.dialect.dialect import Dialect
from repro.io.writer import write_csv_text
from repro.parsing import parse_csv_text

_WORD = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "North Region", "x"]
)
_NUMBER = st.integers(0, 99_999).map(str)
_FLOAT = st.floats(0, 999).map(lambda v: f"{v:.2f}")
_CELL = st.one_of(_WORD, _NUMBER, _FLOAT)

_GRID = st.lists(
    st.lists(_CELL, min_size=2, max_size=6),
    min_size=3,
    max_size=8,
).map(
    # Rectangularize: crop every row to the shortest row's width.
    lambda rows: [
        row[: min(len(r) for r in rows)] for row in rows
    ]
)

_DIALECTS = st.sampled_from(
    [
        Dialect.standard(),
        Dialect(delimiter=";"),
        Dialect(delimiter="\t", quotechar=""),
        Dialect(delimiter="|", quotechar="'"),
    ]
)


@given(grid=_GRID, dialect=_DIALECTS)
@settings(max_examples=60, deadline=None)
def test_detection_recovers_a_reparsing_dialect(grid, dialect):
    text = write_csv_text(grid, dialect)
    detected = DialectDetector().detect(text)
    reparsed = parse_csv_text(text, detected)
    assert reparsed == grid


@given(grid=_GRID, dialect=_DIALECTS)
@settings(max_examples=40, deadline=None)
def test_ranking_is_total_and_finite(grid, dialect):
    text = write_csv_text(grid, dialect)
    ranking = DialectDetector().rank(text)
    assert ranking
    scores = [s.score for s in ranking]
    assert all(score >= 0 for score in scores)
    assert scores == sorted(scores, reverse=True)


@given(
    junk=st.text(
        alphabet=st.characters(blacklist_categories=("Cs",)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=60, deadline=None)
def test_detection_never_crashes_on_arbitrary_text(junk):
    detector = DialectDetector()
    if not junk.strip():
        return
    dialect = detector.detect(junk)
    # Whatever came back must be usable for parsing.
    parse_csv_text(junk, dialect)
