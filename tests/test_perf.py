"""The perf subsystem: cache, fan-out helpers, parity, and bench.

The contract under test everywhere here: performance machinery may
change *when* work happens (cache lookups, worker pools), never *what*
it computes — parity tests compare byte-for-byte.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.strudel import StrudelLineClassifier, StrudelPipeline
from repro.errors import InvalidParameterError
from repro.eval.runner import cross_validate_lines
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import attach_feature_cache
from repro.obs import get_metrics
from repro.perf.bench import (
    BenchConfig,
    configs_comparable,
    diff_reports,
    format_diff,
    format_summary,
    load_report,
    run_benchmark,
    write_report,
)
from repro.perf.cache import FeatureCache, array_hash, table_content_hash
from repro.perf.parallel import effective_jobs, parallel_map
from repro.types import Table


# ----------------------------------------------------------------------
# Content and array hashing
# ----------------------------------------------------------------------
def test_table_content_hash_changes_with_any_cell():
    base = Table([["a", "b"], ["c", "d"]])
    edited = Table([["a", "b"], ["c", "e"]])
    assert table_content_hash(base) != table_content_hash(edited)
    assert table_content_hash(base) == table_content_hash(
        Table([["a", "b"], ["c", "d"]])
    )


def test_table_content_hash_separators_are_injective():
    # Same characters, different grid: must not collide.
    merged = Table([["ab"]])
    split = Table([["a", "b"]])
    stacked = Table([["a"], ["b"]])
    hashes = {
        table_content_hash(merged),
        table_content_hash(split),
        table_content_hash(stacked),
    }
    assert len(hashes) == 3


def test_array_hash_sensitive_to_dtype_shape_and_values():
    a = np.arange(6, dtype=np.float64)
    assert array_hash(a) == array_hash(a.copy())
    assert array_hash(a) != array_hash(a.astype(np.float32))
    assert array_hash(a) != array_hash(a.reshape(2, 3))
    b = a.copy()
    b[0] = -1.0
    assert array_hash(a) != array_hash(b)


# ----------------------------------------------------------------------
# FeatureCache
# ----------------------------------------------------------------------
def test_cache_roundtrip_and_stats():
    cache = FeatureCache(max_entries=4)
    value = (np.arange(4.0), np.ones((2, 2)))
    assert cache.get("k") is None
    cache.put("k", value)
    got = cache.get("k")
    assert got is not None
    for stored, original in zip(got, value):
        np.testing.assert_array_equal(stored, original)
    assert cache.hits == 1
    assert cache.misses == 1
    assert len(cache) == 1


def test_cache_get_or_compute_computes_once():
    cache = FeatureCache(max_entries=4)
    calls = []

    def compute():
        calls.append(1)
        return (np.zeros(3),)

    first = cache.get_or_compute("k", compute)
    second = cache.get_or_compute("k", compute)
    assert len(calls) == 1
    np.testing.assert_array_equal(first[0], second[0])


def test_cache_lru_eviction_order():
    cache = FeatureCache(max_entries=2)
    cache.put("a", (np.zeros(1),))
    cache.put("b", (np.ones(1),))
    cache.get("a")  # refresh "a": now "b" is least recently used
    cache.put("c", (np.full(1, 2.0),))
    assert cache.get("b") is None
    assert cache.get("a") is not None
    assert cache.get("c") is not None


def test_cache_stats_is_a_locked_snapshot_with_evictions():
    cache = FeatureCache(max_entries=2)
    cache.put("a", (np.zeros(1),))
    cache.put("b", (np.ones(1),))
    cache.put("c", (np.full(1, 2.0),))  # evicts "a"
    cache.get("b")
    cache.get("a")  # miss: evicted
    stats = cache.stats()
    assert stats == {
        "hits": 1, "misses": 1, "evictions": 1, "size": 2
    }
    # The snapshot mirrors into the process-local metrics registry.
    assert get_metrics().counter("feature_cache.evictions") >= 1


def test_cache_rejects_nonpositive_bound():
    with pytest.raises(InvalidParameterError):
        FeatureCache(max_entries=0)


def test_cache_disk_persistence_survives_new_instance(tmp_path):
    value = (np.arange(6.0).reshape(2, 3), np.array([1, 2, 3]))
    warm = FeatureCache(max_entries=4, directory=tmp_path)
    warm.put("k", value)

    fresh = FeatureCache(max_entries=4, directory=tmp_path)
    got = fresh.get("k")
    assert got is not None
    for stored, original in zip(got, value):
        np.testing.assert_array_equal(stored, original)
    assert fresh.hits == 1


def test_cache_clear_keeps_disk_entries(tmp_path):
    cache = FeatureCache(max_entries=4, directory=tmp_path)
    cache.put("k", (np.zeros(2),))
    cache.clear()
    assert len(cache) == 0
    assert cache.get("k") is not None  # reloaded from disk


def test_make_key_joins_parts():
    assert FeatureCache.make_key("line", "cfg", "hash") == "line|cfg|hash"


# ----------------------------------------------------------------------
# Fan-out helpers
# ----------------------------------------------------------------------
def test_effective_jobs_semantics():
    assert effective_jobs(None, 10) == 1
    assert effective_jobs(1, 10) == 1
    assert effective_jobs(4, 10) == 4
    assert effective_jobs(4, 2) == 2  # clamped to the task count
    assert effective_jobs(4, 1) == 1
    assert effective_jobs(0, 10) >= 1  # "all cores" resolves positive


def test_parallel_map_preserves_order():
    items = list(range(20))
    sequential = parallel_map(lambda x: x * x, items, n_jobs=1)
    threaded = parallel_map(lambda x: x * x, items, n_jobs=4)
    assert sequential == threaded == [x * x for x in items]


def test_parallel_map_processes_fall_back_on_unpicklable_work():
    # Lambdas cannot be shipped to a process pool; the helper must
    # degrade to the (equivalent) sequential path instead of raising —
    # and must say so, not degrade silently.
    items = list(range(8))
    with pytest.warns(RuntimeWarning, match="degrading to sequential"):
        result = parallel_map(
            lambda x: x + 1, items, n_jobs=4, prefer="processes"
        )
    assert result == [x + 1 for x in items]


class _Unpicklable:
    """A payload the pool machinery can never ship to a worker."""

    def __reduce__(self):
        raise pickle.PicklingError("not shippable")


def _type_name(item) -> str:
    return type(item).__name__


def test_parallel_map_pool_degradation_is_recorded():
    # Infrastructure failure (unpicklable *payload*, not a work
    # error): correct results via the sequential path, plus a warning
    # and a metrics counter so the degradation is observable.
    items = [_Unpicklable(), _Unpicklable()]
    before = get_metrics().counter("parallel.pool_degraded")
    with pytest.warns(RuntimeWarning, match="PicklingError"):
        result = parallel_map(
            _type_name, items, n_jobs=2, prefer="processes"
        )
    assert result == ["_Unpicklable", "_Unpicklable"]
    assert get_metrics().counter("parallel.pool_degraded") == before + 1


def _record_and_maybe_fail(arg: tuple[str, int]) -> int:
    """Append a marker per invocation (visible across processes),
    then fail on the designated item."""
    path, item = arg
    with open(path, "a") as handle:
        handle.write(f"{item}\n")
    if item == 3:
        raise ValueError(f"work error on item {item}")
    return item


@pytest.mark.parametrize("prefer", ["threads", "processes"])
def test_parallel_map_work_error_propagates_exactly_once(
    tmp_path, prefer
):
    # A work-function exception is NOT pool infrastructure: it must
    # surface with its original type, and the failing item must have
    # run exactly once — never re-run sequentially after the pool
    # already executed it (the old bare-except masked the error and
    # doubled the work).
    marker = tmp_path / f"calls-{prefer}.txt"
    work = [(str(marker), item) for item in range(6)]
    with pytest.raises(ValueError, match="work error on item 3"):
        parallel_map(
            _record_and_maybe_fail, work, n_jobs=2, prefer=prefer
        )
    calls = marker.read_text().splitlines()
    assert calls.count("3") == 1


def test_parallel_map_rejects_unknown_preference():
    with pytest.raises(InvalidParameterError):
        parallel_map(int, [1], n_jobs=2, prefer="greenlets")


# ----------------------------------------------------------------------
# Determinism parity: parallelism and caching never change results
# ----------------------------------------------------------------------
def _toy_classification(seed: int = 7, n: int = 120, d: int = 6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + X[:, 1] > 0).astype(int) + (X[:, 2] > 1).astype(int)
    return X, y


def test_forest_parallel_fit_is_byte_identical():
    X, y = _toy_classification()
    sequential = RandomForestClassifier(
        n_estimators=12, random_state=3, oob_score=True, n_jobs=1
    ).fit(X, y)
    parallel = RandomForestClassifier(
        n_estimators=12, random_state=3, oob_score=True, n_jobs=3
    ).fit(X, y)

    np.testing.assert_array_equal(
        sequential.predict_proba(X), parallel.predict_proba(X)
    )
    np.testing.assert_array_equal(
        sequential.feature_importances_, parallel.feature_importances_
    )
    np.testing.assert_array_equal(
        sequential.oob_decision_function_,
        parallel.oob_decision_function_,
    )
    assert sequential.oob_score_ == parallel.oob_score_


def test_pipeline_jobs_and_cache_are_byte_identical(tiny_corpus):
    files = tiny_corpus.files
    text = "\n".join(
        ",".join(row) for row in files[0].table.rows()
    )

    baseline = StrudelPipeline(n_estimators=8, random_state=0)
    baseline.fit(files)
    expected = baseline.analyze(text)

    tuned = StrudelPipeline(
        n_estimators=8, random_state=0, n_jobs=2,
        feature_cache=FeatureCache(max_entries=64),
    )
    tuned.fit(files)
    result = tuned.analyze(text)

    assert result.line_classes == expected.line_classes
    assert result.cell_classes == expected.cell_classes
    np.testing.assert_array_equal(
        baseline.line_classifier._model.feature_importances_,
        tuned.line_classifier._model.feature_importances_,
    )
    np.testing.assert_array_equal(
        baseline.cell_classifier._model.feature_importances_,
        tuned.cell_classifier._model.feature_importances_,
    )


def test_cache_hit_serves_identical_matrices(tiny_corpus):
    table = tiny_corpus.files[0].table
    cold = StrudelLineClassifier(n_estimators=4, random_state=0)
    cold_matrix = cold.extractor.extract(table)

    cache = FeatureCache(max_entries=8)
    cached = StrudelLineClassifier(n_estimators=4, random_state=0)
    cached.set_feature_cache(cache)
    first = cached._extract(table)
    second = cached._extract(table)

    assert cache.hits >= 1
    np.testing.assert_array_equal(first, cold_matrix)
    np.testing.assert_array_equal(second, cold_matrix)


def test_cross_validation_cache_parity(tiny_corpus):
    def factory():
        return StrudelLineClassifier(n_estimators=4, random_state=0)

    uncached = cross_validate_lines(
        tiny_corpus, factory, n_splits=3, n_repeats=1, seed=0
    )
    cache = FeatureCache(max_entries=64)
    cached = cross_validate_lines(
        tiny_corpus, factory, n_splits=3, n_repeats=1, seed=0,
        feature_cache=cache,
    )

    assert cached.scores.macro_f1 == uncached.scores.macro_f1
    assert cached.scores.accuracy == uncached.scores.accuracy
    np.testing.assert_array_equal(cached.confusion, uncached.confusion)
    # Three folds over the same files: every fold after the first is
    # all lookups.
    assert cache.hits > 0


def test_attach_feature_cache_protocol(tiny_corpus):
    cache = FeatureCache(max_entries=4)
    strudel = StrudelLineClassifier(n_estimators=4)
    assert attach_feature_cache(strudel, cache) is True
    assert strudel._feature_cache is cache
    assert attach_feature_cache(object(), cache) is False


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------
def test_run_benchmark_smoke(tmp_path):
    config = BenchConfig(
        scale=0.04, trees=4, rows=40, repeats=1, cv_splits=2,
        cv_repeats=1, cv_trees=3, quick=True,
    )
    report = run_benchmark(config)
    assert report["schema"] == "repro-bench/1"
    assert report["cv"]["byte_identical"] is True
    assert set(report["analyze"]) >= {
        "legacy_two_pass_seconds",
        "single_pass_seconds",
        "cached_seconds",
        "single_pass_speedup",
        "analyze_speedup",
    }
    assert report["analyze"]["cache_hits"] > 0

    prediction = report["prediction"]
    assert prediction["rows"] > 0 and prediction["cells"] > 0
    assert prediction["line_seconds"] > 0
    assert prediction["cell_seconds"] > 0
    assert prediction["rows_per_second"] == pytest.approx(
        prediction["rows"] / prediction["line_seconds"]
    )
    assert prediction["cells_per_second"] == pytest.approx(
        prediction["cells"] / prediction["cell_seconds"]
    )

    path = write_report(report, tmp_path / "BENCH_pipeline.json")
    assert path.exists()
    summary = format_summary(report)
    assert "single-pass + cache" in summary
    assert "byte-identical" in summary
    assert "rows/s" in summary and "cells/s" in summary

    assert "profile" in report["stages"]

    # The saved report round-trips as a baseline for itself: same
    # numbers, so no metric can regress at any tolerance.
    baseline = load_report(path)
    assert configs_comparable(report, baseline)
    diff = diff_reports(report, baseline, tolerance=0.0)
    assert diff["regressions"] == []
    assert "stages.profile" in diff["metrics"]
    assert "no regressions" in format_diff(diff)


# ----------------------------------------------------------------------
# Baseline diff mode
# ----------------------------------------------------------------------
def _fake_report(**overrides) -> dict:
    report = {
        "schema": "repro-bench/1",
        "config": {
            "corpus": "saus", "scale": 0.06, "trees": 10, "rows": 200,
            "repeats": 2, "cv_splits": 2, "cv_repeats": 1, "cv_trees": 6,
            "seed": 0, "n_jobs": 1, "quick": True,
        },
        "fit_seconds": 1.0,
        "stages": {
            "dialect_detection": 0.01,
            "parsing": 0.02,
            "profile": 0.03,
            "line_features": 0.04,
            "cell_features": 0.05,
        },
        "analyze": {
            "legacy_two_pass_seconds": 0.3,
            "single_pass_seconds": 0.2,
            "cached_seconds": 0.05,
        },
        "cv": {
            "uncached_seconds": 0.8,
            "cached_seconds": 0.5,
            "speedup": 1.6,
        },
    }
    report.update(overrides)
    return report


def test_diff_reports_flags_regressions_beyond_tolerance():
    baseline = _fake_report()
    current = _fake_report(fit_seconds=1.2)  # +20%: inside 25%
    diff = diff_reports(current, baseline)
    assert diff["regressions"] == []

    current = _fake_report(fit_seconds=1.3)  # +30%: beyond 25%
    diff = diff_reports(current, baseline)
    assert diff["regressions"] == ["fit_seconds"]
    assert diff["metrics"]["fit_seconds"]["regressed"] is True
    assert "REGRESSED" in format_diff(diff)


def test_diff_reports_improvements_never_gate():
    baseline = _fake_report()
    current = _fake_report(
        stages={
            "dialect_detection": 0.01,
            "parsing": 0.02,
            "profile": 0.01,
            "line_features": 0.001,
            "cell_features": 0.002,
        }
    )
    diff = diff_reports(current, baseline)
    assert diff["regressions"] == []
    assert diff["metrics"]["stages.line_features"]["ratio"] < 0.1


def test_diff_reports_new_and_missing_metrics_not_gated():
    baseline = _fake_report()
    del baseline["stages"]["profile"]
    current = _fake_report()
    del current["stages"]["parsing"]
    diff = diff_reports(current, baseline)
    assert diff["only_in_current"] == ["stages.profile"]
    assert diff["only_in_baseline"] == ["stages.parsing"]
    assert diff["regressions"] == []


def test_diff_reports_ratio_metrics_gate_on_shrinkage():
    # cv.speedup is higher-is-better: the regression test inverts.
    baseline = _fake_report()
    current = _fake_report(
        cv={"uncached_seconds": 0.8, "cached_seconds": 0.6,
            "speedup": 1.3}  # -19%: inside the 25% tolerance
    )
    diff = diff_reports(current, baseline)
    assert diff["ratios"]["cv.speedup"]["regressed"] is False
    assert "cv.speedup" not in diff["regressions"]

    current = _fake_report(
        cv={"uncached_seconds": 0.8, "cached_seconds": 0.82,
            "speedup": 0.97}  # the cache stopped paying for itself
    )
    diff = diff_reports(current, baseline)
    assert diff["ratios"]["cv.speedup"]["regressed"] is True
    assert "cv.speedup" in diff["regressions"]
    rendered = format_diff(diff)
    assert "higher is better" in rendered
    assert "REGRESSED" in rendered


def test_diff_reports_ratio_growth_never_gates():
    baseline = _fake_report()
    current = _fake_report(
        cv={"uncached_seconds": 0.8, "cached_seconds": 0.2,
            "speedup": 4.0}
    )
    diff = diff_reports(current, baseline)
    assert diff["regressions"] == []


def test_diff_reports_tolerates_baseline_without_ratios():
    # Baselines recorded before cv.speedup existed must still diff.
    baseline = _fake_report(
        cv={"uncached_seconds": 0.8, "cached_seconds": 0.5}
    )
    diff = diff_reports(_fake_report(), baseline)
    assert diff["ratios"] == {}
    assert diff["regressions"] == []


def test_diff_reports_rejects_negative_tolerance():
    with pytest.raises(InvalidParameterError):
        diff_reports(_fake_report(), _fake_report(), tolerance=-0.1)


def test_configs_comparable_ignores_jobs_but_not_workload():
    a = _fake_report()
    b = _fake_report()
    b["config"]["n_jobs"] = 8
    assert configs_comparable(a, b)
    b["config"]["rows"] = 400
    assert not configs_comparable(a, b)


def test_load_report_rejects_wrong_schema(tmp_path):
    path = tmp_path / "report.json"
    path.write_text('{"schema": "other/9"}', encoding="utf-8")
    with pytest.raises(ValueError):
        load_report(path)
