"""Fixture tests for the whole-program (R100-series) rules.

Each rule gets at least one triggering and one clean multi-module
fixture, built in memory through :func:`lint_sources`.  Fixture module
names mimic the real package layout (``repro.io.ingest``,
``repro.obs.metrics`` …) because the rules anchor on those names.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths, lint_sources


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


class TestR101IngestGate:
    TYPES = "class Table:\n    pass\n"
    INGEST = (
        "from repro.types import Table\n"
        "\n"
        "def ingest_bytes(raw):\n"
        "    text = raw.decode('utf-8')\n"
        "    return Table()\n"
    )

    def test_decode_to_table_outside_ingest_flagged(self):
        findings = lint_sources({
            "repro.types": self.TYPES,
            "repro.io.ingest": self.INGEST,
            "repro.sneaky": (
                "from repro.types import Table\n"
                "\n"
                "def shortcut(raw):\n"
                "    text = raw.decode('utf-8')\n"
                "    return Table()\n"
            ),
        }, select=["R101"])
        assert rule_ids(findings) == ["R101"]
        assert findings[0].path == "<repro.sneaky>"
        assert findings[0].line == 4  # the .decode() call

    def test_ingest_module_itself_is_exempt(self):
        findings = lint_sources({
            "repro.types": self.TYPES,
            "repro.io.ingest": self.INGEST,
        }, select=["R101"])
        assert findings == []

    def test_decode_without_table_is_clean(self):
        findings = lint_sources({
            "repro.types": self.TYPES,
            "repro.io.ingest": self.INGEST,
            "repro.textonly": (
                "def sniff(raw):\n"
                "    return raw.decode('utf-8').splitlines()\n"
            ),
        }, select=["R101"])
        assert findings == []

    def test_delegating_to_ingest_is_clean(self):
        # Decoding for a side purpose while the Table comes from the
        # front door: the boundary is opaque, so no finding.
        findings = lint_sources({
            "repro.types": self.TYPES,
            "repro.io.ingest": self.INGEST,
            "repro.caller": (
                "from repro.io.ingest import ingest_bytes\n"
                "\n"
                "def load(raw):\n"
                "    preview = raw[:40].decode('utf-8', 'replace')\n"
                "    return preview, ingest_bytes(raw)\n"
            ),
        }, select=["R101"])
        assert findings == []


class TestR102UntypedEscape:
    ERRORS = (
        "class ReproError(Exception):\n    pass\n"
        "class ParseError(ReproError):\n    pass\n"
    )

    def test_raw_valueerror_escaping_entry_flagged(self):
        findings = lint_sources({
            "repro.errors": self.ERRORS,
            "repro.io.ingest": (
                "def _parse(s):\n"
                "    raise ValueError('bad')\n"
                "\n"
                "def ingest_text(s):\n"
                "    return _parse(s)\n"
            ),
        }, select=["R102"])
        assert rule_ids(findings) == ["R102"]
        assert findings[0].path == "<repro.io.ingest>"
        assert findings[0].line == 2  # the origin raise, not the entry

    def test_typed_error_is_clean(self):
        findings = lint_sources({
            "repro.errors": self.ERRORS,
            "repro.io.ingest": (
                "from repro.errors import ParseError\n"
                "\n"
                "def _parse(s):\n"
                "    raise ParseError('bad')\n"
                "\n"
                "def ingest_text(s):\n"
                "    return _parse(s)\n"
            ),
        }, select=["R102"])
        assert findings == []

    def test_caught_at_boundary_is_clean(self):
        findings = lint_sources({
            "repro.errors": self.ERRORS,
            "repro.io.ingest": (
                "from repro.errors import ParseError\n"
                "\n"
                "def _parse(s):\n"
                "    raise ValueError('bad')\n"
                "\n"
                "def ingest_text(s):\n"
                "    try:\n"
                "        return _parse(s)\n"
                "    except ValueError as error:\n"
                "        raise ParseError(str(error))\n"
            ),
        }, select=["R102"])
        assert findings == []

    def test_noqa_on_multiline_raise_suppresses(self):
        # Suppression anchors at the statement's first physical line,
        # which is where the finding lands for a multi-line raise.
        source = (
            "def _parse(s):\n"
            "    raise ValueError(  # repro: noqa[R102]\n"
            "        'a long message explaining '\n"
            "        'what went wrong'\n"
            "    )\n"
            "\n"
            "def ingest_text(s):\n"
            "    return _parse(s)\n"
        )
        flagged = lint_sources(
            {"repro.io.ingest": source.replace("  # repro: noqa[R102]", "")},
            select=["R102"],
        )
        assert rule_ids(flagged) == ["R102"]
        waived = lint_sources({"repro.io.ingest": source}, select=["R102"])
        assert waived == []


class TestR103Spans:
    TRACE = (
        "PIPELINE_STAGES = ('parsing', 'profile')\n"
        "AUX_SPANS = ('fit',)\n"
    )

    def test_undeclared_span_name_flagged(self):
        findings = lint_sources({
            "repro.obs.trace": self.TRACE,
            "repro.core.work": (
                "def run(tracer):\n"
                "    with tracer.span('parsing'):\n"
                "        pass\n"
                "    with tracer.span('profile'):\n"
                "        pass\n"
                "    with tracer.span('parzing'):\n"
                "        pass\n"
            ),
        }, select=["R103"])
        assert rule_ids(findings) == ["R103"]
        assert findings[0].line == 6
        assert "parzing" in findings[0].message

    def test_uninstrumented_stage_flagged_at_declaration(self):
        findings = lint_sources({
            "repro.obs.trace": self.TRACE,
            "repro.core.work": (
                "def run(tracer):\n"
                "    with tracer.span('parsing'):\n"
                "        pass\n"
            ),
        }, select=["R103"])
        assert rule_ids(findings) == ["R103"]
        assert findings[0].path == "<repro.obs.trace>"
        assert "profile" in findings[0].message

    def test_full_coverage_with_aux_is_clean(self):
        findings = lint_sources({
            "repro.obs.trace": self.TRACE,
            "repro.core.work": (
                "def run(tracer):\n"
                "    with tracer.span('fit'):\n"
                "        with tracer.span('parsing'):\n"
                "            pass\n"
                "        with tracer.span('profile'):\n"
                "            pass\n"
            ),
        }, select=["R103"])
        assert findings == []

    def test_single_module_scope_skips_coverage(self):
        # Linting just the declaring module must not report the whole
        # pipeline as uninstrumented.
        findings = lint_sources(
            {"repro.obs.trace": self.TRACE}, select=["R103"]
        )
        assert findings == []

    def test_dynamic_span_names_ignored(self):
        findings = lint_sources({
            "repro.obs.trace": "PIPELINE_STAGES = ('parsing',)\n",
            "repro.core.work": (
                "def run(tracer, name):\n"
                "    with tracer.span('parsing'):\n"
                "        pass\n"
                "    with tracer.span(name):\n"
                "        pass\n"
            ),
        }, select=["R103"])
        assert findings == []


class TestR104MetricNames:
    METRICS = (
        "METRIC_NAMES = ('cache.hits', 'cache.*')\n"
        "\n"
        "class Metrics:\n"
        "    def increment(self, name, value=1):\n"
        "        pass\n"
        "\n"
        "_METRICS = Metrics()\n"
        "\n"
        "def get_metrics():\n"
        "    return _METRICS\n"
    )

    def run(self, body: str):
        return lint_sources({
            "repro.obs.metrics": self.METRICS,
            "repro.perf.work": (
                "from repro.obs.metrics import get_metrics\n"
                "\n"
                f"def work(key):\n{body}"
            ),
        }, select=["R104"])

    def test_declared_literal_is_clean(self):
        assert self.run("    get_metrics().increment('cache.hits')\n") == []

    def test_undeclared_literal_flagged(self):
        findings = self.run("    get_metrics().increment('cache.hitz')\n")
        assert rule_ids(findings) == ["R104"]
        assert "cache.hitz" in findings[0].message

    def test_wildcard_covers_fstring_prefix(self):
        body = "    get_metrics().increment(f'cache.{key}')\n"
        assert self.run(body) == []

    def test_unprefixed_fstring_flagged(self):
        findings = self.run("    get_metrics().increment(f'{key}.size')\n")
        assert rule_ids(findings) == ["R104"]

    def test_variable_name_flagged(self):
        findings = self.run("    get_metrics().increment(key)\n")
        assert rule_ids(findings) == ["R104"]

    def test_local_binding_still_resolved(self):
        body = (
            "    m = get_metrics()\n"
            "    m.increment('cache.hitz')\n"
        )
        findings = self.run(body)
        assert rule_ids(findings) == ["R104"]

    def test_unrelated_receiver_ignored(self):
        # .increment on something that is not the Metrics registry is
        # out of scope — no registry claim to check.
        body = "    key.increment('whatever')\n"
        assert self.run(body) == []


class TestR105LockDiscipline:
    def run(self, cls_body: str):
        return lint_sources({
            "repro.perf.box": (
                "import threading\n"
                "\n"
                "class Box:\n"
                "    def __init__(self):\n"
                "        self._lock = threading.Lock()\n"
                "        self._items = []\n"
                f"{cls_body}"
            ),
        }, select=["R105"])

    def test_unlocked_mutation_flagged(self):
        findings = self.run(
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def reset(self):\n"
            "        self._items = []\n"
        )
        assert rule_ids(findings) == ["R105"]
        assert findings[0].line == 11  # the unlocked assignment

    def test_all_mutations_locked_is_clean(self):
        findings = self.run(
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._items = []\n"
        )
        assert findings == []

    def test_lock_safe_helper_is_clean(self):
        # A private helper whose every call site holds the lock may
        # mutate without re-acquiring (the FeatureCache._admit shape).
        findings = self.run(
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._evict()\n"
            "            self._items.append(x)\n"
            "    def _evict(self):\n"
            "        self._items.pop()\n"
        )
        assert findings == []

    def test_helper_with_unlocked_call_site_flagged(self):
        findings = self.run(
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
            "    def _evict(self):\n"
            "        self._items.pop()\n"
            "    def shrink(self):\n"
            "        self._evict()\n"
        )
        assert rule_ids(findings) == ["R105"]

    def test_never_locked_attribute_is_clean(self):
        # An attribute the class never locks is not shared state under
        # this rule — only lock-inconsistency is flagged.
        findings = self.run(
            "    def add(self, x):\n"
            "        self._items.append(x)\n"
            "    def reset(self):\n"
            "        self._items = []\n"
        )
        assert findings == []

    def test_init_is_exempt(self):
        findings = self.run(
            "    def add(self, x):\n"
            "        with self._lock:\n"
            "            self._items.append(x)\n"
        )
        assert findings == []


class TestR105ModuleLockDiscipline:
    """The module-global half of R105 (PR 9): a module-level lock
    guarding module-level state binds every function in the module —
    methods included, with no ``__init__`` exemption."""

    HEADER = (
        "import threading\n"
        "\n"
        "_LOCK = threading.Lock()\n"
        "_CACHE = {}\n"
        "_HITS = 0\n"
        "\n"
    )

    def run(self, body: str):
        return lint_sources(
            {"repro.dialect.memo": f"{self.HEADER}{body}"},
            select=["R105"],
        )

    def test_unlocked_subscript_mutation_flagged(self):
        findings = self.run(
            "def put(key, value):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "def sneak(key, value):\n"
            "    _CACHE[key] = value\n"
        )
        assert rule_ids(findings) == ["R105"]
        assert "_CACHE" in findings[0].message
        assert "_LOCK" in findings[0].message

    def test_unlocked_global_rebind_flagged(self):
        findings = self.run(
            "def bump():\n"
            "    global _HITS\n"
            "    with _LOCK:\n"
            "        _HITS += 1\n"
            "def bad_bump():\n"
            "    global _HITS\n"
            "    _HITS += 1\n"
        )
        assert rule_ids(findings) == ["R105"]

    def test_all_mutations_locked_is_clean(self):
        findings = self.run(
            "def put(key, value):\n"
            "    global _HITS\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "        _HITS += 1\n"
            "def reset():\n"
            "    global _HITS\n"
            "    with _LOCK:\n"
            "        _CACHE.clear()\n"
            "        _HITS = 0\n"
        )
        assert findings == []

    def test_lock_safe_module_helper_is_clean(self):
        # The detector's `_memo_put`/eviction shape: an underscore
        # helper whose every call site holds the lock.
        findings = self.run(
            "def put(key, value):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "        _evict()\n"
            "def _evict():\n"
            "    while len(_CACHE) > 4:\n"
            "        _CACHE.popitem()\n"
        )
        assert findings == []

    def test_helper_with_unlocked_call_site_flagged(self):
        findings = self.run(
            "def put(key, value):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "        _evict()\n"
            "def _evict():\n"
            "    _CACHE.popitem()\n"
            "def shrink():\n"
            "    _evict()\n"
        )
        assert rule_ids(findings) == ["R105"]

    def test_local_shadowing_is_ignored(self):
        findings = self.run(
            "def put(key, value):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "def scratch(key, value):\n"
            "    _CACHE = {}\n"
            "    _CACHE[key] = value\n"
            "    return _CACHE\n"
        )
        assert findings == []

    def test_init_has_no_module_level_exemption(self):
        # A constructor touching *module* state is not construction of
        # the object that owns the lock; it races like any function.
        findings = self.run(
            "def put(key, value):\n"
            "    with _LOCK:\n"
            "        _CACHE[key] = value\n"
            "class Registry:\n"
            "    def __init__(self):\n"
            "        _CACHE['registry'] = self\n"
        )
        assert rule_ids(findings) == ["R105"]

    def test_never_locked_module_state_is_clean(self):
        findings = self.run(
            "def put(key, value):\n"
            "    _CACHE[key] = value\n"
            "def drop(key):\n"
            "    _CACHE.pop(key, None)\n"
        )
        assert findings == []

    def test_import_time_initialization_is_not_a_mutation(self):
        # The top-level assignments creating the state are the one
        # place that cannot hold the lock (it may not exist yet).
        findings = self.run(
            "_SEED = {'a': 1}\n"
            "def read(key):\n"
            "    with _LOCK:\n"
            "        return _CACHE.get(key, _SEED.get(key))\n"
        )
        assert findings == []


class TestRunnerInteractions:
    def test_unparseable_file_fails_even_with_select(self, tmp_path):
        # R000 is reserved and cannot be deselected: a broken file must
        # fail the gate no matter which rules were asked for.
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n", encoding="utf-8")
        findings = lint_paths([bad], select=["R005"])
        assert rule_ids(findings) == ["R000"]

    def test_no_graph_skips_project_rules(self):
        sources = {
            "repro.types": TestR101IngestGate.TYPES,
            "repro.io.ingest": TestR101IngestGate.INGEST,
            "repro.sneaky": (
                "from repro.types import Table\n"
                "\n"
                "def shortcut(raw):\n"
                "    return Table(raw.decode('utf-8'))\n"
            ),
        }
        assert rule_ids(lint_sources(sources)) == ["R101"]
        assert lint_sources(sources, graph=False) == []

    def test_project_findings_sort_with_local_findings(self):
        findings = lint_sources({
            "repro.types": TestR101IngestGate.TYPES,
            "repro.io.ingest": TestR101IngestGate.INGEST,
            "repro.sneaky": (
                "from repro.types import Table\n"
                "\n"
                "def shortcut(raw, acc={}):\n"
                "    return Table(raw.decode('utf-8'))\n"
            ),
        })
        assert rule_ids(findings) == ["R005", "R101"]

    def test_noqa_on_multiline_statement_local_rule(self):
        # A def spread over several physical lines: R005 anchors its
        # finding on the offending default's line, and the waiver goes
        # on that same physical line.
        source = (
            "def f(\n"
            "    x=[],  # repro: noqa[R005]\n"
            "):\n"
            "    return x\n"
        )
        assert lint_sources({"m": source}) == []
        flagged = lint_sources(
            {"m": source.replace("  # repro: noqa[R005]", "")}
        )
        assert rule_ids(flagged) == ["R005"]
