"""Tests for the hardened ingestion stage (:mod:`repro.io.ingest`)."""

from __future__ import annotations

import codecs
import json

import pytest

from repro.core.line_features import LineFeatureExtractor
from repro.core.profile import table_profile
from repro.dialect.dialect import Dialect
from repro.errors import (
    EncodingError,
    IngestError,
    MalformedInputError,
    ReproError,
    SizeLimitError,
)
from repro.io.ingest import (
    IngestPolicy,
    IngestReport,
    decode_bytes,
    decode_path,
    ingest_bytes,
    ingest_path,
    ingest_text,
    with_encoding,
)
from repro.io.reader import read_table, read_table_text

PLAIN = "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\n"


class TestDecodeBytes:
    def test_clean_utf8(self):
        text, report = decode_bytes(PLAIN.encode("utf-8"))
        assert text == PLAIN
        assert report.encoding == "utf-8"
        assert report.bom is None
        assert not report.recovered

    @pytest.mark.parametrize(
        "bom, codec",
        [
            (codecs.BOM_UTF8, "utf-8"),
            (codecs.BOM_UTF16_LE, "utf-16-le"),
            (codecs.BOM_UTF16_BE, "utf-16-be"),
            (codecs.BOM_UTF32_LE, "utf-32-le"),
            (codecs.BOM_UTF32_BE, "utf-32-be"),
        ],
    )
    def test_bom_variants(self, bom, codec):
        data = bom + PLAIN.encode(codec)
        text, report = decode_bytes(data)
        assert text == PLAIN
        assert report.bom is not None
        assert not text.startswith("﻿")

    def test_utf32_le_bom_beats_utf16_prefix(self):
        # FF FE 00 00 is both the UTF-32 LE BOM and the UTF-16 LE BOM
        # followed by a NUL; the longest signature must win.
        data = codecs.BOM_UTF32_LE + PLAIN.encode("utf-32-le")
        text, report = decode_bytes(data)
        assert report.bom == "utf-32-le"
        assert text == PLAIN

    def test_latin1_fallback(self):
        data = "a,\xe9\n".encode("latin-1")
        text, report = decode_bytes(data)
        assert text == "a,é\n"
        assert report.encoding == "latin-1"

    def test_preferred_encoding_tried_first(self):
        # These bytes are valid UTF-8, but the caller knows better.
        data = "a,ä\n".encode("cp1252")
        text, report = decode_bytes(
            data, IngestPolicy(encoding="cp1252")
        )
        assert text == "a,ä\n"
        assert report.encoding == "cp1252"

    def test_bom_beats_preferred_encoding(self):
        data = codecs.BOM_UTF16_LE + PLAIN.encode("utf-16-le")
        text, report = decode_bytes(
            data, IngestPolicy(encoding="latin-1")
        )
        assert text == PLAIN
        assert report.bom == "utf-16-le"

    def test_unknown_preferred_encoding_is_rejected(self):
        # Regression: a typo'd preferred encoding used to be silently
        # swallowed by the fallback loop — ``--encoding uft-8`` decoded
        # as UTF-8 and reported success.  The policy now validates
        # every codec name at construction time.
        with pytest.raises(EncodingError, match="uft-8"):
            IngestPolicy(encoding="uft-8")

    def test_unknown_fallback_encoding_is_rejected(self):
        with pytest.raises(EncodingError, match="no-such-codec"):
            IngestPolicy(fallback_encodings=("no-such-codec",))

    def test_encoding_aliases_still_resolve(self):
        # codecs.lookup accepts aliases, so spellings like ``UTF8`` or
        # ``latin1`` keep working exactly as before the validation.
        text, report = decode_bytes(
            PLAIN.encode("utf-8"), IngestPolicy(encoding="UTF8")
        )
        assert text == PLAIN

    def test_strict_rejects_lying_bom(self):
        # UTF-16 BOM, then an odd number of bytes: not UTF-16.
        data = codecs.BOM_UTF16_LE + b"abc"
        with pytest.raises(EncodingError):
            decode_bytes(data, IngestPolicy.strict_policy())

    def test_lenient_replaces_lying_bom(self):
        data = codecs.BOM_UTF16_LE + b"abc"
        text, report = decode_bytes(data)
        assert report.replacement_count >= 1
        assert report.recovered

    def test_strict_clean_input_identical_to_lenient(self):
        data = PLAIN.encode("utf-8")
        lenient_text, lenient_report = decode_bytes(data)
        strict_text, strict_report = decode_bytes(
            data, IngestPolicy.strict_policy()
        )
        assert lenient_text == strict_text
        assert not lenient_report.recovered
        assert not strict_report.recovered


class TestNulAndSizePolicy:
    def test_lenient_strips_nuls(self):
        result = ingest_bytes(b"a,\x00b\n1,2\n")
        assert result.table.row(0) == ["a", "b"]
        assert result.report.nul_count == 1
        assert result.report.recovered

    def test_strict_rejects_nuls(self):
        with pytest.raises(MalformedInputError):
            ingest_bytes(
                b"a,\x00b\n", policy=IngestPolicy.strict_policy()
            )

    def test_strict_rejects_oversize(self):
        policy = IngestPolicy.strict_policy(max_bytes=16)
        with pytest.raises(SizeLimitError):
            ingest_bytes(b"a,b\n" * 100, policy=policy)

    def test_lenient_truncates_at_record_boundary(self):
        policy = IngestPolicy(max_bytes=10)
        result = ingest_bytes(b"a,b\nc,d\ne,f\ng,h\n", policy=policy)
        assert result.report.truncated_bytes > 0
        # Every surviving row is intact (cut at a newline).
        assert all(row == [row[0], row[1]] for row in result.table.rows())
        assert result.table.n_rows == 2

    def test_text_entry_point_size_guard(self):
        policy = IngestPolicy(max_bytes=10)
        result = ingest_text("a,b\nc,d\ne,f\n", policy=policy)
        assert result.report.truncated_bytes > 0

    def test_lenient_truncates_utf16_on_code_unit_boundary(self):
        # Regression: the byte-level size guard used to cut BOM'd
        # UTF-16 payloads at any 0x0A *byte* — the low byte of dozens
        # of ordinary characters ('Ȋ', '攊', …), not just of
        # a newline — leaving a mis-aligned tail that decoded to
        # garbage.  Truncation now happens on decoded text, so every
        # surviving row is intact.
        rows = "Region,Q1\nNorth,5\n" * 20
        data = codecs.BOM_UTF16_LE + rows.encode("utf-16-le")
        policy = IngestPolicy(max_bytes=100)
        result = ingest_bytes(data, policy=policy)
        assert result.report.truncated_bytes > 0
        assert result.report.bom == "utf-16-le"
        assert all(
            row in (["Region", "Q1"], ["North", "5"])
            for row in result.table.rows()
        )

    def test_utf16_truncation_byte_count_is_honest(self):
        rows = "Region,Q1\nNorth,5\n" * 20
        data = codecs.BOM_UTF16_LE + rows.encode("utf-16-le")
        policy = IngestPolicy(max_bytes=100)
        text, report = decode_bytes(data, policy)
        kept = len(text.encode("utf-16-le"))
        # kept payload + reported cut = everything after the BOM.
        assert kept + report.truncated_bytes == len(data) - 2
        assert kept <= policy.max_bytes

    def test_lenient_truncates_utf32_on_code_unit_boundary(self):
        rows = "Region,Q1\nNorth,5\n" * 20
        data = codecs.BOM_UTF32_LE + rows.encode("utf-32-le")
        policy = IngestPolicy(max_bytes=120)
        result = ingest_bytes(data, policy=policy)
        assert result.report.truncated_bytes > 0
        assert all(
            row in (["Region", "Q1"], ["North", "5"])
            for row in result.table.rows()
        )

    def test_strict_oversize_wide_bom_still_rejected(self):
        data = codecs.BOM_UTF16_LE + ("a,b\n" * 100).encode("utf-16-le")
        policy = IngestPolicy.strict_policy(max_bytes=64)
        with pytest.raises(SizeLimitError):
            ingest_bytes(data, policy=policy)


class TestIngestText:
    def test_bom_in_str_is_stripped(self):
        result = ingest_text("﻿" + PLAIN)
        assert result.table.cell(0, 0) == "Region"
        assert result.report.bom == "utf-8-sig"

    def test_unterminated_quote_lenient_flag(self):
        result = ingest_text(
            'a,"open\nrest,of,file\n', dialect=Dialect.standard()
        )
        assert result.report.unterminated_quote
        assert result.report.recovered

    def test_unterminated_quote_strict_raises(self):
        with pytest.raises(MalformedInputError):
            ingest_text(
                'a,"open\nrest\n',
                dialect=Dialect.standard(),
                policy=IngestPolicy.strict_policy(),
            )

    def test_empty_input_dialect_fallback(self):
        result = ingest_bytes(b"")
        assert result.report.dialect_fallback
        assert result.report.recovered

    def test_ragged_padding_reported(self):
        result = ingest_text(
            "a,b,c\nd\n", dialect=Dialect.standard()
        )
        assert result.report.ragged_rows == 1
        assert result.report.ragged_pad_cells == 2
        # Padding is not recovery: both modes do it identically.
        assert not result.report.recovered

    def test_empty_input_yields_sentinel(self):
        result = ingest_bytes(b"")
        assert result.table.shape == (1, 1)
        assert result.table.cell(0, 0) == ""

    def test_explicit_dialect_skips_detection(self):
        result = ingest_text("a|b\n", dialect=Dialect(delimiter="|"))
        assert result.table.row(0) == ["a", "b"]

    def test_report_warnings_are_prose(self):
        result = ingest_bytes(
            codecs.BOM_UTF8 + "a,\x00b\n".encode("utf-8")
        )
        notes = result.report.warnings()
        assert any("byte-order mark" in n for n in notes)
        assert any("NUL" in n for n in notes)

    def test_clean_input_has_no_warnings(self):
        assert ingest_text(PLAIN).report.warnings() == []


class TestBomFeatureRegression:
    """The satellite bug: a UTF-8 BOM must not poison features."""

    def test_content_hash_equal_with_and_without_bom(self):
        with_bom = ingest_bytes(codecs.BOM_UTF8 + PLAIN.encode("utf-8"))
        without = ingest_bytes(PLAIN.encode("utf-8"))
        assert with_bom.table == without.table
        assert (
            table_profile(with_bom.table).content_hash
            == table_profile(without.table).content_hash
        )

    def test_line_features_byte_identical(self):
        extractor = LineFeatureExtractor()
        with_bom = ingest_bytes(codecs.BOM_UTF8 + PLAIN.encode("utf-8"))
        without = ingest_bytes(PLAIN.encode("utf-8"))
        a = extractor.extract(with_bom.table)
        b = extractor.extract(without.table)
        assert a.tobytes() == b.tobytes()


class TestReaderFacades:
    def test_read_table_text_strips_bom(self):
        table = read_table_text("﻿a,b\n1,2\n")
        assert table.cell(0, 0) == "a"

    def test_read_table_non_utf8_no_longer_crashes(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes("name,city\nRené,Köln\n".encode("latin-1"))
        table = read_table(path)
        assert table.cell(1, 0) == "René"

    def test_read_table_respects_encoding_preference(self, tmp_path):
        path = tmp_path / "cp.csv"
        path.write_bytes("a,ä\n".encode("cp1252"))
        table = read_table(path, encoding="cp1252")
        assert table.cell(0, 1) == "ä"

    def test_read_table_strict_policy_raises_typed_error(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_bytes(codecs.BOM_UTF16_LE + b"abc")
        with pytest.raises(IngestError):
            read_table(path, policy=IngestPolicy.strict_policy())

    def test_ingest_error_is_repro_error(self):
        assert issubclass(IngestError, ReproError)
        assert issubclass(EncodingError, IngestError)
        assert issubclass(SizeLimitError, IngestError)
        assert issubclass(MalformedInputError, IngestError)

    def test_with_encoding_helper(self):
        policy = with_encoding(None, "cp1252")
        assert policy.encoding == "cp1252"
        assert with_encoding(policy, None) is policy


class TestDecodePath:
    def test_bom_tolerant_json_loading(self, tmp_path):
        payload = {"key": "välue"}
        path = tmp_path / "m.json"
        path.write_bytes(
            codecs.BOM_UTF8 + json.dumps(payload).encode("utf-8")
        )
        text, report = decode_path(path, IngestPolicy.strict_policy())
        assert json.loads(text) == payload
        assert report.bom == "utf-8-sig"

    def test_ingest_path_reads_bytes(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_bytes(PLAIN.encode("utf-8"))
        result = ingest_path(path)
        assert result.table.n_rows == 3
        assert result.dialect.delimiter == ","


class TestAnalyzeIntegration:
    def test_analyze_carries_ingest_report(self, tiny_pipeline):
        result = tiny_pipeline.analyze("﻿Region,Q1\nNorth,5\n")
        assert result.ingest is not None
        assert result.ingest.bom == "utf-8-sig"
        assert result.table.cell(0, 0) == "Region"

    def test_analyze_bom_invariant_predictions(self, tiny_pipeline):
        clean = tiny_pipeline.analyze(PLAIN)
        bommed = tiny_pipeline.analyze("﻿" + PLAIN)
        assert clean.line_classes == bommed.line_classes
        assert clean.cell_classes == bommed.cell_classes


@pytest.fixture(scope="module")
def tiny_pipeline(tiny_corpus):
    from repro.core.strudel import StrudelPipeline

    pipeline = StrudelPipeline(n_estimators=8, random_state=0)
    pipeline.fit(tiny_corpus.files[:8])
    return pipeline
