"""Fast unit tests for the Markdown rendering helpers."""

from __future__ import annotations

import numpy as np

from repro.eval.markdown import _confusion_block, _f1_table, _paper_cells
from repro.eval.runner import ClassificationScores
from repro.types import CONTENT_CLASSES, CellClass


def _scores():
    return ClassificationScores.from_predictions(
        [CellClass.DATA, CellClass.NOTES],
        [CellClass.DATA, CellClass.DATA],
    )


class TestF1Table:
    def test_measured_and_paper_rows(self):
        lines = _f1_table(
            {"Strudel-L": _scores()},
            {"Strudel-L": {"metadata": 0.9, "macro_avg": 0.8,
                           "accuracy": 0.95, "derived": None}},
        )
        assert lines[0].startswith("| algorithm |")
        assert any("(ours)" in line for line in lines)
        assert any("(paper)" in line for line in lines)
        # None paper values render as an em dash.
        paper_row = next(line for line in lines if "(paper)" in line)
        assert "—" in paper_row

    def test_no_paper_reference(self):
        lines = _f1_table({"X": _scores()}, None)
        assert not any("(paper)" in line for line in lines)

    def test_missing_class_renders_dash(self):
        labels = tuple(
            c for c in CONTENT_CLASSES if c is not CellClass.DERIVED
        )
        scores = ClassificationScores.from_predictions(
            [CellClass.DATA], [CellClass.DATA], labels=labels
        )
        lines = _f1_table({"Pytheas-L": scores}, None)
        ours_row = next(line for line in lines if "(ours)" in line)
        assert "—" in ours_row


class TestPaperCells:
    def test_order_and_fallbacks(self):
        cells = _paper_cells({"metadata": 0.5})
        assert cells[0] == "0.500"
        assert cells[1:] == ["—"] * 7


class TestConfusionBlock:
    def test_identity_matrix(self):
        lines = _confusion_block(np.eye(6))
        assert len(lines) == 8  # header + rule + 6 rows
        assert "1.000" in lines[2]
        assert lines[2].startswith("| metadata |")
