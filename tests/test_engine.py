"""The persistent-worker corpus engine: pools, sweeps, and the cache.

The contract mirrors ``test_perf``'s: the engine may change *when*
work happens (warm workers, micro-batches, cache hits), never *what*
it computes — the parity tests here compare prediction bytes across
every execution mode.  The failure-path tests pin the loud-degradation
promises: one bad file costs one skip entry, a dead worker costs one
metric + warning + the batch's casualties, and nothing ever silently
aborts a sweep.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

import repro.perf.engine as engine_mod
from repro.core.strudel import StrudelPipeline
from repro.errors import InvalidParameterError, NotFittedError
from repro.io.ingest import IngestPolicy
from repro.io.writer import write_csv_text
from repro.obs import get_metrics
from repro.perf.engine import (
    CorpusEngine,
    SweepCache,
    model_fingerprint,
    policy_fingerprint,
)
from repro.perf.pool import (
    WorkerPool,
    shared_pool,
    shutdown_shared_pool,
)


# ----------------------------------------------------------------------
# Module-level work functions: picklable by reference in fork children.
# ----------------------------------------------------------------------
def _double(x: int) -> int:
    return 2 * x


_REAL_SWEEP_BATCH = engine_mod._sweep_batch


def _crash_on_marker(batch):
    """Test double for ``_sweep_batch``: kill the worker outright when
    the batch contains the marker file, else do the real work."""
    if any("crashme" in name for _, name, _ in batch):
        os._exit(13)
    return _REAL_SWEEP_BATCH(batch)


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted_pipeline(tiny_corpus) -> StrudelPipeline:
    pipeline = StrudelPipeline(n_estimators=4, random_state=0)
    pipeline.fit(tiny_corpus.files)
    return pipeline


@pytest.fixture(scope="module")
def corpus_dir(tiny_corpus, tmp_path_factory):
    """Six corpus files materialized to disk, in a fixed order."""
    directory = tmp_path_factory.mktemp("sweep_corpus")
    paths = []
    for file in tiny_corpus.files[:6]:
        path = directory / f"{file.name}.csv"
        path.write_text(
            write_csv_text(file.table.rows()), encoding="utf-8"
        )
        paths.append(path)
    return paths


def _result_bytes(results):
    """Canonical byte view of a sweep's outputs, for parity asserts."""
    return [
        (
            path.name,
            result.dialect,
            result.line_codes.tobytes(),
            result.cell_positions.tobytes(),
            result.cell_codes.tobytes(),
        )
        for path, result in results
    ]


# ----------------------------------------------------------------------
# WorkerPool
# ----------------------------------------------------------------------
def test_worker_pool_rejects_nonpositive_workers():
    with pytest.raises(InvalidParameterError):
        WorkerPool(0)


def test_worker_pool_spawns_once_and_reuses():
    metrics = get_metrics()
    spawns = metrics.counter("worker_pool.spawns")
    reuses = metrics.counter("worker_pool.reuses")
    with WorkerPool(2) as pool:
        assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
        assert pool.map(_double, [4, 5]) == [8, 10]
        assert pool.submit(_double, 7).result() == 14
    assert metrics.counter("worker_pool.spawns") == spawns + 1
    assert metrics.counter("worker_pool.reuses") == reuses + 2


def test_worker_pool_discard_broken_respawns():
    metrics = get_metrics()
    with WorkerPool(1) as pool:
        assert pool.map(_double, [1]) == [2]
        broken = metrics.counter("worker_pool.broken")
        spawns = metrics.counter("worker_pool.spawns")
        pool.discard_broken()
        assert metrics.counter("worker_pool.broken") == broken + 1
        # The next call transparently respawns the workers.
        assert pool.map(_double, [21]) == [42]
        assert metrics.counter("worker_pool.spawns") == spawns + 1


def test_shared_pool_reuses_and_grows():
    shutdown_shared_pool()
    try:
        small = shared_pool(1)
        assert shared_pool(1) is small
        grown = shared_pool(2)
        assert grown.max_workers >= 2
        assert shared_pool(1) is grown  # a bigger pool serves smaller asks
    finally:
        shutdown_shared_pool()


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_model_fingerprint_stable_and_model_sensitive(
    tiny_corpus, fitted_pipeline
):
    assert model_fingerprint(fitted_pipeline) == model_fingerprint(
        fitted_pipeline
    )
    other = StrudelPipeline(n_estimators=4, random_state=1)
    other.fit(tiny_corpus.files)
    assert model_fingerprint(other) != model_fingerprint(fitted_pipeline)


def test_model_fingerprint_requires_a_fitted_pipeline():
    with pytest.raises(NotFittedError):
        model_fingerprint(StrudelPipeline(n_estimators=4))


def test_policy_fingerprint_distinguishes_policies():
    assert policy_fingerprint(IngestPolicy()) != policy_fingerprint(
        IngestPolicy(strict=True)
    )


def test_broadcast_payload_drops_feature_cache(fitted_pipeline):
    from repro.perf.cache import FeatureCache

    fitted_pipeline.set_feature_cache(FeatureCache(max_entries=4))
    try:
        clone = pickle.loads(pickle.dumps(fitted_pipeline))
    finally:
        fitted_pipeline.set_feature_cache(None)
    assert clone.line_classifier._feature_cache is None
    assert clone.cell_classifier._feature_cache is None


# ----------------------------------------------------------------------
# SweepCache
# ----------------------------------------------------------------------
def _fake_entry(seed: int) -> dict[str, np.ndarray]:
    return {
        "line_codes": np.array([seed % 7, 3], dtype=np.int8),
        "cell_positions": np.zeros((0, 2), dtype=np.int64),
        "cell_codes": np.zeros(0, dtype=np.int8),
        "dialect": np.array([",", '"', ""], dtype=np.str_),
        "shape": np.array([2, 2], dtype=np.int64),
    }


def test_sweep_cache_entry_key_covers_all_three_parts():
    keys = {
        SweepCache.entry_key("c1", "m1", "p1"),
        SweepCache.entry_key("c2", "m1", "p1"),
        SweepCache.entry_key("c1", "m2", "p1"),
        SweepCache.entry_key("c1", "m1", "p2"),
    }
    assert len(keys) == 4


def test_sweep_cache_roundtrip_and_corrupt_entry_quarantine(tmp_path):
    cache = SweepCache(tmp_path)
    key = SweepCache.entry_key("content", "model", "policy")
    assert cache.load(key, tmp_path / "f.csv") is None  # miss
    cache.store(key, _fake_entry(0))
    result = cache.load(key, tmp_path / "f.csv")
    assert result is not None
    assert result.dialect.delimiter == ","
    assert list(result.line_codes) == [0, 3]

    # Torn write on disk: the entry is dropped and costs one miss,
    # never an exception, and the next store repopulates it.
    (tmp_path / f"{key}.npz").write_bytes(b"definitely not a zip")
    assert cache.load(key, tmp_path / "f.csv") is None
    assert not (tmp_path / f"{key}.npz").exists()
    cache.store(key, _fake_entry(0))
    assert cache.load(key, tmp_path / "f.csv") is not None
    stats = cache.stats()
    assert stats["hits"] == 2 and stats["misses"] == 2


def test_sweep_cache_evicts_oldest_past_the_bound(tmp_path):
    cache = SweepCache(tmp_path, max_entries=2)
    keys = [SweepCache.entry_key(f"c{i}", "m", "p") for i in range(3)]
    for i, key in enumerate(keys):
        cache.store(key, _fake_entry(i))
        os.utime(  # make write order unambiguous for the mtime LRU
            tmp_path / f"{key}.npz", ns=(i * 1_000_000, i * 1_000_000)
        )
        if i == 2:
            break
    stats = cache.stats()
    assert stats["size"] == 2 and stats["evictions"] == 1
    assert not (tmp_path / f"{keys[0]}.npz").exists()
    assert cache.load(keys[2], tmp_path / "f.csv") is not None


def test_sweep_cache_rejects_nonpositive_bound(tmp_path):
    with pytest.raises(InvalidParameterError):
        SweepCache(tmp_path, max_entries=0)


# ----------------------------------------------------------------------
# CorpusEngine: parity across execution modes (the pinned contract)
# ----------------------------------------------------------------------
def test_sweep_parity_across_jobs_and_cache(
    fitted_pipeline, corpus_dir, tmp_path
):
    with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
        sequential, report = engine.sweep_paths(corpus_dir)
    assert report.completed == len(corpus_dir)
    assert report.skipped == []
    assert engine._pool is None  # inline mode never spawns workers

    with CorpusEngine(fitted_pipeline, n_jobs=2) as engine:
        parallel, _ = engine.sweep_paths(corpus_dir)

    with CorpusEngine(
        fitted_pipeline, n_jobs=2, cache_dir=tmp_path / "cache"
    ) as engine:
        cold, cold_report = engine.sweep_paths(corpus_dir)
        warm, warm_report = engine.sweep_paths(corpus_dir)
    assert cold_report.cache_hits == 0
    assert warm_report.cache_hits == len(corpus_dir)
    assert warm_report.batches == 0  # all hits: nothing fanned out

    expected = _result_bytes(sequential)
    assert _result_bytes(parallel) == expected
    assert _result_bytes(cold) == expected
    assert _result_bytes(warm) == expected


def test_sweep_streams_results_in_input_order(
    fitted_pipeline, corpus_dir
):
    reversed_paths = list(reversed(corpus_dir))
    with CorpusEngine(fitted_pipeline, n_jobs=2) as engine:
        emitted = [path for path, _ in engine.sweep(reversed_paths)]
    assert emitted == reversed_paths


def test_sweep_results_decode_to_cell_classes(
    fitted_pipeline, corpus_dir
):
    with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
        results, _ = engine.sweep_paths(corpus_dir[:1])
    (_, result), = results
    assert len(result.line_classes()) == result.n_rows
    for (row, col), cls in result.cell_classes().items():
        assert 0 <= row < result.n_rows
        assert 0 <= col < result.n_cols
        assert cls.name  # decoded back to a CellClass member


# ----------------------------------------------------------------------
# CorpusEngine: failure paths
# ----------------------------------------------------------------------
def test_sweep_skips_unreadable_files(fitted_pipeline, corpus_dir):
    paths = [corpus_dir[0], corpus_dir[0].parent / "missing.csv",
             corpus_dir[1]]
    with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
        results, report = engine.sweep_paths(paths)
    assert [path.name for path, _ in results] == [
        corpus_dir[0].name, corpus_dir[1].name
    ]
    assert report.completed == 2
    (skip,) = report.skipped
    assert skip.path.name == "missing.csv"
    assert skip.stage == "read"


def test_sweep_poison_file_skips_without_aborting(
    fitted_pipeline, corpus_dir, tmp_path
):
    """One unclassifiable file costs one skip entry, nothing else."""
    # Strict mode turns the size guard into a typed rejection; the
    # limit is set so exactly the files at least as big as the first
    # one are poison.
    small_limit = corpus_dir[0].stat().st_size - 1
    policy = IngestPolicy(strict=True, max_bytes=small_limit)
    cache_dir = tmp_path / "cache"
    with CorpusEngine(
        fitted_pipeline, n_jobs=2, policy=policy, cache_dir=cache_dir
    ) as engine:
        results, report = engine.sweep_paths(corpus_dir[:3])
    skipped_names = {skip.path.name for skip in report.skipped}
    completed_names = {path.name for path, _ in results}
    assert corpus_dir[0].name in skipped_names
    assert completed_names | skipped_names == {
        p.name for p in corpus_dir[:3]
    }
    assert report.completed + len(report.skipped) == 3
    for skip in report.skipped:
        assert skip.stage == "classify"
        assert "SizeLimitError" in skip.reason
    # Failures are never admitted into the sweep cache.
    assert len(list(cache_dir.glob("*.npz"))) == report.completed


def test_sweep_worker_crash_is_loud_and_survivable(
    fitted_pipeline, corpus_dir, tmp_path, monkeypatch
):
    """A worker killed mid-batch: metric + warning, the casualties are
    named in the skip report, and the sweep finishes the rest on a
    respawned pool."""
    crash_path = tmp_path / "crashme.csv"
    crash_path.write_text(
        corpus_dir[0].read_text(encoding="utf-8"), encoding="utf-8"
    )
    paths = [crash_path, corpus_dir[0], corpus_dir[1]]
    monkeypatch.setattr(engine_mod, "_sweep_batch", _crash_on_marker)
    metrics = get_metrics()
    crashes = metrics.counter("sweep.worker_crashes")
    # window=1 keeps one batch in flight, so the crash is handled
    # before later files are submitted — they must land on the
    # respawned pool, not die as cancelled futures.
    with CorpusEngine(fitted_pipeline, n_jobs=2, window=1) as engine:
        with pytest.warns(RuntimeWarning, match="worker crashed"):
            results, report = engine.sweep_paths(paths)
    assert metrics.counter("sweep.worker_crashes") == crashes + 1
    assert report.worker_crashes == 1
    casualties = {skip.path.name for skip in report.skipped}
    assert "crashme.csv" in casualties
    for skip in report.skipped:
        assert skip.stage == "worker"
        assert "worker crashed" in skip.reason
    # Files batched after the crash completed on the respawned pool.
    survivors = {path.name for path, _ in results}
    assert corpus_dir[1].name in survivors
    assert report.completed + len(report.skipped) == len(paths)


def test_sweep_report_as_dict_names_casualties(
    fitted_pipeline, corpus_dir
):
    missing = corpus_dir[0].parent / "gone.csv"
    with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
        _, report = engine.sweep_paths([corpus_dir[0], missing])
    payload = report.as_dict()
    assert payload["files"] == 2
    assert payload["completed"] == 1
    (skip,) = payload["skipped"]
    assert skip["path"].endswith("gone.csv")
    assert skip["stage"] == "read"


def test_sweep_interrupt_cancels_window_and_engine_survives(
    fitted_pipeline, corpus_dir
):
    """Ctrl-C mid-sweep must not leave the engine wedged: the
    in-flight futures are cancelled, the pool is discarded, the
    interrupt propagates — and the *same* engine's next sweep runs on
    a fresh pool and completes."""
    with CorpusEngine(fitted_pipeline, n_jobs=2, window=2) as engine:
        real_resolve = engine._resolve
        calls = {"n": 0}

        def interrupt_first(token):
            calls["n"] += 1
            if calls["n"] == 1:
                raise KeyboardInterrupt
            return real_resolve(token)

        engine._resolve = interrupt_first
        try:
            with pytest.raises(KeyboardInterrupt):
                engine.sweep_paths(corpus_dir)
        finally:
            del engine._resolve  # back to the class implementation
        assert engine._pool is None  # the window was discarded

        results, report = engine.sweep_paths(corpus_dir)
    assert report.completed == len(corpus_dir)
    assert report.skipped == []
    assert [path for path, _ in results] == list(corpus_dir)


def test_abandoned_sweep_iterator_releases_the_window(
    fitted_pipeline, corpus_dir
):
    """A consumer that walks away from the streaming iterator
    (GeneratorExit) gets the same cleanup as an interrupt."""
    with CorpusEngine(fitted_pipeline, n_jobs=2, window=2) as engine:
        run = iter(engine.sweep(corpus_dir))
        next(run)
        run.close()
        assert engine._pool is None
        _, report = engine.sweep_paths(corpus_dir)
    assert report.completed == len(corpus_dir)


def test_atexit_teardown_tolerates_dead_executors():
    """Interpreter exit with a live-but-broken pool: the atexit sweep
    must swallow the wreckage and exit 0 with a quiet stderr, not
    race the registry or re-raise out of ``shutdown_all_pools``."""
    script = textwrap.dedent(
        """
        from repro.perf.pool import WorkerPool, shared_pool

        pool = WorkerPool(1)
        assert pool.map(abs, [-3]) == [3]
        shared = shared_pool(1)
        assert shared.map(abs, [-5]) == [5]
        # Kill the workers behind the registry's back, then exit
        # without shutting anything down: atexit owns the cleanup.
        for owner in (pool, shared):
            for proc in list(owner._executor._processes.values()):
                proc.kill()
                proc.join()
        """
    )
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "Traceback" not in proc.stderr


# ----------------------------------------------------------------------
# CorpusEngine.process_payloads (the serve substrate)
# ----------------------------------------------------------------------
def test_process_payloads_parity_with_sweep(
    fitted_pipeline, corpus_dir
):
    items = [
        (str(path), path.read_bytes()) for path in corpus_dir
    ]
    with CorpusEngine(fitted_pipeline, n_jobs=1) as engine:
        swept, _ = engine.sweep_paths(corpus_dir)
        payloads, report = engine.process_payloads(items)
    assert report.completed == len(items)
    assert report.skipped == []
    assert _result_bytes(swept) == _result_bytes(
        [(Path(name), result) for (name, _), result in
         zip(items, payloads)]
    )


def test_process_payloads_aligns_skips_in_place(
    fitted_pipeline, corpus_dir
):
    """The aligned-list contract: a failure occupies its input slot
    as a SkipEntry, successes keep theirs."""
    policy = IngestPolicy(strict=True)
    items = [
        (str(corpus_dir[0]), corpus_dir[0].read_bytes()),
        ("damaged.csv", b"a,\x00b\n1,2\n"),
        (str(corpus_dir[1]), corpus_dir[1].read_bytes()),
    ]
    with CorpusEngine(
        fitted_pipeline, n_jobs=1, policy=policy
    ) as engine:
        outcomes, report = engine.process_payloads(items)
    assert len(outcomes) == 3
    assert outcomes[0].path.name == corpus_dir[0].name
    assert outcomes[1].stage == "classify"
    assert "damaged.csv" in str(outcomes[1].path)
    assert outcomes[2].path.name == corpus_dir[1].name
    assert report.completed == 2
    assert [skip.path.name for skip in report.skipped] == [
        "damaged.csv"
    ]


def test_process_payloads_shares_the_sweep_cache(
    fitted_pipeline, corpus_dir, tmp_path
):
    """A swept file and a served payload with the same bytes hit one
    cache entry — and a cached payload never fans out a batch."""
    items = [(str(path), path.read_bytes()) for path in corpus_dir]
    with CorpusEngine(
        fitted_pipeline, n_jobs=1, cache_dir=tmp_path / "cache"
    ) as engine:
        engine.sweep_paths(corpus_dir)
        outcomes, report = engine.process_payloads(items)
    assert report.cache_hits == len(items)
    assert report.batches == 0
    assert all(hasattr(o, "line_codes") for o in outcomes)


def test_process_payloads_worker_crash_names_aligned_casualties(
    fitted_pipeline, corpus_dir, monkeypatch
):
    """A worker killed mid-call: every slot still settles (FileResult
    or SkipEntry), the marker file is named a worker-stage casualty,
    and the engine's next call runs on a respawned pool.  All batches
    were submitted up front, so sibling batches may die with the pool
    — loudly, never silently."""
    monkeypatch.setattr(engine_mod, "_sweep_batch", _crash_on_marker)
    data = corpus_dir[0].read_bytes()
    items = [("crashme.csv", data)] + [
        (str(path), path.read_bytes()) for path in corpus_dir
    ]
    metrics = get_metrics()
    crashes = metrics.counter("sweep.worker_crashes")
    with CorpusEngine(fitted_pipeline, n_jobs=2) as engine:
        with pytest.warns(RuntimeWarning, match="worker crashed"):
            outcomes, report = engine.process_payloads(items)
        assert metrics.counter("sweep.worker_crashes") >= crashes + 1
        assert len(outcomes) == len(items)
        casualties = [
            o for o in outcomes
            if not hasattr(o, "line_codes") and o.stage == "worker"
        ]
        assert any("crashme" in str(o.path) for o in casualties)
        assert report.completed + len(report.skipped) == len(items)
        # The dead letters are replayable: the same engine serves the
        # clean payloads on a respawned pool.
        monkeypatch.setattr(engine_mod, "_sweep_batch", _REAL_SWEEP_BATCH)
        retried, retry_report = engine.process_payloads(items[1:])
        assert retry_report.completed == len(items) - 1
        assert all(hasattr(o, "line_codes") for o in retried)


def test_engine_rejects_nonpositive_window(fitted_pipeline):
    with pytest.raises(InvalidParameterError):
        CorpusEngine(fitted_pipeline, window=0)


def test_engine_pool_persists_across_sweeps(
    fitted_pipeline, corpus_dir
):
    metrics = get_metrics()
    with CorpusEngine(fitted_pipeline, n_jobs=2) as engine:
        engine.sweep_paths(corpus_dir[:2])
        spawns = metrics.counter("worker_pool.spawns")
        engine.sweep_paths(corpus_dir[:2])
        assert metrics.counter("worker_pool.spawns") == spawns
    assert engine._pool is None  # close() released the workers
