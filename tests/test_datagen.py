"""Tests for the synthetic corpus generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.derived import DerivedDetector
from repro.core.keywords import contains_aggregation_keyword
from repro.datagen.corpora import (
    CORPUS_BUILDERS,
    make_cius,
    make_corpus,
    make_deex,
    make_mendeley,
    make_saus,
)
from repro.datagen.filegen import FileBuilder, generate_file
from repro.datagen.spec import CorpusSpec, FileSpec, TableSpec
from repro.datagen.values import draw_values, format_value
from repro.errors import GenerationError
from repro.types import CellClass


class TestValues:
    def test_draw_values_shape_and_rounding(self):
        rng = np.random.default_rng(0)
        values = draw_values(rng, 4, 3, float_values=True)
        assert values.shape == (4, 3)
        assert np.allclose(values, np.round(values, 1))

    def test_format_integer_with_separators(self):
        assert format_value(1234567.0, False, True) == "1,234,567"
        assert format_value(999.0, False, True) == "999"
        assert format_value(1234.0, False, False) == "1234"

    def test_format_float(self):
        assert format_value(3.14159, True, True) == "3.1"


class TestFileBuilder:
    def test_pads_to_widest_row(self):
        builder = FileBuilder()
        builder.add_row(["a"], [CellClass.METADATA], CellClass.METADATA)
        builder.add_row(
            ["b", "c", "d"], [CellClass.DATA] * 3, CellClass.DATA
        )
        annotated = builder.build("x")
        assert annotated.table.shape == (2, 3)
        assert annotated.cell_labels[0][1] is CellClass.EMPTY

    def test_empty_cells_forced_to_empty_label(self):
        builder = FileBuilder()
        builder.add_row(
            ["a", ""], [CellClass.DATA, CellClass.DATA], CellClass.DATA
        )
        annotated = builder.build("x")
        assert annotated.cell_labels[0][1] is CellClass.EMPTY

    def test_length_mismatch_raises(self):
        builder = FileBuilder()
        with pytest.raises(GenerationError):
            builder.add_row(["a"], [], CellClass.DATA)


class TestGeneratedFiles:
    @pytest.fixture
    def rng(self):
        return np.random.default_rng(0)

    def test_labels_are_consistent(self, rng):
        spec = FileSpec(tables=[TableSpec()])
        annotated = generate_file(spec, rng, "f")
        for i, row in enumerate(annotated.table.rows()):
            for j, value in enumerate(row):
                label = annotated.cell_labels[i][j]
                if value.strip():
                    assert label is not CellClass.EMPTY
                else:
                    assert label is CellClass.EMPTY

    def test_anchored_subtotals_are_true_sums(self, rng):
        spec = FileSpec(
            tables=[
                TableSpec(
                    n_groups=2,
                    group_subtotals=True,
                    grand_total=False,
                    anchored_total_words=True,
                    missing_value_rate=0.0,
                )
            ]
        )
        annotated = generate_file(spec, rng, "f")
        detector = DerivedDetector()
        detected = detector.detect(annotated.table)
        derived_truth = {
            (i, j)
            for i, j, label in annotated.non_empty_cell_items()
            if label is CellClass.DERIVED
        }
        # Every anchored subtotal is arithmetically recoverable.
        assert derived_truth
        assert derived_truth <= detected | derived_truth
        recovered = len(derived_truth & detected) / len(derived_truth)
        assert recovered > 0.9

    def test_unanchored_totals_have_no_keywords(self, rng):
        spec = FileSpec(
            tables=[
                TableSpec(
                    anchored_total_words=False,
                    plain_key_totals=False,
                    group_subtotals=True,
                    grand_total=True,
                )
            ]
        )
        annotated = generate_file(spec, rng, "f")
        for i in annotated.non_empty_line_indices():
            if annotated.line_labels[i] is CellClass.DERIVED:
                row = annotated.table.row(i)
                assert not any(
                    contains_aggregation_keyword(v) for v in row
                )

    def test_group_column_layout(self, rng):
        spec = FileSpec(
            tables=[
                TableSpec(
                    n_groups=2, group_column=True, rows_per_group=3,
                    group_subtotals=False, grand_total=False,
                )
            ]
        )
        annotated = generate_file(spec, rng, "f")
        group_cells = [
            (i, j)
            for i, j, label in annotated.non_empty_cell_items()
            if label is CellClass.GROUP
        ]
        # Group values live in column 0 and co-occur with data lines.
        assert group_cells
        assert all(j == 0 for _, j in group_cells)
        for i, _ in group_cells:
            assert annotated.line_labels[i] is CellClass.DATA

    def test_derived_column_marks_row_sums(self, rng):
        spec = FileSpec(
            tables=[
                TableSpec(
                    n_groups=0, derived_column=True, rows_per_group=4,
                    group_subtotals=False, grand_total=False,
                    missing_value_rate=0.0,
                )
            ]
        )
        annotated = generate_file(spec, rng, "f")
        last_col = annotated.table.n_cols - 1
        derived = [
            (i, j)
            for i, j, label in annotated.non_empty_cell_items()
            if label is CellClass.DERIVED
        ]
        assert derived
        assert all(j == last_col for _, j in derived)

    def test_notes_and_metadata_variants(self, rng):
        spec = FileSpec(
            metadata_lines=3,
            metadata_as_table=True,
            notes_lines=3,
            notes_as_table=True,
            tables=[TableSpec()],
        )
        annotated = generate_file(spec, rng, "f")
        classes = set(annotated.non_empty_line_labels())
        assert CellClass.METADATA in classes
        assert CellClass.NOTES in classes


class TestCorpora:
    def test_all_personalities_build(self):
        for name in CORPUS_BUILDERS:
            corpus = make_corpus(name, seed=0, scale=0.02)
            assert len(corpus) >= 2
            assert corpus.total_lines() > 0

    def test_seed_determinism(self):
        a = make_saus(seed=5, scale=0.03)
        b = make_saus(seed=5, scale=0.03)
        for file_a, file_b in zip(a.files, b.files):
            assert file_a.table == file_b.table
            assert file_a.line_labels == file_b.line_labels

    def test_different_seeds_differ(self):
        a = make_saus(seed=1, scale=0.03)
        b = make_saus(seed=2, scale=0.03)
        assert any(
            file_a.table != file_b.table
            for file_a, file_b in zip(a.files, b.files)
        )

    def test_unknown_corpus_raises(self):
        with pytest.raises(GenerationError):
            make_corpus("unknown")

    def test_scale_controls_file_count(self):
        small = make_cius(seed=0, scale=0.02)
        large = make_cius(seed=0, scale=0.06)
        assert len(large) > len(small)

    def test_negative_scale_raises(self):
        with pytest.raises(GenerationError):
            make_saus(seed=0, scale=-1.0)

    def test_mendeley_is_data_dominated(self):
        corpus = make_mendeley(seed=0, scale=0.05)
        data_lines = sum(
            1
            for annotated in corpus
            for label in annotated.non_empty_line_labels()
            if label is CellClass.DATA
        )
        assert data_lines / corpus.total_lines() > 0.9

    def test_all_classes_present_in_deex(self):
        corpus = make_deex(seed=0, scale=0.05)
        classes = {
            label
            for annotated in corpus
            for label in annotated.non_empty_line_labels()
        }
        assert classes == {
            CellClass.METADATA, CellClass.HEADER, CellClass.GROUP,
            CellClass.DATA, CellClass.DERIVED, CellClass.NOTES,
        }

    def test_scaled_files_floor(self):
        spec = CorpusSpec(name="x", domain="admin", n_files=100)
        assert spec.scaled_files(0.0001) == 2
        assert spec.scaled_files(0.5) == 50
