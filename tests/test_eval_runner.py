"""Tests for the evaluation runners (:mod:`repro.eval.runner`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EvaluationError

from repro.core.strudel import StrudelLineClassifier
from repro.eval.runner import (
    ClassificationScores,
    cross_validate_lines,
    evaluate_cells,
    evaluate_lines,
    majority_vote,
    transfer_lines,
)
from repro.types import CONTENT_CLASSES, CellClass, Corpus


class _OracleLine:
    """A fake line algorithm that replays the ground truth."""

    def __init__(self, corpus):
        self._by_table = {
            annotated.table: annotated.line_labels
            for annotated in corpus
        }

    def fit(self, files):
        return self

    def predict(self, table):
        return list(self._by_table[table])


class _ConstantCell:
    """A fake cell algorithm predicting DATA everywhere."""

    def fit(self, files):
        return self

    def predict(self, table):
        return {
            (c.row, c.col): CellClass.DATA
            for c in table.non_empty_cells()
        }


class TestEvaluate:
    def test_oracle_scores_perfectly(self, tiny_corpus):
        model = _OracleLine(tiny_corpus)
        y_true, y_pred = evaluate_lines(model, tiny_corpus.files)
        assert y_true == y_pred

    def test_exclude_derived(self, tiny_corpus):
        model = _OracleLine(tiny_corpus)
        y_true, _ = evaluate_lines(
            model, tiny_corpus.files, exclude_derived=True
        )
        assert CellClass.DERIVED not in y_true

    def test_keys_align_with_predictions(self, tiny_corpus):
        model = _OracleLine(tiny_corpus)
        keys: list = []
        y_true, _ = evaluate_lines(model, tiny_corpus.files, keys=keys)
        assert len(keys) == len(y_true)
        assert keys[0][0] == tiny_corpus.files[0].name

    def test_evaluate_cells_counts(self, tiny_corpus):
        y_true, y_pred = evaluate_cells(
            _ConstantCell(), tiny_corpus.files
        )
        assert len(y_true) == tiny_corpus.total_cells()
        assert set(y_pred) == {CellClass.DATA}


class TestScores:
    def test_from_predictions(self):
        scores = ClassificationScores.from_predictions(
            [CellClass.DATA, CellClass.NOTES],
            [CellClass.DATA, CellClass.DATA],
        )
        assert scores.per_class_f1[CellClass.NOTES] == 0.0
        assert scores.accuracy == 0.5
        assert scores.support[CellClass.DATA] == 1

    def test_average(self):
        a = ClassificationScores.from_predictions(
            [CellClass.DATA], [CellClass.DATA]
        )
        b = ClassificationScores.from_predictions(
            [CellClass.DATA], [CellClass.NOTES]
        )
        mean = ClassificationScores.average([a, b])
        assert mean.accuracy == 0.5
        assert mean.per_class_f1[CellClass.DATA] == 0.5

    def test_average_empty_raises(self):
        with pytest.raises(EvaluationError):
            ClassificationScores.average([])


class TestMajorityVote:
    def test_simple_majority(self):
        votes = {"k": [CellClass.DATA, CellClass.DATA, CellClass.NOTES]}
        truth = {"k": CellClass.DATA}
        y_true, y_pred = majority_vote(votes, truth)
        assert y_pred == [CellClass.DATA]

    def test_tie_breaks_to_rarer_class(self):
        # DATA is common, NOTES rare in the truth distribution.
        votes = {
            "a": [CellClass.DATA, CellClass.NOTES],
            "b": [CellClass.DATA],
            "c": [CellClass.DATA],
        }
        truth = {
            "a": CellClass.NOTES,
            "b": CellClass.DATA,
            "c": CellClass.DATA,
        }
        _, y_pred = majority_vote(votes, truth)
        assert y_pred[0] is CellClass.NOTES


class TestCrossValidation:
    def test_oracle_cv_is_perfect(self, tiny_corpus):
        result = cross_validate_lines(
            tiny_corpus,
            lambda: _OracleLine(tiny_corpus),
            n_splits=3,
            n_repeats=2,
            seed=0,
        )
        assert result.scores.accuracy == 1.0
        assert result.scores.macro_f1 == pytest.approx(1.0)
        assert len(result.per_repetition) == 2
        # Oracle confusion matrix is the identity on present classes.
        diagonal = np.diag(result.confusion)
        assert all(d in (0.0, 1.0) for d in np.round(diagonal, 9))

    def test_real_model_cv_runs(self, tiny_corpus):
        result = cross_validate_lines(
            tiny_corpus,
            lambda: StrudelLineClassifier(n_estimators=5, random_state=0),
            n_splits=3,
            n_repeats=1,
            seed=0,
        )
        assert 0.5 < result.scores.accuracy <= 1.0
        assert result.confusion.shape == (6, 6)

    def test_confusion_rows_normalized(self, tiny_corpus):
        result = cross_validate_lines(
            tiny_corpus,
            lambda: _OracleLine(tiny_corpus),
            n_splits=3,
            n_repeats=1,
            seed=0,
        )
        sums = result.confusion.sum(axis=1)
        for row_sum in sums:
            assert row_sum == pytest.approx(1.0) or row_sum == 0.0


class TestTransfer:
    def test_oracle_transfer(self, tiny_corpus):
        half = len(tiny_corpus.files) // 2
        train = Corpus("train", tiny_corpus.files[:half])
        test = Corpus("test", tiny_corpus.files[half:])
        oracle = _OracleLine(tiny_corpus)
        scores = transfer_lines(train, test, lambda: oracle)
        assert scores.accuracy == 1.0


class TestRepetitionVariance:
    def test_single_repetition_std_is_zero(self, tiny_corpus):
        result = cross_validate_lines(
            tiny_corpus,
            lambda: _OracleLine(tiny_corpus),
            n_splits=3,
            n_repeats=1,
            seed=0,
        )
        assert result.macro_f1_std == 0.0
        assert result.accuracy_std == 0.0

    def test_multi_repetition_std_finite(self, tiny_corpus):
        from repro.core.strudel import StrudelLineClassifier

        result = cross_validate_lines(
            tiny_corpus,
            lambda: StrudelLineClassifier(n_estimators=4, random_state=0),
            n_splits=3,
            n_repeats=3,
            seed=0,
        )
        assert len(result.per_repetition) == 3
        assert 0.0 <= result.macro_f1_std < 0.5
