"""Byte-identity of compiled forest inference with the legacy path.

The compiled traversal (:mod:`repro.ml.compiled`) is a pure
performance substitution: for every fitted forest and every input —
including NaNs, empty batches, single-leaf trees and forests whose
bootstraps missed a rare class — ``predict_proba`` must reproduce the
legacy per-tree loop **bit for bit** (``.tobytes()`` equality), not
merely up to tolerance.  Anything weaker would let chunking or
compaction choices leak into model outputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.compiled import CompiledForest
from repro.ml.forest import RandomForestClassifier
from repro.obs import get_metrics


def _fit(n=300, n_features=5, n_estimators=12, seed=0, **params):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int) + (X[:, 2] > 1.2)
    forest = RandomForestClassifier(
        n_estimators=n_estimators, random_state=seed, **params
    ).fit(X, y)
    return forest, X


def _assert_bit_identical(forest, X):
    legacy = forest.legacy_predict_proba(X)
    compiled = forest.predict_proba(X)
    assert compiled.dtype == legacy.dtype
    assert compiled.shape == legacy.shape
    assert compiled.tobytes() == legacy.tobytes()


class TestByteParity:
    def test_training_matrix(self):
        forest, X = _fit()
        _assert_bit_identical(forest, X)

    @pytest.mark.parametrize("n", [1, 2, 31, 32, 33, 257, 2049])
    def test_batch_sizes_straddling_chunks(self, n):
        # chunk_rows = max(32, 16384 // n_features); sizes around the
        # chunk boundary exercise full chunks, partial chunks and the
        # merged tail in different mixes.
        forest, _ = _fit(n_features=512, n_estimators=6)
        rng = np.random.default_rng(7)
        X = rng.normal(size=(n, 512))
        _assert_bit_identical(forest, X)

    def test_multiple_chunks(self):
        forest, _ = _fit(n_features=5, n_estimators=8)
        rng = np.random.default_rng(1)
        # chunk_rows is 3276 for 5 features: force several chunks.
        X = rng.normal(size=(7000, 5))
        _assert_bit_identical(forest, X)

    def test_nan_features_follow_legacy_comparison(self):
        # NaN <= threshold is False, so NaN rows must go right in both
        # paths; the compiled gather must not special-case them.
        forest, X = _fit()
        X = X.copy()
        X[::3, 1] = np.nan
        X[1::5] = np.nan
        _assert_bit_identical(forest, X)

    def test_extreme_values(self):
        forest, X = _fit()
        X = X.copy()
        X[0] = np.inf
        X[1] = -np.inf
        X[2] = 0.0
        _assert_bit_identical(forest, X)

    def test_zero_row_input(self):
        forest, _ = _fit()
        X = np.empty((0, 5))
        _assert_bit_identical(forest, X)
        assert forest.predict_proba(X).shape == (0, len(forest.classes_))

    def test_fortran_ordered_input(self):
        forest, X = _fit()
        _assert_bit_identical(forest, np.asfortranarray(X))


class TestDegenerateForests:
    def test_single_leaf_trees(self):
        # A constant label yields trees that are exactly one leaf: the
        # frontier finishes on the first iteration everywhere.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        y = np.zeros(40, dtype=int)
        forest = RandomForestClassifier(
            n_estimators=5, random_state=0
        ).fit(X, y)
        assert all(
            len(tree._feature) == 1 for tree in forest.estimators_
        )
        _assert_bit_identical(forest, X)
        assert forest.compile().predict_proba(X).tobytes() == np.ones(
            (40, 1)
        ).tobytes()

    def test_tree_missing_a_rare_class(self):
        # A tree whose training slice never saw class 2 has a 2-class
        # local order; the pre-aligned proba columns must add exact
        # +0.0 for the missing class so the compiled accumulation
        # matches the legacy column-scatter bit for bit.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = np.array([0] * 30 + [1] * 28 + [2] * 2)
        forest = RandomForestClassifier(
            n_estimators=6, random_state=0
        ).fit(X, y)
        from repro.ml.tree import DecisionTreeClassifier

        narrow = DecisionTreeClassifier(random_state=0).fit(
            X[:58], y[:58]  # the slice without class 2
        )
        assert len(narrow.classes_) == 2
        forest.estimators_ = forest.estimators_[:-1] + [narrow]
        forest._compiled = None
        forest._tree_columns = None
        _assert_bit_identical(forest, X)

    def test_stump_forest(self):
        forest, X = _fit(max_depth=1, n_estimators=4)
        _assert_bit_identical(forest, X)

    def test_wide_forest_falls_back_to_int64_tables(self):
        # Enough duplicated trees to push 2 * n_nodes past the int16
        # range: the traversal must transparently widen its node
        # tables and stay byte-identical.
        forest, X = _fit(n=400, n_estimators=1, max_depth=None)
        tree = forest.estimators_[0]
        copies = (2 * np.iinfo(np.int16).max) // len(tree._feature) + 2
        forest.n_estimators = copies
        forest.estimators_ = [tree] * copies
        forest._compiled = None
        forest._tree_columns = None
        compiled = forest.compile()
        assert compiled._index_dtype == np.int64
        assert 2 * compiled.n_nodes > np.iinfo(np.int16).max
        _assert_bit_identical(forest, X[:50])


class TestValidation:
    def test_feature_width_mismatch(self):
        forest, _ = _fit()
        with pytest.raises(InvalidParameterError):
            forest.compile().predict_proba(np.zeros((3, 4)))

    def test_one_dimensional_input(self):
        forest, _ = _fit()
        with pytest.raises(InvalidParameterError):
            forest.compile().predict_proba(np.zeros(5))

    def test_unfitted_forest_not_compilable(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().compile()
        with pytest.raises(InvalidParameterError):
            CompiledForest.from_forest(RandomForestClassifier())

    def test_mismatched_tensor_lengths_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompiledForest(
                feature=np.array([-1, -1]),
                threshold=np.zeros(1),  # wrong length
                left=np.array([-1, -1]),
                right=np.array([-1, -1]),
                proba=np.ones((2, 1)),
                roots=np.array([0, 1]),
                classes=np.array([0]),
                n_features=3,
                tree_classes=np.array([0, 0]),
                tree_class_offsets=np.array([0, 1, 2]),
            )

    def test_mismatched_proba_shape_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompiledForest(
                feature=np.array([-1]),
                threshold=np.zeros(1),
                left=np.array([-1]),
                right=np.array([-1]),
                proba=np.ones((1, 2)),  # 2 columns, 1 class
                roots=np.array([0]),
                classes=np.array([0]),
                n_features=3,
                tree_classes=np.array([0]),
                tree_class_offsets=np.array([0, 1]),
            )


class TestCompiledStructure:
    def test_compile_memoized_and_counted(self):
        forest, _ = _fit(n_estimators=3)
        metrics = get_metrics()
        before = metrics.counter("compiled_forest.compiles")
        compiled = forest.compile()
        assert forest.compile() is compiled
        assert metrics.counter("compiled_forest.compiles") == before + 1

    def test_refit_invalidates_compiled_cache(self):
        forest, X = _fit(n_estimators=3)
        first = forest.compile()
        y = (X[:, 0] > 0).astype(int)
        forest.fit(X, y)
        assert forest._compiled is None
        assert forest.compile() is not first

    def test_decompile_reconstructs_trees_exactly(self):
        forest, X = _fit(n_estimators=6)
        rebuilt = forest.compile().decompile()
        assert len(rebuilt) == len(forest.estimators_)
        for original, copy in zip(forest.estimators_, rebuilt):
            assert np.array_equal(original._feature, copy._feature)
            assert original._threshold.tobytes() == (
                copy._threshold.tobytes()
            )
            assert np.array_equal(original._left, copy._left)
            assert np.array_equal(original._right, copy._right)
            assert original._proba.tobytes() == copy._proba.tobytes()
            assert np.array_equal(original.classes_, copy.classes_)

    def test_predict_matches_legacy_argmax(self):
        forest, X = _fit()
        compiled = forest.compile()
        legacy = forest.classes_[
            np.argmax(forest.legacy_predict_proba(X), axis=1)
        ]
        assert np.array_equal(compiled.predict(X), legacy)


class TestStrudelParity:
    """Parity on the real feature matrices the pipeline produces."""

    def test_line_and_cell_matrices(self, train_test_files):
        from repro.core.strudel import StrudelCellClassifier

        train, test = train_test_files
        model = StrudelCellClassifier(n_estimators=8, random_state=0)
        model.fit(train)
        for annotated in test[:2]:
            inference = model.line_classifier.infer(annotated.table)
            _assert_bit_identical(
                model.line_classifier._model,
                inference.features[:, model.line_classifier._columns],
            )
            _, features = model.extract_cells(
                annotated.table, inference.probabilities
            )
            _assert_bit_identical(
                model._model, features[:, model._columns]
            )
