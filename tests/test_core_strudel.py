"""Tests for the Strudel classifiers and pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strudel import (
    LineToCellBaseline,
    StrudelCellClassifier,
    StrudelLineClassifier,
    StrudelPipeline,
)
from repro.errors import InvalidParameterError, NotFittedError
from repro.io.writer import write_csv_text
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.types import CellClass, Table


@pytest.fixture(scope="module")
def fitted_line(train_test_files_module):
    train, _ = train_test_files_module
    return StrudelLineClassifier(n_estimators=15, random_state=0).fit(train)


@pytest.fixture(scope="module")
def train_test_files_module(tiny_corpus):
    files = tiny_corpus.files
    cut = max(1, int(0.8 * len(files)))
    return files[:cut], files[cut:]


class TestStrudelLine:
    def test_predict_before_fit_raises(self, verbose_table):
        with pytest.raises(NotFittedError):
            StrudelLineClassifier().predict(verbose_table)

    def test_probability_matrix_shape(self, fitted_line, verbose_table):
        proba = fitted_line.predict_proba(verbose_table)
        assert proba.shape == (verbose_table.n_rows, 6)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_empty_lines_predicted_empty(self, fitted_line, verbose_table):
        predictions = fitted_line.predict(verbose_table)
        assert predictions[1] is CellClass.EMPTY
        assert predictions[6] is CellClass.EMPTY

    def test_learns_obvious_structure(
        self, fitted_line, train_test_files_module
    ):
        _, test = train_test_files_module
        hits = total = 0
        for annotated in test:
            predictions = fitted_line.predict(annotated.table)
            for i in annotated.non_empty_line_indices():
                hits += predictions[i] is annotated.line_labels[i]
                total += 1
        assert hits / total > 0.8

    def test_feature_subset(self, train_test_files_module):
        train, _ = train_test_files_module
        model = StrudelLineClassifier(
            n_estimators=5,
            random_state=0,
            feature_subset=("empty_cell_ratio", "line_position"),
        ).fit(train)
        table = train[0].table
        assert model.predict_proba(table).shape == (table.n_rows, 6)

    def test_unknown_feature_subset_raises(self, train_test_files_module):
        train, _ = train_test_files_module
        model = StrudelLineClassifier(feature_subset=("nope",))
        with pytest.raises(InvalidParameterError):
            model.fit(train)

    def test_custom_backbone(self, train_test_files_module):
        train, _ = train_test_files_module
        model = StrudelLineClassifier(
            classifier_factory=GaussianNaiveBayes
        ).fit(train)
        assert isinstance(model._model, GaussianNaiveBayes)


class TestStrudelCell:
    def test_end_to_end(self, train_test_files_module):
        train, test = train_test_files_module
        model = StrudelCellClassifier(
            n_estimators=15, random_state=0
        ).fit(train)
        hits = total = 0
        for annotated in test:
            predictions = model.predict(annotated.table)
            for i, j, truth in annotated.non_empty_cell_items():
                hits += predictions[(i, j)] is truth
                total += 1
        assert hits / total > 0.8

    def test_prediction_covers_exactly_non_empty_cells(
        self, train_test_files_module, verbose_table
    ):
        train, _ = train_test_files_module
        model = StrudelCellClassifier(
            n_estimators=5, random_state=0
        ).fit(train)
        predictions = model.predict(verbose_table)
        expected = {
            (c.row, c.col) for c in verbose_table.non_empty_cells()
        }
        assert set(predictions) == expected

    def test_shares_prefitted_line_classifier(
        self, fitted_line, train_test_files_module
    ):
        train, _ = train_test_files_module
        model = StrudelCellClassifier(
            line_classifier=fitted_line, n_estimators=5, random_state=0
        )
        model.fit(train)
        assert model.line_classifier is fitted_line
        assert not model._line_fitted_here

    def test_predict_before_fit_raises(self, verbose_table):
        with pytest.raises(NotFittedError):
            StrudelCellClassifier().predict(verbose_table)


class TestLineToCellBaseline:
    def test_extends_line_labels(self, fitted_line, verbose_table):
        baseline = LineToCellBaseline(fitted_line)
        line_labels = fitted_line.predict(verbose_table)
        predictions = baseline.predict(verbose_table)
        for (i, j), klass in predictions.items():
            assert klass is line_labels[i]

    def test_fit_is_idempotent_on_fitted_classifier(self, fitted_line):
        baseline = LineToCellBaseline(fitted_line)
        model_before = fitted_line._model
        baseline.fit([])
        assert fitted_line._model is model_before


class TestPipeline:
    def test_analyze_text_end_to_end(self, train_test_files_module):
        train, test = train_test_files_module
        pipeline = StrudelPipeline(n_estimators=10, random_state=0)
        pipeline.fit(train)
        text = write_csv_text(test[0].table.rows())
        result = pipeline.analyze(text)
        assert result.dialect.delimiter == ","
        assert len(result.line_classes) == result.table.n_rows
        assert set(result.cell_classes) == {
            (c.row, c.col) for c in result.table.non_empty_cells()
        }

    def test_analyze_detects_semicolon_dialect(
        self, train_test_files_module
    ):
        train, test = train_test_files_module
        pipeline = StrudelPipeline(n_estimators=5, random_state=0)
        pipeline.fit(train)
        from repro.dialect.dialect import Dialect

        text = write_csv_text(
            test[0].table.rows(), Dialect(delimiter=";")
        )
        result = pipeline.analyze(text)
        assert result.dialect.delimiter == ";"

    def test_analyze_table_skips_dialect(self, train_test_files_module):
        train, _ = train_test_files_module
        pipeline = StrudelPipeline(n_estimators=5, random_state=0)
        pipeline.fit(train)
        table = Table([["Title", ""], ["a", "1"], ["b", "2"]])
        result = pipeline.analyze_table(table)
        assert len(result.line_classes) == 3
