"""End-to-end integration tests across modules.

These mirror the paper's pipeline at miniature scale: generate a
corpus, serialize files to CSV text with assorted dialects, run
dialect detection + parsing + cropping + both classifiers, and check
quality and consistency of the whole chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strudel import StrudelPipeline
from repro.dialect.dialect import Dialect
from repro.io.writer import write_csv_text
from repro.ml.metrics import accuracy_score
from repro.types import CellClass


@pytest.fixture(scope="module")
def pipeline(tiny_corpus):
    files = tiny_corpus.files
    cut = max(1, int(0.8 * len(files)))
    pipeline = StrudelPipeline(n_estimators=15, random_state=0)
    pipeline.fit(files[:cut])
    return pipeline, files[cut:]


class TestTextRoundTrip:
    @pytest.mark.parametrize(
        "dialect",
        [
            Dialect.standard(),
            Dialect(delimiter=";"),
            Dialect(delimiter="\t"),
            Dialect(delimiter="|", quotechar="'"),
        ],
        ids=["comma", "semicolon", "tab", "pipe"],
    )
    def test_pipeline_survives_any_dialect(self, pipeline, dialect):
        """Serialize a test file under each dialect; the pipeline must
        detect it and classify lines with reasonable accuracy."""
        model, test_files = pipeline
        annotated = test_files[0]
        text = write_csv_text(annotated.table.rows(), dialect)
        result = model.analyze(text)
        assert result.dialect.delimiter == dialect.delimiter
        assert result.table.shape == annotated.table.shape
        y_true, y_pred = [], []
        for i in annotated.non_empty_line_indices():
            y_true.append(annotated.line_labels[i])
            y_pred.append(result.line_classes[i])
        assert accuracy_score(y_true, y_pred) > 0.7

    def test_line_and_cell_predictions_are_consistent(self, pipeline):
        """Cells in confidently-data lines are predominantly data."""
        model, test_files = pipeline
        annotated = test_files[0]
        result = model.analyze_table(annotated.table)
        data_lines = [
            i
            for i, klass in enumerate(result.line_classes)
            if klass is CellClass.DATA
        ]
        matching = total = 0
        for (i, j), klass in result.cell_classes.items():
            if i in data_lines:
                total += 1
                matching += klass is CellClass.DATA
        assert total > 0
        assert matching / total > 0.7


class TestQualityFloor:
    def test_line_accuracy_floor(self, pipeline):
        model, test_files = pipeline
        hits = total = 0
        for annotated in test_files:
            predictions = model.line_classifier.predict(annotated.table)
            for i in annotated.non_empty_line_indices():
                hits += predictions[i] is annotated.line_labels[i]
                total += 1
        assert hits / total > 0.85

    def test_cell_accuracy_floor(self, pipeline):
        model, test_files = pipeline
        hits = total = 0
        for annotated in test_files:
            predictions = model.cell_classifier.predict(annotated.table)
            for i, j, truth in annotated.non_empty_cell_items():
                hits += predictions[(i, j)] is truth
                total += 1
        assert hits / total > 0.8

    def test_derived_is_the_hardest_class(self, pipeline):
        """The paper's consistent finding: derived lines score lowest
        while data lines remain reliably classified."""
        model, test_files = pipeline
        from repro.ml.metrics import f1_per_class
        from repro.types import CONTENT_CLASSES

        y_true, y_pred = [], []
        for annotated in test_files:
            predictions = model.line_classifier.predict(annotated.table)
            for i in annotated.non_empty_line_indices():
                y_true.append(annotated.line_labels[i])
                y_pred.append(predictions[i])
        scores = f1_per_class(y_true, y_pred, labels=CONTENT_CLASSES)
        assert scores[CellClass.DERIVED] == min(scores.values())
        assert scores[CellClass.DATA] > 0.85


class TestDeterminism:
    def test_full_pipeline_is_reproducible(self, tiny_corpus):
        files = tiny_corpus.files
        results = []
        for _ in range(2):
            pipeline = StrudelPipeline(n_estimators=8, random_state=7)
            pipeline.fit(files[:8])
            result = pipeline.analyze_table(files[8].table)
            results.append(result)
        assert results[0].line_classes == results[1].line_classes
        assert results[0].cell_classes == results[1].cell_classes
