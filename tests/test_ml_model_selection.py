"""Tests for grouped/repeated cross-validation splitters."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.ml.model_selection import (
    GroupKFold,
    RepeatedGroupKFold,
    train_test_group_split,
)


class TestGroupKFold:
    def test_folds_partition_groups(self):
        groups = [f"g{i}" for i in range(10)]
        seen_test = set()
        for train, test in GroupKFold(n_splits=5, random_state=0).split(
            groups
        ):
            assert train.isdisjoint(test)
            assert train | test == set(groups)
            seen_test |= test
        assert seen_test == set(groups)

    def test_duplicate_group_entries_handled(self):
        groups = ["a", "a", "b", "b", "c", "d"]
        folds = list(GroupKFold(n_splits=2, random_state=0).split(groups))
        assert len(folds) == 2

    def test_too_few_groups_raises(self):
        with pytest.raises(InvalidParameterError):
            list(GroupKFold(n_splits=5).split(["a", "b"]))

    def test_seed_determinism(self):
        groups = [f"g{i}" for i in range(9)]
        a = list(GroupKFold(n_splits=3, random_state=1).split(groups))
        b = list(GroupKFold(n_splits=3, random_state=1).split(groups))
        assert a == b

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            GroupKFold(n_splits=1)


class TestRepeatedGroupKFold:
    def test_yields_repeat_indices(self):
        groups = [f"g{i}" for i in range(6)]
        splitter = RepeatedGroupKFold(
            n_splits=3, n_repeats=2, random_state=0
        )
        repetitions = [rep for rep, _, _ in splitter.split(groups)]
        assert repetitions == [0, 0, 0, 1, 1, 1]

    def test_repetitions_differ(self):
        groups = [f"g{i}" for i in range(12)]
        splitter = RepeatedGroupKFold(
            n_splits=3, n_repeats=2, random_state=0
        )
        folds = list(splitter.split(groups))
        first = [test for rep, _, test in folds if rep == 0]
        second = [test for rep, _, test in folds if rep == 1]
        assert first != second

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RepeatedGroupKFold(n_repeats=0)


class TestTrainTestSplit:
    def test_split_is_partition(self):
        groups = [f"g{i}" for i in range(10)]
        train, test = train_test_group_split(groups, 0.3, random_state=0)
        assert train.isdisjoint(test)
        assert train | test == set(groups)
        assert len(test) == 3

    def test_always_leaves_training_groups(self):
        train, test = train_test_group_split(["a", "b"], 0.9, random_state=0)
        assert len(train) >= 1
        assert len(test) >= 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            train_test_group_split(["a", "b"], 0.0)
        with pytest.raises(InvalidParameterError):
            train_test_group_split(["a"], 0.5)


@given(
    n_groups=st.integers(4, 30),
    n_splits=st.integers(2, 4),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_every_group_tested_exactly_once(n_groups, n_splits, seed):
    groups = [f"g{i}" for i in range(n_groups)]
    tested: list[str] = []
    for _, test in GroupKFold(n_splits=n_splits, random_state=seed).split(
        groups
    ):
        tested.extend(test)
    assert sorted(tested) == sorted(groups)
