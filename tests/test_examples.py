"""Smoke tests: every example script must run to completion.

Marked ``slow`` — each example trains a small model.  They execute in
a subprocess exactly as a user would run them.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.slow
@pytest.mark.parametrize(
    "script", _EXAMPLES, ids=[p.stem for p in _EXAMPLES]
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their results"


def test_all_examples_discovered():
    names = {p.stem for p in _EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3, "the paper repo ships at least three examples"
