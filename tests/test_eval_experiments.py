"""Smoke tests for the per-table experiment functions.

These run every experiment at a micro scale so defects in the harness
surface in seconds; the full-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import (
    ExperimentConfig,
    anchor_mode_ablation,
    cell_comparison,
    cell_confusion,
    class_distribution,
    classifier_ablation,
    dataset_summary,
    derived_parameter_sweep,
    diversity_table,
    feature_group_ablation,
    line_comparison,
    line_confusion,
    line_feature_importance,
    out_of_domain,
    plain_text,
)
from repro.types import CellClass


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(
        scale=0.025,
        n_splits=2,
        n_repeats=1,
        n_estimators=5,
        crf_max_iter=15,
        rnn_epochs=2,
        seed=0,
        mendeley_scale=0.03,
    )


class TestCorpusCaching:
    def test_corpus_is_cached(self, config):
        assert config.corpus("saus") is config.corpus("saus")

    def test_merged_transfer_train(self, config):
        merged = config.merged_transfer_train()
        assert merged.name == "saus+cius+deex"
        assert len(merged) == (
            len(config.corpus("saus"))
            + len(config.corpus("cius"))
            + len(config.corpus("deex"))
        )


class TestDescriptiveTables:
    def test_diversity_table(self, config):
        table = diversity_table(config)
        for dataset, shares in table.items():
            assert set(shares) == {1, 2, 3, 4, 5}
            assert sum(shares.values()) == pytest.approx(100.0)
            # Degree 1 dominates, as in the paper's Table 3.
            assert shares[1] > 50.0

    def test_dataset_summary(self, config):
        summary = dataset_summary(config)
        assert set(summary) == {
            "govuk", "saus", "cius", "deex", "mendeley", "troy",
        }
        for files, lines, cells in summary.values():
            assert files >= 2
            assert cells >= lines

    def test_class_distribution(self, config):
        distribution = class_distribution(config)
        assert set(distribution) == {
            "metadata", "header", "group", "data", "derived", "notes",
        }
        # Data dominates; derived lines are wide (cells per line).
        assert distribution["data"][0] > distribution["derived"][0]
        assert distribution["derived"][2] > distribution["metadata"][2]


class TestComparisons:
    def test_line_comparison_structure(self, config):
        results = line_comparison(config, datasets=("saus",))
        assert set(results["saus"]) == {"CRF-L", "Pytheas-L", "Strudel-L"}
        pytheas = results["saus"]["Pytheas-L"]
        assert CellClass.DERIVED not in pytheas.scores.per_class_f1
        strudel = results["saus"]["Strudel-L"]
        assert strudel.scores.accuracy > 0.6

    def test_cell_comparison_structure(self, config):
        results = cell_comparison(config, datasets=("saus",))
        assert set(results["saus"]) == {"Line-C", "RNN-C", "Strudel-C"}
        assert results["saus"]["Strudel-C"].scores.accuracy > 0.6


class TestTransfers:
    def test_out_of_domain(self, config):
        scores = out_of_domain(config)
        assert set(scores) == {"Strudel-L", "Strudel-C"}
        assert scores["Strudel-L"].accuracy > 0.5

    def test_plain_text(self, config):
        scores = plain_text(config)
        # Mendeley is data-dominated: data F1 should be very high.
        assert scores["Strudel-L"].per_class_f1[CellClass.DATA] > 0.9


class TestConfusions:
    def test_line_confusion(self, config):
        matrices = line_confusion(config, datasets=("saus",))
        assert matrices["saus"].shape == (6, 6)

    def test_cell_confusion(self, config):
        matrices = cell_confusion(config, datasets=("saus",))
        assert matrices["saus"].shape == (6, 6)


class TestImportanceAndAblations:
    def test_line_feature_importance(self, config):
        shares = line_feature_importance(config)
        assert "data" in shares
        for class_shares in shares.values():
            assert sum(class_shares.values()) == pytest.approx(1.0)

    def test_classifier_ablation(self, config):
        results = classifier_ablation(config)
        assert set(results) == {
            "random_forest", "naive_bayes", "knn", "svm",
        }

    def test_derived_parameter_sweep(self, config):
        sweep = derived_parameter_sweep(
            config, deltas=(0.1,), coverages=(0.5,)
        )
        assert (0.1, 0.5) in sweep

    def test_anchor_mode_ablation(self, config):
        results = anchor_mode_ablation(config)
        assert set(results) == {"keyword", "exhaustive"}

    def test_feature_group_ablation(self, config):
        results = feature_group_ablation(config)
        assert set(results) == {
            "all", "without_content", "without_contextual",
            "without_computational",
        }


class TestConfigFromEnv:
    def test_defaults(self, monkeypatch):
        for variable in (
            "REPRO_SCALE", "REPRO_SPLITS", "REPRO_REPEATS", "REPRO_TREES",
        ):
            monkeypatch.delenv(variable, raising=False)
        config = ExperimentConfig.from_env()
        assert config.scale == 0.08
        assert config.n_splits == 3

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        monkeypatch.setenv("REPRO_TREES", "77")
        config = ExperimentConfig.from_env()
        assert config.scale == 0.5
        assert config.n_estimators == 77
