"""Tests for the Table 1 line feature extractor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.line_features import (
    GLOBAL_FEATURE_NAMES,
    LINE_FEATURE_GROUPS,
    LINE_FEATURE_NAMES,
    LineFeatureExtractor,
)
from repro.types import Table

FEATURE_INDEX = {name: i for i, name in enumerate(LINE_FEATURE_NAMES)}


@pytest.fixture
def features(verbose_table):
    return LineFeatureExtractor().extract(verbose_table)


def value(features, row, name):
    return features[row, FEATURE_INDEX[name]]


class TestShape:
    def test_one_row_per_line(self, verbose_table, features):
        assert features.shape == (
            verbose_table.n_rows, len(LINE_FEATURE_NAMES)
        )

    def test_all_features_in_unit_interval(self, features):
        assert features.min() >= 0.0
        assert features.max() <= 1.0 + 1e-9

    def test_feature_names_partition_into_groups(self):
        grouped = [
            name
            for members in LINE_FEATURE_GROUPS.values()
            for name in members
        ]
        assert sorted(grouped) == sorted(LINE_FEATURE_NAMES)


class TestContentFeatures:
    def test_empty_cell_ratio(self, features):
        # Metadata line: 1 of 4 cells filled.
        assert value(features, 0, "empty_cell_ratio") == pytest.approx(0.75)
        # Data line: all 4 filled.
        assert value(features, 3, "empty_cell_ratio") == 0.0

    def test_dcg_prefers_left_content(self):
        table = Table([["x", "", ""], ["", "", "x"]])
        features = LineFeatureExtractor().extract(table)
        left = value(features, 0, "discounted_cumulative_gain")
        right = value(features, 1, "discounted_cumulative_gain")
        assert left > right

    def test_aggregation_word(self, features):
        assert value(features, 5, "aggregation_word") == 1.0  # Total row
        assert value(features, 3, "aggregation_word") == 0.0

    def test_word_amount_is_minmax_normalized(self, features):
        column = features[:, FEATURE_INDEX["word_amount"]]
        assert column.min() == 0.0
        assert column.max() == pytest.approx(1.0)

    def test_numerical_and_string_ratios(self, features):
        # Data line "Alabama,10,20,30": 3/4 numeric, 1/4 string.
        assert value(features, 3, "numerical_cell_ratio") == pytest.approx(
            0.75
        )
        assert value(features, 3, "string_cell_ratio") == pytest.approx(0.25)
        # Header "State,2019,2020,2021": years type as ints.
        assert value(features, 2, "numerical_cell_ratio") == pytest.approx(
            0.75
        )

    def test_line_position(self, features, verbose_table):
        assert value(features, 0, "line_position") == 0.0
        last = verbose_table.n_rows - 1
        assert value(features, last, "line_position") == 1.0


class TestContextualFeatures:
    def test_data_type_matching_skips_empty_lines(self, features):
        # The notes line (7) has an empty line above (6); its closest
        # non-empty neighbour above is the Total line (5), col 0 both
        # strings, other cols numeric-vs-empty -> 1/4 match.
        assert value(features, 7, "data_type_matching_above") == (
            pytest.approx(0.25)
        )

    def test_data_type_matching_boundary_is_zero(self, features):
        assert value(features, 0, "data_type_matching_above") == 0.0

    def test_adjacent_data_lines_match_fully(self, features):
        assert value(features, 4, "data_type_matching_above") == (
            pytest.approx(1.0)
        )

    def test_empty_neighboring_lines(self, features):
        # Line 0 has no lines above: all 5 window slots count empty.
        assert value(features, 0, "empty_neighboring_lines_above") == 1.0
        # Line 3 has lines 2,1,0 above plus 2 out-of-file: lines 1 is
        # empty, line 2 and 0 are not -> (1 + 2) / 5.
        assert value(features, 3, "empty_neighboring_lines_above") == (
            pytest.approx(3 / 5)
        )

    def test_cell_length_difference_boundary_is_one(self, features):
        assert value(features, 0, "cell_length_difference_above") == 1.0

    def test_similar_data_lines_have_low_length_difference(self, features):
        assert value(features, 4, "cell_length_difference_above") < 0.5


class TestComputationalFeature:
    def test_derived_coverage_on_total_line(self, features):
        assert value(features, 5, "derived_coverage") == pytest.approx(1.0)

    def test_derived_coverage_zero_for_data(self, features):
        assert value(features, 3, "derived_coverage") == 0.0


class TestGlobalFeatures:
    def test_global_features_appended_when_enabled(self, verbose_table):
        extractor = LineFeatureExtractor(include_global_features=True)
        features = extractor.extract(verbose_table)
        assert features.shape[1] == (
            len(LINE_FEATURE_NAMES) + len(GLOBAL_FEATURE_NAMES)
        )
        # Global features are constant across lines of one file.
        tail = features[:, len(LINE_FEATURE_NAMES):]
        assert np.allclose(tail, tail[0])

    def test_feature_names_property(self):
        plain = LineFeatureExtractor()
        assert plain.feature_names == LINE_FEATURE_NAMES
        extended = LineFeatureExtractor(include_global_features=True)
        assert extended.feature_names == (
            LINE_FEATURE_NAMES + GLOBAL_FEATURE_NAMES
        )


class TestEdgeCases:
    def test_single_line_table(self):
        features = LineFeatureExtractor().extract(Table([["a", "1"]]))
        assert features.shape[0] == 1
        assert np.isfinite(features).all()

    def test_fully_empty_table(self):
        features = LineFeatureExtractor().extract(Table([["", ""]]))
        assert np.isfinite(features).all()
