"""Tests for pickle-free model persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.strudel import StrudelCellClassifier, StrudelLineClassifier
from repro.errors import NotFittedError
from repro.ml.forest import RandomForestClassifier
from repro.ml.persistence import (
    PersistenceError,
    load_cell_classifier,
    load_forest,
    load_line_classifier,
    save_cell_classifier,
    save_forest,
    save_line_classifier,
)


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] > 0).astype(int) + (X[:, 1] > 1)
    return X, y


class TestForestPersistence:
    def test_round_trip_predictions_identical(self, tmp_path, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=7, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        restored = load_forest(tmp_path / "model")
        assert np.allclose(
            forest.predict_proba(X), restored.predict_proba(X)
        )
        assert np.array_equal(forest.classes_, restored.classes_)

    def test_round_trip_is_byte_identical(self, tmp_path, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=7, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        restored = load_forest(tmp_path / "model")
        assert restored.predict_proba(X).tobytes() == (
            forest.predict_proba(X).tobytes()
        )

    def test_version_2_bundle_is_predict_ready(
        self, tmp_path, training_data
    ):
        # A v2 load hands the tensors straight to CompiledForest: no
        # compile pass should run on first predict.
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=5, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        manifest = json.loads(
            (tmp_path / "model" / "manifest.json").read_text()
        )
        assert manifest["format_version"] == 2
        restored = load_forest(tmp_path / "model")
        assert restored._compiled is not None
        # estimators_ are decompiled back, so the legacy path and
        # feature importances still work on a loaded model.
        assert len(restored.estimators_) == 5
        assert restored.legacy_predict_proba(X).tobytes() == (
            forest.legacy_predict_proba(X).tobytes()
        )

    def test_version_1_bundle_still_loads(self, tmp_path, training_data):
        # Hand-write the old per-tree array layout with a version-1
        # manifest: it must load and predict identically, compiling
        # lazily on first predict.
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=3, random_state=0
        ).fit(X, y)
        directory = tmp_path / "legacy"
        directory.mkdir()
        arrays = {"classes": forest.classes_}
        for index, tree in enumerate(forest.estimators_):
            prefix = f"tree{index}_"
            arrays[f"{prefix}feature"] = tree._feature
            arrays[f"{prefix}threshold"] = tree._threshold
            arrays[f"{prefix}left"] = tree._left
            arrays[f"{prefix}right"] = tree._right
            arrays[f"{prefix}proba"] = tree._proba
            arrays[f"{prefix}classes"] = tree.classes_
        np.savez_compressed(directory / "arrays.npz", **arrays)
        manifest = {
            "format_version": 1,
            "kind": "random_forest",
            "n_estimators": 3,
            "n_features": forest.n_features_,
            "params": {
                "max_depth": None,
                "min_samples_split": 2,
                "min_samples_leaf": 1,
                "max_features": "sqrt",
                "bootstrap": True,
            },
        }
        (directory / "manifest.json").write_text(json.dumps(manifest))
        restored = load_forest(directory)
        assert restored._compiled is None  # compiles on first predict
        assert restored.predict_proba(X).tobytes() == (
            forest.predict_proba(X).tobytes()
        )

    def test_version_2_missing_array_rejected(
        self, tmp_path, training_data
    ):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=2, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        archive = tmp_path / "model" / "arrays.npz"
        arrays = dict(np.load(archive, allow_pickle=False))
        del arrays["roots"]
        np.savez_compressed(archive, **arrays)
        with pytest.raises(PersistenceError, match="missing"):
            load_forest(tmp_path / "model")

    def test_tree_count_mismatch_rejected(self, tmp_path, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=2, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        manifest_path = tmp_path / "model" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["n_estimators"] = 5
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError, match="tensors pack"):
            load_forest(tmp_path / "model")

    def test_unfitted_forest_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_forest(RandomForestClassifier(), tmp_path / "x")

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_forest(tmp_path / "nothing")

    def test_kind_mismatch_rejected(self, tmp_path, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=2, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        with pytest.raises(PersistenceError):
            load_line_classifier(tmp_path / "model")

    def test_bad_version_rejected(self, tmp_path, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=2, random_state=0
        ).fit(X, y)
        save_forest(forest, tmp_path / "model")
        manifest_path = tmp_path / "model" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(PersistenceError):
            load_forest(tmp_path / "model")


class TestStrudelPersistence:
    def test_line_classifier_round_trip(self, tmp_path, train_test_files):
        train, test = train_test_files
        model = StrudelLineClassifier(n_estimators=6, random_state=0)
        model.fit(train)
        save_line_classifier(model, tmp_path / "line")
        restored = load_line_classifier(tmp_path / "line")
        for annotated in test[:2]:
            assert np.allclose(
                model.predict_proba(annotated.table),
                restored.predict_proba(annotated.table),
            )
            assert model.predict(annotated.table) == restored.predict(
                annotated.table
            )

    def test_cell_classifier_round_trip(self, tmp_path, train_test_files):
        train, test = train_test_files
        model = StrudelCellClassifier(n_estimators=6, random_state=0)
        model.fit(train)
        save_cell_classifier(model, tmp_path / "cell")
        restored = load_cell_classifier(tmp_path / "cell")
        annotated = test[0]
        assert model.predict(annotated.table) == restored.predict(
            annotated.table
        )

    def test_feature_subset_survives(self, tmp_path, train_test_files):
        train, _ = train_test_files
        subset = ("empty_cell_ratio", "line_position", "derived_coverage")
        model = StrudelLineClassifier(
            n_estimators=4, random_state=0, feature_subset=subset
        )
        model.fit(train)
        save_line_classifier(model, tmp_path / "line")
        restored = load_line_classifier(tmp_path / "line")
        assert restored.feature_subset == subset

    def test_detector_config_survives(self, tmp_path, train_test_files):
        from repro.core.derived import DerivedDetector
        from repro.core.line_features import LineFeatureExtractor

        train, _ = train_test_files
        detector = DerivedDetector(delta=0.5, coverage=0.8,
                                   anchor_mode="exhaustive")
        model = StrudelLineClassifier(
            extractor=LineFeatureExtractor(detector=detector),
            n_estimators=4,
            random_state=0,
        )
        model.fit(train)
        save_line_classifier(model, tmp_path / "line")
        restored = load_line_classifier(tmp_path / "line")
        assert restored.extractor.detector.delta == 0.5
        assert restored.extractor.detector.anchor_mode == "exhaustive"

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_line_classifier(StrudelLineClassifier(), tmp_path / "x")
        with pytest.raises(NotFittedError):
            save_cell_classifier(StrudelCellClassifier(), tmp_path / "x")
