"""Tests for classification metrics (:mod:`repro.ml.metrics`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_per_class,
    macro_f1,
    support_per_class,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2], [1, 2]) == 1.0

    def test_partial(self):
        assert accuracy_score([1, 2, 3, 4], [1, 2, 0, 0]) == 0.5

    def test_empty(self):
        assert accuracy_score([], []) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            accuracy_score([1], [1, 2])


class TestF1:
    def test_perfect_f1(self):
        scores = f1_per_class(["a", "b"], ["a", "b"])
        assert scores == {"a": 1.0, "b": 1.0}

    def test_known_value(self):
        # class "a": tp=1, fp=1, fn=1 -> F1 = 2/4 = 0.5
        y_true = ["a", "a", "b"]
        y_pred = ["a", "b", "a"]
        scores = f1_per_class(y_true, y_pred)
        assert scores["a"] == pytest.approx(0.5)

    def test_absent_class_scores_zero(self):
        scores = f1_per_class(["a"], ["a"], labels=["a", "b"])
        assert scores["b"] == 0.0

    def test_macro_is_unweighted_mean(self):
        y_true = ["a"] * 99 + ["b"]
        y_pred = ["a"] * 99 + ["a"]
        # class a: F1 ~ 0.995; class b: 0 -> macro ~ 0.497, far from
        # the support-weighted value (~0.985).
        macro = macro_f1(y_true, y_pred, labels=["a", "b"])
        assert macro == pytest.approx(
            (f1_per_class(y_true, y_pred)["a"] + 0.0) / 2
        )

    def test_macro_empty_labels(self):
        assert macro_f1([], [], labels=[]) == 0.0


class TestConfusion:
    def test_counts(self):
        matrix = confusion_matrix(
            ["a", "a", "b"], ["a", "b", "b"], labels=["a", "b"]
        )
        assert matrix.tolist() == [[1.0, 1.0], [0.0, 1.0]]

    def test_normalized_rows_sum_to_one(self):
        matrix = confusion_matrix(
            ["a", "a", "b", "b", "b"],
            ["a", "b", "b", "b", "a"],
            labels=["a", "b"],
            normalize=True,
        )
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_absent_class_row_stays_zero(self):
        matrix = confusion_matrix(
            ["a"], ["a"], labels=["a", "b"], normalize=True
        )
        assert matrix[1].sum() == 0.0

    def test_unknown_labels_ignored(self):
        matrix = confusion_matrix(["a", "z"], ["a", "z"], labels=["a"])
        assert matrix.tolist() == [[1.0]]


class TestSupport:
    def test_counts(self):
        support = support_per_class(["a", "a", "b"], labels=["a", "b", "c"])
        assert support == {"a": 2, "b": 1, "c": 0}


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
_LABELS = st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=30)


@given(y_true=_LABELS)
@settings(max_examples=60, deadline=None)
def test_self_prediction_is_perfect(y_true):
    assert accuracy_score(y_true, y_true) == 1.0
    assert macro_f1(y_true, y_true, labels=sorted(set(y_true))) == 1.0


@given(y_true=_LABELS, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_f1_bounded(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = [str(v) for v in rng.choice(["x", "y", "z"], len(y_true))]
    for score in f1_per_class(y_true, y_pred).values():
        assert 0.0 <= score <= 1.0


@given(y_true=_LABELS, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_confusion_total_equals_sample_count(y_true, seed):
    rng = np.random.default_rng(seed)
    y_pred = [str(v) for v in rng.choice(["x", "y", "z"], len(y_true))]
    matrix = confusion_matrix(y_true, y_pred, labels=["x", "y", "z"])
    assert matrix.sum() == len(y_true)
