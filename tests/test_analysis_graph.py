"""Unit tests for the whole-program model (graph) and raise flow."""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.flow import EscapeAnalysis, PUBLIC_ENTRY_POINTS
from repro.analysis.graph import ProjectGraph
from repro.analysis.runner import ModuleInfo, iter_python_files, load_module

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def build(sources: dict[str, str]) -> ProjectGraph:
    modules = [
        ModuleInfo(
            path=Path(f"<{name}>"),
            module=name,
            source=source,
            tree=ast.parse(source),
        )
        for name, source in sorted(sources.items())
    ]
    return ProjectGraph.build(modules)


def callees(graph: ProjectGraph, qualname: str) -> set[str]:
    return {site.callee for site in graph.calls_from(qualname)}


class TestSymbols:
    def test_functions_classes_and_imports_indexed(self):
        graph = build({
            "pkg.a": "def f():\n    pass\n\nclass C:\n    def m(self):\n        pass\n",
            "pkg.b": "from pkg.a import f as g\n",
        })
        assert "pkg.a.f" in graph.functions
        assert "pkg.a.C" in graph.classes
        assert "pkg.a.C.m" in graph.functions
        assert graph.modules["pkg.b"].imports["g"] == "pkg.a.f"

    def test_canonical_name_follows_reexport(self):
        graph = build({
            "pkg.impl": "def work():\n    pass\n",
            "pkg": "from pkg.impl import work\n",
            "pkg.user": "from pkg import work\n",
        })
        table = graph.modules["pkg.user"]
        assert graph.canonical_name(table, "work") == "pkg.impl.work"


class TestCallGraph:
    def test_direct_and_method_calls(self):
        graph = build({
            "m": (
                "class C:\n"
                "    def run(self):\n"
                "        return 1\n"
                "\n"
                "def helper():\n"
                "    pass\n"
                "\n"
                "def main():\n"
                "    helper()\n"
                "    c = C()\n"
                "    c.run()\n"
            ),
        })
        assert callees(graph, "m.main") == {"m.helper", "m.C.run"}
        quals = [s.class_qualname for s in graph.instantiations_in("m.main")]
        assert quals == ["m.C"]

    def test_annotation_binds_parameter_to_instance(self):
        graph = build({
            "m": (
                "class C:\n"
                "    def run(self):\n"
                "        pass\n"
                "\n"
                "def use(c: C):\n"
                "    c.run()\n"
            ),
        })
        assert "m.C.run" in callees(graph, "m.use")

    def test_dict_dispatch_resolves(self):
        graph = build({
            "m": (
                "def fa():\n    pass\n"
                "def fb():\n    pass\n"
                "def main(key):\n"
                "    handlers = {'a': fa, 'b': fb}\n"
                "    handlers[key]()\n"
            ),
        })
        assert callees(graph, "m.main") == {"m.fa", "m.fb"}

    def test_factory_registration_indirection(self):
        # The composition-root pattern: a registrar writes a class into
        # a module global through `global`, and a method instantiates
        # whatever was registered.  The call edge from use() to the
        # registered class's method must resolve.
        graph = build({
            "pkg.core": (
                "_factory = None\n"
                "\n"
                "def set_factory(factory):\n"
                "    global _factory\n"
                "    _factory = factory\n"
                "\n"
                "class Estimator:\n"
                "    def use(self):\n"
                "        model = _factory()\n"
                "        model.fit()\n"
            ),
            "pkg.ml": "class Forest:\n    def fit(self):\n        pass\n",
            "pkg": (
                "from pkg.core import set_factory\n"
                "from pkg.ml import Forest\n"
                "set_factory(Forest)\n"
            ),
        })
        assert graph.registries["pkg.core._factory"] == {
            ("class", "pkg.ml.Forest")
        }
        assert "pkg.ml.Forest.fit" in callees(graph, "pkg.core.Estimator.use")

    def test_reachable_from_skips_boundary_modules(self):
        graph = build({
            "pkg.gate": "def inner():\n    deep()\n\ndef deep():\n    pass\n",
            "pkg.outer": (
                "from pkg.gate import inner\n"
                "def entry():\n    inner()\n"
            ),
        })
        full = graph.reachable_from("pkg.outer.entry")
        assert "pkg.gate.deep" in full
        gated = graph.reachable_from(
            "pkg.outer.entry", skip_module_prefixes=("pkg.gate",)
        )
        assert "pkg.gate.inner" in gated  # the boundary itself is listed
        assert "pkg.gate.deep" not in gated  # but not descended into


class TestRealTree:
    """The model holds on the shipped package, not just fixtures."""

    @pytest.fixture(scope="class")
    def graph(self) -> ProjectGraph:
        modules = [load_module(p) for p in iter_python_files([SRC])]
        return ProjectGraph.build(modules)

    def test_factory_chain_pins_forest_fit(self, graph):
        # The load-bearing indirection: repro/__init__.py registers the
        # random forest as the default Strudel classifier factory, so
        # StrudelLineClassifier.fit must resolve a call edge into
        # RandomForestClassifier.fit without core importing ml.
        registered = graph.registries[
            "repro.core.strudel._default_classifier_factory"
        ]
        assert ("class", "repro.ml.forest.RandomForestClassifier") in registered
        assert "repro.ml.forest.RandomForestClassifier.fit" in callees(
            graph, "repro.core.strudel.StrudelLineClassifier.fit"
        )

    def test_public_entry_points_exist(self, graph):
        missing = [
            q for q in PUBLIC_ENTRY_POINTS if q not in graph.functions
        ]
        assert missing == []

    def test_cli_dispatch_reaches_handlers(self, graph):
        reach = graph.reachable_from("repro.cli.main")
        assert "repro.cli._cmd_lint" in reach
        assert "repro.cli._cmd_bench" in reach


class TestEscapeAnalysis:
    def test_raise_propagates_to_caller(self):
        graph = build({
            "m": (
                "def inner():\n"
                "    raise ValueError('boom')\n"
                "def outer():\n"
                "    inner()\n"
            ),
        })
        escaping = EscapeAnalysis(graph).escaping("m.outer")
        assert "builtins.ValueError" in escaping
        origins = escaping["builtins.ValueError"]
        assert {o.line for o in origins} == {2}

    def test_handler_stops_propagation(self):
        graph = build({
            "m": (
                "def inner():\n"
                "    raise ValueError('boom')\n"
                "def outer():\n"
                "    try:\n"
                "        inner()\n"
                "    except ValueError:\n"
                "        pass\n"
            ),
        })
        assert EscapeAnalysis(graph).escaping("m.outer") == {}

    def test_builtin_hierarchy_catches_subclass(self):
        graph = build({
            "m": (
                "def outer():\n"
                "    try:\n"
                "        raise KeyError('k')\n"
                "    except LookupError:\n"
                "        pass\n"
            ),
        })
        assert EscapeAnalysis(graph).escaping("m.outer") == {}

    def test_project_hierarchy_catches_subclass(self):
        graph = build({
            "m": (
                "class Base(Exception):\n    pass\n"
                "class Child(Base):\n    pass\n"
                "def inner():\n"
                "    raise Child('x')\n"
                "def outer():\n"
                "    try:\n"
                "        inner()\n"
                "    except Base:\n"
                "        pass\n"
            ),
        })
        assert EscapeAnalysis(graph).escaping("m.outer") == {}

    def test_wrong_handler_does_not_catch(self):
        graph = build({
            "m": (
                "def outer():\n"
                "    try:\n"
                "        raise ValueError('v')\n"
                "    except KeyError:\n"
                "        pass\n"
            ),
        })
        escaping = EscapeAnalysis(graph).escaping("m.outer")
        assert "builtins.ValueError" in escaping

    def test_bare_except_is_catch_all(self):
        graph = build({
            "m": (
                "def outer():\n"
                "    try:\n"
                "        raise ValueError('v')\n"
                "    except Exception:\n"
                "        pass\n"
            ),
        })
        assert EscapeAnalysis(graph).escaping("m.outer") == {}

    def test_handler_body_raises_escape(self):
        graph = build({
            "m": (
                "def outer():\n"
                "    try:\n"
                "        raise ValueError('v')\n"
                "    except ValueError:\n"
                "        raise KeyError('k')\n"
            ),
        })
        escaping = EscapeAnalysis(graph).escaping("m.outer")
        assert set(escaping) == {"builtins.KeyError"}
