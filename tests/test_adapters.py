"""Tests for the source-adapter layer (:mod:`repro.io.adapters`)."""

from __future__ import annotations

import io
import tarfile
import zipfile

import pytest

from repro.core.strudel import StrudelPipeline
from repro.errors import AdapterError, IngestError, ReproError
from repro.io.adapters import (
    CONTAINER_SUFFIXES,
    MAX_CONTAINER_DEPTH,
    SOURCE_SUFFIXES,
    DirectoryAdapter,
    FileAdapter,
    SourceAdapter,
    SourcePayload,
    adapter_for,
    is_container_name,
    iter_ndjson_payloads,
    iter_source,
    iter_xml_payloads,
    iter_zip_payloads,
    join_provenance,
    payloads_from_bytes,
    read_source,
    split_provenance,
    suffix_matches,
)
from repro.io.ingest import IngestPolicy, ingest_bytes
from repro.io.writer import write_csv_text
from repro.perf.engine import CorpusEngine, FileResult

ROWS = "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n"


def _zip_bytes(members: dict[str, bytes]) -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        for name, data in members.items():
            archive.writestr(zipfile.ZipInfo(name), data)
    return buffer.getvalue()


def _tar_bytes(members: dict[str, bytes]) -> bytes:
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as archive:
        for name, data in members.items():
            info = tarfile.TarInfo(name)
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
    return buffer.getvalue()


class TestProvenanceHelpers:
    def test_join_and_split_roundtrip(self):
        locator = join_provenance("lake/arch.zip", "sub/a.csv")
        assert locator == "lake/arch.zip!sub/a.csv"
        assert split_provenance(locator) == ("lake/arch.zip", "sub/a.csv")

    def test_split_plain_path(self):
        assert split_provenance("lake/a.csv") == ("lake/a.csv", None)

    def test_split_keeps_nested_member_whole(self):
        # Only the first separator splits: the member part of a nested
        # locator is itself a locator.
        container, member = split_provenance("a.zip!inner.zip!b.csv")
        assert container == "a.zip"
        assert member == "inner.zip!b.csv"

    def test_suffix_matching_is_case_insensitive(self):
        assert suffix_matches("DATA.CSV", (".csv",))
        assert suffix_matches("dump.Tar.GZ", (".tar.gz",))
        assert not suffix_matches("notes.txt", SOURCE_SUFFIXES)

    def test_container_names(self):
        assert is_container_name("arch.zip")
        assert is_container_name("log.NDJSON")
        assert not is_container_name("table.csv")
        for suffix in CONTAINER_SUFFIXES:
            assert is_container_name(f"x{suffix}")


class TestDirectoryAdapter:
    def test_recursive_mixed_case_crawl(self, tmp_path):
        (tmp_path / "sub" / "deep").mkdir(parents=True)
        (tmp_path / "a.csv").write_text(ROWS, encoding="utf-8")
        (tmp_path / "sub" / "B.CSV").write_text(ROWS, encoding="utf-8")
        (tmp_path / "sub" / "deep" / "c.tsv").write_text(
            ROWS.replace(",", "\t"), encoding="utf-8"
        )
        (tmp_path / "sub" / "ignored.txt").write_text("x")
        adapter = DirectoryAdapter(tmp_path, IngestPolicy())
        payloads = list(adapter.iterate())
        names = [p.source_id for p in payloads]
        assert names == ["a.csv", "B.CSV", "c.tsv"]
        assert adapter.skipped == []

    def test_enumeration_is_deterministic(self, tmp_path):
        for name in ("z.csv", "a.csv", "m.csv"):
            (tmp_path / name).write_text(ROWS, encoding="utf-8")
        first = [p.provenance for p in iter_source(tmp_path)]
        second = [p.provenance for p in iter_source(tmp_path)]
        assert first == second == sorted(first)

    def test_damaged_container_is_skipped_not_fatal(self, tmp_path):
        (tmp_path / "good.csv").write_text(ROWS, encoding="utf-8")
        (tmp_path / "broken.zip").write_bytes(b"PK\x03\x04 not a zip")
        adapter = DirectoryAdapter(tmp_path, IngestPolicy())
        payloads = list(adapter.iterate())
        assert [p.source_id for p in payloads] == ["good.csv"]
        assert len(adapter.skipped) == 1
        assert "broken.zip" in adapter.skipped[0][0]

    def test_non_directory_raises_typed(self, tmp_path):
        adapter = DirectoryAdapter(tmp_path / "missing", IngestPolicy())
        with pytest.raises(AdapterError):
            list(adapter.iterate())

    def test_adapter_for_selects_by_path_kind(self, tmp_path):
        (tmp_path / "a.csv").write_text(ROWS, encoding="utf-8")
        assert isinstance(adapter_for(tmp_path), DirectoryAdapter)
        file_adapter = adapter_for(tmp_path / "a.csv")
        assert isinstance(file_adapter, FileAdapter)
        assert isinstance(file_adapter, SourceAdapter)

    def test_file_adapter_propagates_container_damage(self, tmp_path):
        # An explicitly named broken container is an error, unlike the
        # lake crawl which records it and moves on.
        broken = tmp_path / "broken.zip"
        broken.write_bytes(b"not a zip at all")
        with pytest.raises(AdapterError):
            list(FileAdapter(broken).iterate())


class TestArchiveAdapters:
    def test_zip_members_enumerate_sorted(self):
        data = _zip_bytes({
            "b.csv": ROWS.encode("utf-8"),
            "sub/a.csv": ROWS.encode("utf-8"),
            "notes.txt": b"ignored",
        })
        payloads = list(iter_zip_payloads("arch.zip", data))
        assert [p.provenance for p in payloads] == [
            "arch.zip!b.csv", "arch.zip!sub/a.csv"
        ]
        assert payloads[0].data == ROWS.encode("utf-8")
        assert payloads[0].source_id == "b.csv"

    def test_tar_members_enumerate(self, tmp_path):
        data = _tar_bytes({"one.csv": ROWS.encode("utf-8")})
        (tmp_path / "arch.tar").write_bytes(data)
        payloads = list(iter_source(tmp_path / "arch.tar"))
        assert len(payloads) == 1
        assert payloads[0].provenance.endswith("arch.tar!one.csv")
        assert payloads[0].data == ROWS.encode("utf-8")

    def test_nested_archive_recurses(self):
        inner = _zip_bytes({"deep.csv": ROWS.encode("utf-8")})
        outer = _zip_bytes({"inner.zip": inner})
        payloads = list(iter_zip_payloads("outer.zip", outer))
        assert [p.provenance for p in payloads] == [
            "outer.zip!inner.zip!deep.csv"
        ]
        assert payloads[0].source_id == "deep.csv"

    def test_nesting_bomb_hits_depth_budget(self):
        data = _zip_bytes({"leaf.csv": ROWS.encode("utf-8")})
        for level in range(MAX_CONTAINER_DEPTH + 1):
            data = _zip_bytes({f"level{level}.zip": data})
        with pytest.raises(AdapterError, match="nesting"):
            list(payloads_from_bytes("bomb.zip", data))

    def test_truncated_zip_raises_typed(self):
        data = _zip_bytes({"a.csv": ROWS.encode("utf-8")})
        with pytest.raises(AdapterError):
            list(iter_zip_payloads("cut.zip", data[: len(data) // 2]))

    def test_per_member_budget_defers_to_ingest_guard(self):
        # A member larger than max_bytes is read to max_bytes + 1 so
        # the ingest size guard still fires: strict rejects, lenient
        # truncates honestly — never unbounded memory.
        policy = IngestPolicy(max_bytes=16)
        big = ("a,b\n" * 100).encode("utf-8")
        data = _zip_bytes({"big.csv": big})
        payloads = list(iter_zip_payloads("arch.zip", data, policy))
        assert len(payloads[0].data) == policy.max_bytes + 1
        result = ingest_bytes(payloads[0].data, policy=policy)
        assert result.report.truncated_bytes > 0


class TestRecordAdapters:
    def test_ndjson_objects_become_one_table(self):
        data = (
            b'{"name": "North", "q1": 5}\n'
            b'{"name": "South", "q1": 6, "tags": ["a", "b"]}\n'
        )
        payloads = list(iter_ndjson_payloads("log.ndjson", data))
        assert len(payloads) == 1
        assert payloads[0].provenance == "log.ndjson!records"
        lines = payloads[0].data.decode("utf-8").splitlines()
        assert lines[0] == "name,q1,tags"
        assert lines[1] == "North,5,"
        assert lines[2] == "South,6,a|b"

    def test_ndjson_arrays_and_scalars(self):
        payloads = list(iter_ndjson_payloads(
            "x.jsonl", b"[1, 2]\n[3]\n"
        ))
        lines = payloads[0].data.decode("utf-8").splitlines()
        assert lines == ["col0,col1", "1,2", "3,"]
        payloads = list(iter_ndjson_payloads("y.jsonl", b"1\n2\n"))
        assert payloads[0].data.decode("utf-8").splitlines() == [
            "value", "1", "2"
        ]

    def test_ndjson_bad_json_raises_typed(self):
        with pytest.raises(AdapterError, match="line 2"):
            list(iter_ndjson_payloads(
                "bad.ndjson", b'{"a": 1}\n{broken\n'
            ))

    def test_ndjson_mixed_shapes_raise_typed(self):
        with pytest.raises(AdapterError, match="shapes"):
            list(iter_ndjson_payloads("mix.ndjson", b'{"a": 1}\n[1]\n'))

    def test_xml_one_table_per_element_tag(self):
        data = (
            b"<dblp>"
            b'<article key="a1"><author>A</author><author>B</author>'
            b"<title>T</title></article>"
            b'<book key="b1"><title>BT</title></book>'
            b'<article key="a2"><title>U</title></article>'
            b"</dblp>"
        )
        payloads = list(iter_xml_payloads("dump.xml", data))
        assert [p.provenance for p in payloads] == [
            "dump.xml!article", "dump.xml!book"
        ]
        articles = payloads[0].data.decode("utf-8").splitlines()
        assert articles[0] == "key,author,title"
        assert articles[1] == "a1,A|B,T"
        assert articles[2] == "a2,,U"
        books = payloads[1].data.decode("utf-8").splitlines()
        assert books == ["key,title", "b1,BT"]

    def test_xml_parse_error_raises_typed(self):
        with pytest.raises(AdapterError, match="XML"):
            list(iter_xml_payloads("bad.xml", b"<a><b></a>"))

    def test_record_errors_are_ingest_errors(self):
        # Callers already handling IngestError get container failures
        # for free; everything stays under ReproError.
        assert issubclass(AdapterError, IngestError)
        assert issubclass(AdapterError, ReproError)


class TestReadSource:
    def test_plain_path_roundtrip(self, tmp_path):
        path = tmp_path / "a.csv"
        path.write_text(ROWS, encoding="utf-8")
        assert read_source(str(path)) == ROWS.encode("utf-8")

    def test_archive_member_roundtrip(self, tmp_path):
        archive = tmp_path / "arch.zip"
        archive.write_bytes(_zip_bytes({"m.csv": ROWS.encode("utf-8")}))
        locator = f"{archive}!m.csv"
        assert read_source(locator) == ROWS.encode("utf-8")

    def test_derived_table_roundtrip(self, tmp_path):
        log = tmp_path / "log.ndjson"
        log.write_text('{"a": 1}\n', encoding="utf-8")
        data = read_source(f"{log}!records")
        assert data.decode("utf-8").splitlines() == ["a", "1"]

    def test_missing_member_raises_typed(self, tmp_path):
        archive = tmp_path / "arch.zip"
        archive.write_bytes(_zip_bytes({"m.csv": ROWS.encode("utf-8")}))
        with pytest.raises(AdapterError, match="no source"):
            read_source(f"{archive}!absent.csv")

    def test_missing_container_propagates_oserror(self, tmp_path):
        with pytest.raises(OSError):
            read_source(str(tmp_path / "gone.zip") + "!m.csv")


@pytest.fixture(scope="module")
def fitted_pipeline(tiny_corpus) -> StrudelPipeline:
    pipeline = StrudelPipeline(n_estimators=4, random_state=0)
    pipeline.fit(tiny_corpus.files)
    return pipeline


class TestSweepParity:
    """The acceptance property: a loose file, the same file inside a
    zip, and the same file inside a tar classify byte-identically."""

    def test_loose_zip_tar_results_identical(
        self, tmp_path, tiny_corpus, fitted_pipeline
    ):
        lake = tmp_path / "lake"
        (lake / "loose").mkdir(parents=True)
        members: dict[str, bytes] = {}
        for file in tiny_corpus.files[:4]:
            data = write_csv_text(file.table.rows()).encode("utf-8")
            (lake / "loose" / f"{file.name}.csv").write_bytes(data)
            members[f"{file.name}.csv"] = data
        (lake / "lake.zip").write_bytes(_zip_bytes(members))
        (lake / "lake.tar").write_bytes(_tar_bytes(members))

        payloads = list(iter_source(lake))
        assert len(payloads) == 3 * len(members)
        with CorpusEngine(
            fitted_pipeline, n_jobs=1, policy=IngestPolicy()
        ) as engine:
            results, report = engine.process_payloads(
                [(p.provenance, p.data) for p in payloads]
            )
        assert report.skipped == []

        by_member: dict[str, dict[str, FileResult]] = {}
        for payload, result in zip(payloads, results):
            container, member = split_provenance(payload.provenance)
            variant = container.rsplit("/", 1)[-1] if member else "loose"
            by_member.setdefault(payload.source_id, {})[variant] = result
        assert len(by_member) == len(members)
        for variants in by_member.values():
            assert set(variants) == {"loose", "lake.zip", "lake.tar"}
            loose = variants["loose"]
            for archived in ("lake.zip", "lake.tar"):
                other = variants[archived]
                assert (
                    loose.line_codes.tobytes()
                    == other.line_codes.tobytes()
                )
                assert (
                    loose.cell_positions.tobytes()
                    == other.cell_positions.tobytes()
                )
                assert (
                    loose.cell_codes.tobytes()
                    == other.cell_codes.tobytes()
                )

    def test_provenance_threads_into_results(
        self, tmp_path, tiny_corpus, fitted_pipeline
    ):
        file = tiny_corpus.files[0]
        data = write_csv_text(file.table.rows()).encode("utf-8")
        archive = tmp_path / "arch.zip"
        archive.write_bytes(_zip_bytes({"m.csv": data}))
        payloads = list(iter_source(archive))
        with CorpusEngine(
            fitted_pipeline, n_jobs=1, policy=IngestPolicy()
        ) as engine:
            results, _report = engine.process_payloads(
                [(p.provenance, p.data) for p in payloads]
            )
        assert results[0].provenance == f"{archive}!m.csv"
        # read_source resolves the reported provenance back to the
        # exact bytes the engine classified.
        assert read_source(results[0].provenance) == data
