"""The seeded ingestion fuzz harness as a regression suite.

The heavy contract check (``repro fuzz --seed 0 --iterations 500``)
runs in CI's ``fuzz-smoke`` job; here a smaller seeded slice locks in
the same properties on every test run, plus unit tests for the
mutators and the report plumbing.
"""

from __future__ import annotations

import codecs
import io

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.fuzz import (
    MUTATORS,
    FuzzConfig,
    FuzzReport,
    format_fuzz_report,
    run_fuzz,
)
from repro.fuzz.harness import FuzzFailure, _base_inputs
from repro.io.ingest import ingest_bytes
from repro.util.rng import as_generator


@pytest.fixture(scope="module")
def small_run() -> FuzzReport:
    return run_fuzz(FuzzConfig(seed=0, iterations=120))


class TestContract:
    def test_no_uncaught_exceptions(self, small_run):
        assert small_run.ok, format_fuzz_report(small_run)

    def test_every_iteration_counted(self, small_run):
        assert small_run.iterations == 120
        lenient_total = small_run.lenient_accepted + sum(
            small_run.lenient_rejected.values()
        )
        assert lenient_total == 120

    def test_strict_only_ever_rejects_more(self, small_run):
        assert small_run.strict_accepted <= small_run.lenient_accepted

    def test_mutations_were_exercised(self, small_run):
        # With 120 iterations and 1-3 draws each, every mutator in the
        # registry should have fired at least once (seed-pinned).
        assert set(small_run.mutator_counts) == {
            name for name, _ in MUTATORS
        }

    def test_recovery_and_parity_paths_hit(self, small_run):
        assert small_run.recovered > 0
        assert small_run.parity_checks > 0
        assert small_run.strict_rejected  # typed rejections occurred


class TestDeterminism:
    def test_same_seed_same_report(self, small_run):
        again = run_fuzz(FuzzConfig(seed=0, iterations=120))
        assert again.lenient_accepted == small_run.lenient_accepted
        assert again.lenient_rejected == small_run.lenient_rejected
        assert again.strict_rejected == small_run.strict_rejected
        assert again.mutator_counts == small_run.mutator_counts
        assert again.failures == small_run.failures

    def test_different_seed_different_draws(self, small_run):
        other = run_fuzz(FuzzConfig(seed=1, iterations=120))
        assert other.mutator_counts != small_run.mutator_counts

    def test_base_inputs_deterministic(self):
        config = FuzzConfig(seed=3, iterations=1)
        assert _base_inputs(config) == _base_inputs(config)


class TestMutators:
    def test_mutators_deterministic_given_rng(self):
        data = b"Region,Q1\nNorth,5\n"
        for name, mutate in MUTATORS:
            a = mutate(data, as_generator(7))
            b = mutate(data, as_generator(7))
            assert a == b, name

    def test_mutators_total_on_empty_input(self):
        for name, mutate in MUTATORS:
            out = mutate(b"", as_generator(0))
            assert isinstance(out, bytes), name

    def test_insert_bom_prepends_known_bom(self):
        from repro.fuzz.mutations import insert_bom

        out = insert_bom(b"a,b\n", as_generator(0))
        assert any(
            out.startswith(bom)
            for bom in (
                codecs.BOM_UTF8,
                codecs.BOM_UTF16_LE,
                codecs.BOM_UTF16_BE,
                codecs.BOM_UTF32_LE,
                codecs.BOM_UTF32_BE,
            )
        )

    def test_mutant_ingestion_never_leaks_raw_exceptions(self):
        # Direct spot check of the crash class the ISSUE names:
        # mutants must never raise UnicodeDecodeError/IndexError.
        rng = as_generator(11)
        data = b"Region,Q1,Q2\nNorth,5,7\n"
        for name, mutate in MUTATORS:
            mutant = mutate(data, rng)
            try:
                result = ingest_bytes(mutant)
                assert result.table.n_rows >= 1
            except ReproError:
                pass  # typed rejection is within contract


class TestReportRendering:
    def test_format_ok_report(self, small_run):
        text = format_fuzz_report(small_run)
        assert "no contract violations" in text
        assert "iterations            120" in text

    def test_format_failure_report_caps_output(self):
        report = FuzzReport(config=FuzzConfig(), iterations=1)
        report.failures.extend(
            FuzzFailure(
                iteration=i,
                mutators=("chop",),
                mode="lenient",
                error="ValueError: boom",
                payload_preview="b''",
            )
            for i in range(15)
        )
        text = format_fuzz_report(report, max_failures=3)
        assert "15 FAILURE(S)" in text
        assert "... and 12 more" in text


class TestAdapterFuzz:
    """The container round: mutated zip/tar/NDJSON/XML archives."""

    @pytest.fixture(scope="class")
    def adapter_run(self) -> FuzzReport:
        return run_fuzz(
            FuzzConfig(seed=0, iterations=80, adapters=True)
        )

    def test_no_contract_violations(self, adapter_run):
        assert adapter_run.ok, format_fuzz_report(adapter_run)

    def test_every_container_kind_built(self, adapter_run):
        built = {
            name for name in adapter_run.mutator_counts
            if name.startswith("container:")
        }
        assert built == {
            "container:zip", "container:tar",
            "container:ndjson", "container:xml",
        }

    def test_mutated_containers_were_rejected_typed(self, adapter_run):
        # Byte mutation corrupts some containers; every rejection must
        # be a typed ReproError (the escape path would fail the run).
        assert adapter_run.lenient_rejected
        assert adapter_run.parity_checks > 0

    def test_same_seed_same_report(self, adapter_run):
        again = run_fuzz(
            FuzzConfig(seed=0, iterations=80, adapters=True)
        )
        assert again.mutator_counts == adapter_run.mutator_counts
        assert again.lenient_accepted == adapter_run.lenient_accepted
        assert again.strict_rejected == adapter_run.strict_rejected


class TestFuzzCli:
    def test_cli_fuzz_smoke(self):
        out = io.StringIO()
        code = main(
            ["fuzz", "--seed", "0", "--iterations", "40"], out=out
        )
        assert code == 0
        assert "no contract violations" in out.getvalue()

    def test_cli_fuzz_is_seed_stable(self):
        first, second = io.StringIO(), io.StringIO()
        main(["fuzz", "--seed", "5", "--iterations", "30"], out=first)
        main(["fuzz", "--seed", "5", "--iterations", "30"], out=second)
        assert first.getvalue() == second.getvalue()


def test_numpy_is_quiet_during_fuzz():
    """Mutated numeric garbage must not emit numpy warnings either."""
    with np.errstate(all="raise"):
        report = run_fuzz(FuzzConfig(seed=2, iterations=25))
    assert report.ok
