"""Tests for the dialect-aware CSV tokenizer (:mod:`repro.parsing`)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dialect.dialect import Dialect
from repro.io.reader import read_table_text
from repro.io.writer import write_csv_text
from repro.parsing import parse_csv_outcome, parse_csv_text, split_record

STANDARD = Dialect.standard()


class TestBasicParsing:
    def test_simple_records(self):
        assert parse_csv_text("a,b\nc,d\n", STANDARD) == [
            ["a", "b"], ["c", "d"],
        ]

    def test_no_trailing_newline(self):
        assert parse_csv_text("a,b", STANDARD) == [["a", "b"]]

    def test_trailing_newline_no_phantom_record(self):
        assert parse_csv_text("a\n", STANDARD) == [["a"]]

    def test_crlf_and_bare_cr(self):
        assert parse_csv_text("a\r\nb\rc\n", STANDARD) == [
            ["a"], ["b"], ["c"],
        ]

    def test_empty_fields(self):
        assert parse_csv_text(",,\n", STANDARD) == [["", "", ""]]

    def test_empty_text(self):
        assert parse_csv_text("", STANDARD) == []

    def test_semicolon_dialect(self):
        dialect = Dialect(delimiter=";")
        assert parse_csv_text("a;b,c\n", dialect) == [["a", "b,c"]]

    def test_tab_dialect(self):
        dialect = Dialect(delimiter="\t")
        assert parse_csv_text("a\tb\n", dialect) == [["a", "b"]]


class TestQuoting:
    def test_quoted_delimiter(self):
        assert parse_csv_text('"a,b",c\n', STANDARD) == [["a,b", "c"]]

    def test_quoted_newline(self):
        assert parse_csv_text('"a\nb",c\n', STANDARD) == [["a\nb", "c"]]

    def test_doubled_quote(self):
        assert parse_csv_text('"say ""hi""",x\n', STANDARD) == [
            ['say "hi"', "x"],
        ]

    def test_quote_mid_field_is_literal(self):
        # A quote that does not open the field is kept verbatim.
        assert parse_csv_text('ab"c,d\n', STANDARD) == [['ab"c', "d"]]

    def test_unterminated_quote_is_lenient(self):
        # Wrong-dialect parses must not raise: the rest of the text
        # becomes part of the open field.
        rows = parse_csv_text('"abc,def\n', STANDARD)
        assert rows == [["abc,def\n"]]

    def test_no_quote_dialect(self):
        dialect = Dialect(delimiter=",", quotechar="")
        assert parse_csv_text('"a",b\n', dialect) == [['"a"', "b"]]


class TestEscaping:
    def test_escaped_delimiter(self):
        dialect = Dialect(delimiter=",", quotechar='"', escapechar="\\")
        assert parse_csv_text("a\\,b,c\n", dialect) == [["a,b", "c"]]

    def test_escaped_quote_inside_quotes(self):
        dialect = Dialect(delimiter=",", quotechar='"', escapechar="\\")
        assert parse_csv_text('"a\\"b"\n', dialect) == [['a"b']]


class TestSplitRecord:
    def test_single_line(self):
        assert split_record("a,b,c", STANDARD) == ["a", "b", "c"]

    def test_empty_line(self):
        assert split_record("", STANDARD) == [""]


class TestLenientEdgeCases:
    """The lenient behaviors dialect scoring leans on, pinned.

    These were load-bearing but untested: dialect detection scores
    *wrong* dialects against arbitrary text, so the tokenizer must
    treat every malformed shape as data, never raise — and the
    recovery facts must surface through :func:`parse_csv_outcome`.
    """

    def test_unterminated_quote_at_eof(self):
        outcome = parse_csv_outcome('a,"bc', STANDARD)
        assert outcome.records == [["a", "bc"]]
        assert outcome.unterminated_quote

    def test_unterminated_quote_swallows_rest_of_text(self):
        outcome = parse_csv_outcome('"x,y\nz\n', STANDARD)
        assert outcome.records == [["x,y\nz\n"]]
        assert outcome.unterminated_quote

    def test_terminated_quote_sets_no_flag(self):
        outcome = parse_csv_outcome('"a",b\n', STANDARD)
        assert not outcome.unterminated_quote

    def test_escape_char_as_last_character(self):
        dialect = Dialect(delimiter=",", quotechar='"', escapechar="\\")
        outcome = parse_csv_outcome("a,b\\", dialect)
        # Nothing to escape: the escape character stays literal.
        assert outcome.records == [["a", "b\\"]]
        assert outcome.dangling_escape

    def test_escaped_escape_at_end_is_not_dangling(self):
        dialect = Dialect(delimiter=",", quotechar='"', escapechar="\\")
        outcome = parse_csv_outcome("a,b\\\\", dialect)
        assert outcome.records == [["a", "b\\"]]
        assert not outcome.dangling_escape

    def test_lone_cr_record_separators(self):
        outcome = parse_csv_outcome("a,b\rc,d\re,f", STANDARD)
        assert outcome.records == [
            ["a", "b"], ["c", "d"], ["e", "f"],
        ]
        assert not outcome.unterminated_quote

    def test_trailing_lone_cr_no_phantom_record(self):
        assert parse_csv_text("a\r", STANDARD) == [["a"]]

    def test_empty_file_sentinel_through_reader(self):
        # parse_csv_text("") is [], and the reader turns that into
        # the 1x1 sentinel table instead of a zero-row table.
        assert parse_csv_text("", STANDARD) == []
        table = read_table_text("", dialect=STANDARD)
        assert table.shape == (1, 1)
        assert table.cell(0, 0) == ""

    def test_outcome_records_match_parse_csv_text(self):
        text = 'a,"b\nc",d\r\ne,f\n'
        assert (
            parse_csv_outcome(text, STANDARD).records
            == parse_csv_text(text, STANDARD)
        )


# ----------------------------------------------------------------------
# Property: writer -> parser round trip
# ----------------------------------------------------------------------
_FIELD = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=12
)
_ROWS = st.lists(
    st.lists(_FIELD, min_size=1, max_size=5), min_size=1, max_size=6
)


@given(rows=_ROWS)
@settings(max_examples=150, deadline=None)
def test_write_parse_round_trip(rows):
    """Any table serialized with quoting parses back identically."""
    text = write_csv_text(rows, STANDARD)
    parsed = parse_csv_text(text, STANDARD)
    assert parsed == rows


@given(rows=_ROWS)
@settings(max_examples=100, deadline=None)
def test_round_trip_semicolon_dialect(rows):
    dialect = Dialect(delimiter=";", quotechar="'")
    text = write_csv_text(rows, dialect)
    assert parse_csv_text(text, dialect) == rows
