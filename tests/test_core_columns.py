"""Tests for the column-classification extension."""

from __future__ import annotations

import pytest

from repro.core.columns import ColumnClassifier, refine_cell_predictions
from repro.core.strudel import StrudelCellClassifier
from repro.types import CellClass, Table


@pytest.fixture(scope="module")
def fitted_cells(tiny_corpus):
    files = tiny_corpus.files
    cut = max(1, int(0.8 * len(files)))
    return (
        StrudelCellClassifier(n_estimators=10, random_state=0).fit(
            files[:cut]
        ),
        files[cut:],
    )


class TestColumnClassifier:
    def test_one_label_per_column(self, fitted_cells, verbose_table):
        model, _ = fitted_cells
        columns = ColumnClassifier(model).predict(verbose_table)
        assert len(columns) == verbose_table.n_cols

    def test_empty_column_labelled_empty(self, fitted_cells):
        model, _ = fitted_cells
        table = Table([["a", "", "1"], ["b", "", "2"]])
        columns = ColumnClassifier(model).predict(table)
        assert columns[1] is CellClass.EMPTY

    def test_data_columns_majority_data(self, fitted_cells):
        model, test_files = fitted_cells
        annotated = test_files[0]
        columns = ColumnClassifier(model).predict(annotated.table)
        # Columns whose ground truth is overwhelmingly data should be
        # classified data.
        from collections import Counter

        for j in range(annotated.table.n_cols):
            truth = Counter(
                annotated.cell_labels[i][j]
                for i in range(annotated.table.n_rows)
                if annotated.cell_labels[i][j] is not CellClass.EMPTY
            )
            if not truth:
                continue
            top, count = truth.most_common(1)[0]
            if top is CellClass.DATA and count / sum(truth.values()) > 0.9:
                assert columns[j] is CellClass.DATA
                break

    def test_fit_reuses_fitted_model(self, fitted_cells):
        model, _ = fitted_cells
        inner = model._model
        ColumnClassifier(model).fit([])
        assert model._model is inner


class TestRefinement:
    def test_snaps_minority_data_in_derived_column(self):
        predictions = {
            (0, 0): CellClass.DERIVED,
            (1, 0): CellClass.DERIVED,
            (2, 0): CellClass.DERIVED,
            (3, 0): CellClass.DATA,
        }
        table = Table([["1"], ["2"], ["3"], ["4"]])
        refined = refine_cell_predictions(predictions, table)
        assert refined[(3, 0)] is CellClass.DERIVED

    def test_leaves_other_classes_untouched(self):
        predictions = {
            (0, 0): CellClass.DERIVED,
            (1, 0): CellClass.DERIVED,
            (2, 0): CellClass.DERIVED,
            (3, 0): CellClass.GROUP,
        }
        table = Table([["1"], ["2"], ["3"], ["x"]])
        refined = refine_cell_predictions(predictions, table)
        assert refined[(3, 0)] is CellClass.GROUP

    def test_data_dominance_never_absorbs_derived(self):
        """The snap is one-directional: a data-dominant column must
        not erase its scattered derived predictions."""
        predictions = {
            (0, 0): CellClass.DATA,
            (1, 0): CellClass.DATA,
            (2, 0): CellClass.DATA,
            (3, 0): CellClass.DERIVED,
        }
        table = Table([["1"], ["2"], ["3"], ["6"]])
        refined = refine_cell_predictions(predictions, table)
        assert refined[(3, 0)] is CellClass.DERIVED

    def test_no_dominant_class_no_change(self):
        predictions = {
            (0, 0): CellClass.DERIVED,
            (1, 0): CellClass.DATA,
        }
        table = Table([["1"], ["2"]])
        refined = refine_cell_predictions(predictions, table)
        assert refined == predictions

    def test_input_not_mutated(self):
        predictions = {
            (0, 0): CellClass.DERIVED,
            (1, 0): CellClass.DERIVED,
            (2, 0): CellClass.DATA,
        }
        table = Table([["1"], ["2"], ["3"]])
        refine_cell_predictions(predictions, table)
        assert predictions[(2, 0)] is CellClass.DATA
