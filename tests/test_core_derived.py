"""Tests for Algorithm 2 — derived cell detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.derived import DerivedDetector, numeric_grid
from repro.errors import InvalidParameterError
from repro.types import Table


def _sum_table():
    """A table whose Total row really sums the two data rows."""
    return Table(
        [
            ["State", "A", "B"],
            ["Alabama", "10", "20"],
            ["Alaska", "5", "5"],
            ["Total", "15", "25"],
        ]
    )


class TestNumericGrid:
    def test_grid_values_and_nans(self):
        grid = numeric_grid(_sum_table())
        assert np.isnan(grid[0, 0])
        assert grid[1, 1] == 10.0
        assert grid[3, 2] == 25.0

    def test_thousands_separators_parsed(self):
        grid = numeric_grid(Table([["1,234"]]))
        assert grid[0, 0] == 1234.0


class TestSumDetection:
    def test_detects_upward_sum_row(self):
        detected = DerivedDetector().detect(_sum_table())
        assert (3, 1) in detected
        assert (3, 2) in detected
        # Data cells are not marked.
        assert (1, 1) not in detected

    def test_detects_downward_sum_row(self):
        table = Table(
            [
                ["Total", "15", "25"],
                ["Alabama", "10", "20"],
                ["Alaska", "5", "5"],
            ]
        )
        detected = DerivedDetector().detect(table)
        assert (0, 1) in detected

    def test_detects_column_sums(self):
        table = Table(
            [
                ["", "A", "B", "Total"],
                ["x", "1", "2", "3"],
                ["y", "4", "5", "9"],
            ]
        )
        detected = DerivedDetector().detect(table)
        assert (1, 3) in detected
        assert (2, 3) in detected

    def test_unanchored_totals_are_missed(self):
        """Without a keyword, no anchor exists — the paper's dominant
        error mode is preserved by design."""
        table = Table(
            [
                ["Alabama", "10", "20"],
                ["Alaska", "5", "5"],
                ["Combined", "15", "25"],
            ]
        )
        assert DerivedDetector().detect(table) == set()

    def test_exhaustive_mode_finds_unanchored_totals(self):
        table = Table(
            [
                ["Alabama", "10", "20"],
                ["Alaska", "5", "5"],
                ["Combined", "15", "25"],
            ]
        )
        detected = DerivedDetector(anchor_mode="exhaustive").detect(table)
        assert (2, 1) in detected

    def test_non_matching_total_not_detected(self):
        table = Table(
            [
                ["Alabama", "10", "20"],
                ["Alaska", "5", "5"],
                ["Total", "99", "77"],
            ]
        )
        assert DerivedDetector().detect(table) == set()

    def test_zero_sum_regions_never_match(self):
        table = Table(
            [
                ["Alabama", "0", "0"],
                ["Total", "0", "0"],
            ]
        )
        assert DerivedDetector().detect(table) == set()


class TestMeanDetection:
    def test_detects_mean_row(self):
        table = Table(
            [
                ["x", "10", "30"],
                ["y", "20", "10"],
                ["Average", "15", "20"],
            ]
        )
        detected = DerivedDetector().detect(table)
        assert (2, 1) in detected

    def test_mean_disabled(self):
        table = Table(
            [
                ["x", "10", "30"],
                ["y", "20", "10"],
                ["Average", "15", "20"],
            ]
        )
        detector = DerivedDetector(functions=("sum",))
        assert detector.detect(table) == set()


class TestExtendedFunctions:
    """The paper's future-work extension: min/max/median detection."""

    def test_detects_max_row(self):
        table = Table(
            [
                ["x", "10", "30"],
                ["y", "25", "12"],
                ["Total", "25", "30"],
            ]
        )
        detector = DerivedDetector(functions=("max",))
        assert (2, 1) in detector.detect(table)

    def test_detects_min_row(self):
        table = Table(
            [
                ["x", "10", "30"],
                ["y", "25", "12"],
                ["Total", "10", "12"],
            ]
        )
        detector = DerivedDetector(functions=("min",))
        assert (2, 1) in detector.detect(table)

    def test_detects_median_row(self):
        table = Table(
            [
                ["a", "10"],
                ["b", "20"],
                ["c", "90"],
                ["Median", "20"],
            ]
        )
        detector = DerivedDetector(functions=("median",))
        assert (3, 1) in detector.detect(table)

    def test_order_statistics_require_two_rows(self):
        """A 'max' equal to the single adjacent row must not match —
        that would fire on every repeated value."""
        table = Table(
            [
                ["a", "10"],
                ["Total", "10"],
            ]
        )
        detector = DerivedDetector(functions=("max",))
        assert detector.detect(table) == set()

    def test_defaults_exclude_order_statistics(self):
        table = Table(
            [
                ["x", "10", "30"],
                ["y", "25", "12"],
                ["Total", "25", "30"],
            ]
        )
        assert DerivedDetector().detect(table) == set()


class TestParameters:
    def test_delta_tolerance(self):
        table = Table(
            [
                ["x", "10.0"],
                ["y", "20.0"],
                ["Total", "30.05"],
            ]
        )
        assert DerivedDetector(delta=0.1).detect(table)
        assert not DerivedDetector(delta=0.01).detect(table)

    def test_coverage_threshold(self):
        # Only one of two candidates matches the sum.
        table = Table(
            [
                ["x", "10", "1"],
                ["y", "20", "2"],
                ["Total", "30", "999"],
            ]
        )
        assert DerivedDetector(coverage=0.4).detect(table)
        assert not DerivedDetector(coverage=0.6).detect(table)

    def test_relative_delta(self):
        table = Table(
            [
                ["x", "1000"],
                ["y", "2000"],
                ["Total", "3001"],
            ]
        )
        assert not DerivedDetector(delta=0.1, relative=False).detect(table)
        assert DerivedDetector(delta=0.1, relative=True).detect(table)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DerivedDetector(delta=0.0)
        with pytest.raises(InvalidParameterError):
            DerivedDetector(coverage=0.0)
        with pytest.raises(InvalidParameterError):
            DerivedDetector(coverage=1.5)
        with pytest.raises(InvalidParameterError):
            DerivedDetector(functions=("product",))
        with pytest.raises(InvalidParameterError):
            DerivedDetector(anchor_mode="nope")


class TestRobustness:
    def test_keyword_without_numbers_is_harmless(self):
        table = Table([["Total", "notes only"], ["x", "y"]])
        assert DerivedDetector().detect(table) == set()

    def test_empty_table(self):
        assert DerivedDetector().detect(Table([["", ""]])) == set()

    def test_non_consecutive_aggregation_missed(self):
        """A grand total over data rows *and* interleaved subtotals is
        not a consecutive-prefix sum, so Algorithm 2 misses it —
        reproducing the paper's 'non-consecutive lines' error case."""
        table = Table(
            [
                ["a", "10"],
                ["Sub", "10"],  # subtotal of one row (detected)
                ["b", "20"],
                ["Sub", "20"],
                ["Total", "30"],  # sums a+b, skipping the subtotals
            ]
        )
        detected = DerivedDetector().detect(table)
        assert (4, 1) not in detected

    def test_intermediate_prefix_match_found(self):
        # Sum over the two nearest rows matches even though farther
        # rows exist above them.
        table = Table(
            [
                ["junk", "999"],
                ["a", "10"],
                ["b", "20"],
                ["Total", "30"],
            ]
        )
        assert (3, 1) in DerivedDetector().detect(table)


class TestFunctionSets:
    def test_default_functions_are_the_papers(self):
        from repro.core.derived import DEFAULT_FUNCTIONS, SUPPORTED_FUNCTIONS

        assert DEFAULT_FUNCTIONS == ("sum", "mean")
        assert set(DEFAULT_FUNCTIONS) <= set(SUPPORTED_FUNCTIONS)
        assert {"min", "max", "median"} <= set(SUPPORTED_FUNCTIONS)
