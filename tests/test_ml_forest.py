"""Tests for the random forest (:mod:`repro.ml.forest`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.forest import RandomForestClassifier


def _data(n=300, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 5))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int) + (X[:, 2] > 1.2)
    return X, y.astype(int)


class TestForest:
    def test_learns_signal(self):
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=25, random_state=0
        ).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_probabilities_sum_to_one(self):
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0
        ).fit(X, y)
        proba = forest.predict_proba(X[:20])
        assert proba.shape == (20, len(forest.classes_))
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_seed_determinism(self):
        X, y = _data()
        a = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, random_state=3).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_different_seeds_differ(self):
        X, y = _data()
        a = RandomForestClassifier(n_estimators=8, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=8, random_state=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_no_bootstrap_mode(self):
        X, y = _data(n=100)
        forest = RandomForestClassifier(
            n_estimators=5, bootstrap=False, max_features=None,
            random_state=0,
        ).fit(X, y)
        # Without bootstrap or feature sampling all trees are equal, and
        # an unconstrained tree fits the training data perfectly.
        assert (forest.predict(X) == y).mean() == 1.0

    def test_rare_class_probability_alignment(self):
        # One class is so rare that many bootstraps miss it entirely;
        # the forest must still emit aligned 3-column probabilities.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = np.array([0] * 30 + [1] * 28 + [2] * 2)
        forest = RandomForestClassifier(
            n_estimators=12, random_state=0
        ).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (60, 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RandomForestClassifier(n_estimators=0)
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(np.zeros((1, 2)))

    def test_compiled_and_legacy_paths_agree(self):
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0
        ).fit(X, y)
        assert forest.predict_proba(X).tobytes() == (
            forest.legacy_predict_proba(X).tobytes()
        )

    def test_fit_precomputes_aligned_columns(self):
        # The per-tree class alignment is computed once at fit time,
        # not per legacy_predict_proba call.
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=4, random_state=0
        ).fit(X, y)
        assert forest._tree_columns is not None
        assert len(forest._tree_columns) == 4
        for columns, tree in zip(
            forest._tree_columns, forest.estimators_
        ):
            assert len(columns) == len(tree.classes_)

    def test_ensemble_smoother_than_single_tree(self):
        """Forest probabilities take intermediate values, unlike a
        lone unconstrained tree whose leaves are pure."""
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=30, random_state=0
        ).fit(X, y)
        proba = forest.predict_proba(X)
        intermediate = ((proba > 0.05) & (proba < 0.95)).any()
        assert bool(intermediate)


class TestFeatureImportances:
    def test_signal_feature_dominates(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 4))
        y = (X[:, 1] > 0).astype(int)  # only feature 1 matters
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0
        ).fit(X, y)
        importances = forest.feature_importances_
        assert np.argmax(importances) == 1
        assert importances[1] > 0.5

    def test_importances_normalized(self):
        X, y = _data()
        forest = RandomForestClassifier(
            n_estimators=5, random_state=0
        ).fit(X, y)
        importances = forest.feature_importances_
        assert importances.min() >= 0.0
        assert importances.sum() == pytest.approx(1.0)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().feature_importances_


class TestOutOfBag:
    def test_oob_score_tracks_generalization(self):
        X, y = _data(n=400)
        forest = RandomForestClassifier(
            n_estimators=25, oob_score=True, random_state=0
        ).fit(X, y)
        assert forest.oob_score_ is not None
        assert 0.8 < forest.oob_score_ <= 1.0

    def test_oob_decision_function_shape(self):
        X, y = _data(n=100)
        forest = RandomForestClassifier(
            n_estimators=10, oob_score=True, random_state=0
        ).fit(X, y)
        decision = forest.oob_decision_function_
        assert decision.shape == (100, len(forest.classes_))
        voted = ~np.isnan(decision[:, 0])
        assert np.allclose(decision[voted].sum(axis=1), 1.0)

    def test_oob_disabled_by_default(self):
        X, y = _data(n=50)
        forest = RandomForestClassifier(
            n_estimators=3, random_state=0
        ).fit(X, y)
        assert forest.oob_score_ is None

    def test_oob_requires_bootstrap(self):
        with pytest.raises(InvalidParameterError):
            RandomForestClassifier(bootstrap=False, oob_score=True)
