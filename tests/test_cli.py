"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.io.annotations import load_corpus


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "input.csv"
    path.write_text(
        "Annual Report\n"
        ",,,\n"
        "Region;Q1;Q2\n".replace(";", ",")
        + "North,5,7\nSouth,6,8\nTotal,11,15\n",
        encoding="utf-8",
    )
    return path


class TestDetect:
    def test_detect_comma(self, csv_file):
        out = io.StringIO()
        assert main(["detect", str(csv_file)], out=out) == 0
        assert "delimiter=','" in out.getvalue()

    def test_detect_semicolon(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;1\nb;2\nc;3\n", encoding="utf-8")
        out = io.StringIO()
        main(["detect", str(path)], out=out)
        assert "delimiter=';'" in out.getvalue()


class TestIngestFlags:
    """The detect/classify commands share the hardened ingestion path:
    lenient repairs warn on stderr, ``--strict`` refuses with exit 2."""

    def test_detect_latin1_file_no_longer_crashes(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes(
            "name,city\nRené,Köln\nJosé,Málaga\n".encode("latin-1")
        )
        out = io.StringIO()
        assert main(["detect", str(path)], out=out) == 0
        assert "delimiter=','" in out.getvalue()

    def test_detect_lenient_warns_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "nul.csv"
        path.write_bytes(b"a,\x00b\n1,2\n3,4\n")
        out = io.StringIO()
        assert main(["detect", str(path)], out=out) == 0
        err = capsys.readouterr().err
        assert str(path) in err
        assert "NUL" in err

    def test_detect_strict_rejects_with_exit_two(self, tmp_path, capsys):
        path = tmp_path / "nul.csv"
        path.write_bytes(b"a,\x00b\n1,2\n")
        out = io.StringIO()
        assert main(["detect", str(path), "--strict"], out=out) == 2
        assert "NUL" in capsys.readouterr().err

    def test_detect_encoding_flag(self, tmp_path):
        path = tmp_path / "cp.csv"
        path.write_bytes("a,ä\nb,ö\nc,ü\n".encode("cp1252"))
        out = io.StringIO()
        code = main(
            ["detect", str(path), "--encoding", "cp1252"], out=out
        )
        assert code == 0

    def test_clean_file_stays_quiet(self, csv_file, capsys):
        out = io.StringIO()
        assert main(["detect", str(csv_file)], out=out) == 0
        assert capsys.readouterr().err == ""

    def test_classify_strict_rejects_lying_bom(self, tmp_path):
        import codecs

        path = tmp_path / "bom.csv"
        path.write_bytes(codecs.BOM_UTF16_LE + b"abc")
        out = io.StringIO()
        code = main(
            ["classify", str(path), "--strict",
             "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 2

    def test_classify_utf8_sig_file(self, tmp_path):
        path = tmp_path / "sig.csv"
        path.write_text(
            "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n",
            encoding="utf-8-sig",
        )
        out = io.StringIO()
        code = main(
            ["classify", str(path), "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 0
        assert "data" in out.getvalue()


class TestClassify:
    def test_classify_prints_line_classes(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "classify", str(csv_file),
                "--scale", "0.05", "--trees", "8", "--cells",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "dialect:" in text
        assert "data" in text
        assert "header" in text or "metadata" in text

    def test_classify_directory_sweeps_with_cache(self, tmp_path, capsys):
        """A directory argument sweeps every *.csv through the engine;
        a second run against the same sweep cache is all hits."""
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for name in ("a", "b", "c"):
            (corpus / f"{name}.csv").write_text(
                "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n",
                encoding="utf-8",
            )
        args = [
            "classify", str(corpus), "--scale", "0.05", "--trees", "8",
            "--jobs", "2", "--sweep-cache", str(tmp_path / "cache"),
        ]
        out = io.StringIO()
        assert main(args, out=out) == 0
        text = out.getvalue()
        assert "a.csv" in text and "c.csv" in text
        assert "swept 3/3 files (0 cached" in text

        out = io.StringIO()
        assert main(args, out=out) == 0
        assert "swept 3/3 files (3 cached" in out.getvalue()

    def test_classify_empty_directory_exits_two(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        out = io.StringIO()
        code = main(
            ["classify", str(empty), "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 2


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    return x\n",
                         encoding="utf-8")
        out = io.StringIO()
        assert main(["lint", str(clean)], out=out) == 0
        assert "no findings" in out.getvalue()

    def test_findings_exit_one_with_json(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(x={}):\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(["lint", str(bad), "--format", "json"], out=out)
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["count"] == 2
        assert payload["by_rule"] == {"R001": 1, "R005": 1}

    def test_select_limits_rules(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(x={}):\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(
            ["lint", str(bad), "--format", "json",
             "--select", "R005"],
            out=out,
        )
        assert code == 1
        assert json.loads(out.getvalue())["by_rule"] == {"R005": 1}

    @staticmethod
    def _ingest_bypass_tree(tmp_path):
        """A mini repro-shaped tree where a module decodes bytes into a
        Table outside io.ingest (triggers the project rule R101)."""
        pkg = tmp_path / "repro"
        (pkg / "io").mkdir(parents=True)
        (pkg / "types.py").write_text(
            "class Table:\n    pass\n", encoding="utf-8"
        )
        (pkg / "io" / "ingest.py").write_text(
            "from repro.types import Table\n"
            "\n"
            "def ingest_bytes(raw):\n"
            "    return Table()\n",
            encoding="utf-8",
        )
        (pkg / "sneaky.py").write_text(
            "from repro.types import Table\n"
            "\n"
            "def shortcut(raw):\n"
            "    return Table(raw.decode('utf-8'))\n",
            encoding="utf-8",
        )
        return pkg

    def test_select_accepts_commas_and_repeats(self, tmp_path):
        import json

        pkg = self._ingest_bypass_tree(tmp_path)
        out = io.StringIO()
        code = main(
            ["lint", str(pkg), "--format", "json",
             "--select", "R002,R101", "--select", "R005"],
            out=out,
        )
        assert code == 1
        assert json.loads(out.getvalue())["by_rule"] == {"R101": 1}

    def test_no_graph_skips_project_rules(self, tmp_path):
        pkg = self._ingest_bypass_tree(tmp_path)
        out = io.StringIO()
        assert main(["lint", str(pkg)], out=out) == 1
        assert "R101" in out.getvalue()
        out = io.StringIO()
        assert main(["lint", str(pkg), "--no-graph"], out=out) == 0

    def test_shipped_package_is_clean(self):
        out = io.StringIO()
        assert main(["lint"], out=out) == 0

    def test_unknown_rule_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert main(
            ["lint", str(clean), "--select", "R999"], out=out
        ) == 2

    def test_unknown_rule_in_comma_list_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert main(
            ["lint", str(clean), "--select", "R005,R999"], out=out
        ) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        out = io.StringIO()
        code = main(["lint", str(tmp_path / "absent.py")], out=out)
        assert code == 2

    def test_unparseable_file_reported_as_r000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        out = io.StringIO()
        assert main(["lint", str(bad)], out=out) == 1
        assert "R000" in out.getvalue()


class TestGenerate:
    def test_generate_writes_corpus(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "generate", "troy", str(tmp_path / "corpus"),
                "--scale", "0.02", "--seed", "1",
            ],
            out=out,
        )
        assert code == 0
        csv_files = list((tmp_path / "corpus" / "csv").glob("*.csv"))
        assert len(csv_files) >= 2
        corpus = load_corpus(tmp_path / "corpus" / "annotations")
        assert len(corpus) == len(csv_files)

    def test_bad_corpus_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "nope", "/tmp/x"])


class TestBenchBaseline:
    """CLI wiring of the baseline diff mode (run_benchmark stubbed so
    these stay fast; the diff logic itself is tested in test_perf)."""

    @staticmethod
    def _report(fit_seconds: float = 1.0) -> dict:
        from repro.perf.bench import BenchConfig
        from dataclasses import asdict

        return {
            "schema": "repro-bench/1",
            "config": asdict(BenchConfig.quick_config()),
            "fit_seconds": fit_seconds,
            "stages": {"parsing": 0.01, "profile": 0.02},
            "analyze": {
                "legacy_two_pass_seconds": 0.3,
                "single_pass_seconds": 0.2,
                "cached_seconds": 0.05,
                "single_pass_speedup": 1.5,
                "analyze_speedup": 6.0,
                "cache_hits": 2,
                "cache_misses": 1,
            },
            "cv": {
                "uncached_seconds": 0.8,
                "cached_seconds": 0.5,
                "speedup": 1.6,
                "byte_identical": True,
                "macro_f1": 0.9,
                "cache_hits": 2,
                "cache_misses": 2,
            },
        }

    def _run(self, monkeypatch, tmp_path, report, argv):
        import json

        import repro.cli as cli

        monkeypatch.setattr(cli, "run_benchmark", lambda config: report)
        out = io.StringIO()
        output = tmp_path / "current.json"
        code = cli.main(
            ["bench", "--quick", "--output", str(output)] + argv, out=out
        )
        written = (
            json.loads(output.read_text(encoding="utf-8"))
            if output.exists()
            else None
        )
        return code, out.getvalue(), written

    def test_missing_baseline_exits_two(self, monkeypatch, tmp_path):
        code, text, _ = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(tmp_path / "absent.json")],
        )
        assert code == 2
        assert "cannot load baseline" in text

    def test_incompatible_baseline_exits_two(self, monkeypatch, tmp_path):
        import json

        baseline = self._report()
        baseline["config"]["rows"] = 9999
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        code, text, _ = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(path)],
        )
        assert code == 2
        assert "different workload" in text

    def test_regression_exits_one(self, monkeypatch, tmp_path):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._report()), encoding="utf-8")
        code, text, written = self._run(
            monkeypatch, tmp_path, self._report(fit_seconds=2.0),
            ["--baseline", str(path)],
        )
        assert code == 1
        assert "REGRESSED" in text
        assert written["baseline_comparison"]["regressions"] == [
            "fit_seconds"
        ]

    def test_clean_diff_exits_zero_and_embeds_comparison(
        self, monkeypatch, tmp_path
    ):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._report()), encoding="utf-8")
        code, text, written = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(path), "--baseline-tolerance", "0.5"],
        )
        assert code == 0
        assert "no regressions" in text
        comparison = written["baseline_comparison"]
        assert comparison["tolerance"] == 0.5
        assert comparison["regressions"] == []
