"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import main
from repro.io.annotations import load_corpus


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "input.csv"
    path.write_text(
        "Annual Report\n"
        ",,,\n"
        "Region;Q1;Q2\n".replace(";", ",")
        + "North,5,7\nSouth,6,8\nTotal,11,15\n",
        encoding="utf-8",
    )
    return path


class TestDetect:
    def test_detect_comma(self, csv_file):
        out = io.StringIO()
        assert main(["detect", str(csv_file)], out=out) == 0
        assert "delimiter=','" in out.getvalue()

    def test_detect_semicolon(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_text("a;1\nb;2\nc;3\n", encoding="utf-8")
        out = io.StringIO()
        main(["detect", str(path)], out=out)
        assert "delimiter=';'" in out.getvalue()


class TestIngestFlags:
    """The detect/classify commands share the hardened ingestion path:
    lenient repairs warn on stderr, ``--strict`` refuses with exit 2."""

    def test_detect_latin1_file_no_longer_crashes(self, tmp_path):
        path = tmp_path / "latin.csv"
        path.write_bytes(
            "name,city\nRené,Köln\nJosé,Málaga\n".encode("latin-1")
        )
        out = io.StringIO()
        assert main(["detect", str(path)], out=out) == 0
        assert "delimiter=','" in out.getvalue()

    def test_detect_lenient_warns_on_stderr(self, tmp_path, capsys):
        path = tmp_path / "nul.csv"
        path.write_bytes(b"a,\x00b\n1,2\n3,4\n")
        out = io.StringIO()
        assert main(["detect", str(path)], out=out) == 0
        err = capsys.readouterr().err
        assert str(path) in err
        assert "NUL" in err

    def test_detect_strict_rejects_with_exit_two(self, tmp_path, capsys):
        path = tmp_path / "nul.csv"
        path.write_bytes(b"a,\x00b\n1,2\n")
        out = io.StringIO()
        assert main(["detect", str(path), "--strict"], out=out) == 2
        assert "NUL" in capsys.readouterr().err

    def test_detect_encoding_flag(self, tmp_path):
        path = tmp_path / "cp.csv"
        path.write_bytes("a,ä\nb,ö\nc,ü\n".encode("cp1252"))
        out = io.StringIO()
        code = main(
            ["detect", str(path), "--encoding", "cp1252"], out=out
        )
        assert code == 0

    def test_clean_file_stays_quiet(self, csv_file, capsys):
        out = io.StringIO()
        assert main(["detect", str(csv_file)], out=out) == 0
        assert capsys.readouterr().err == ""

    def test_classify_strict_rejects_lying_bom(self, tmp_path):
        import codecs

        path = tmp_path / "bom.csv"
        path.write_bytes(codecs.BOM_UTF16_LE + b"abc")
        out = io.StringIO()
        code = main(
            ["classify", str(path), "--strict",
             "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 2

    def test_classify_utf8_sig_file(self, tmp_path):
        path = tmp_path / "sig.csv"
        path.write_text(
            "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n",
            encoding="utf-8-sig",
        )
        out = io.StringIO()
        code = main(
            ["classify", str(path), "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 0
        assert "data" in out.getvalue()


class TestClassify:
    def test_classify_prints_line_classes(self, csv_file):
        out = io.StringIO()
        code = main(
            [
                "classify", str(csv_file),
                "--scale", "0.05", "--trees", "8", "--cells",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "dialect:" in text
        assert "data" in text
        assert "header" in text or "metadata" in text

    def test_classify_directory_sweeps_with_cache(self, tmp_path, capsys):
        """A directory argument sweeps every *.csv through the engine;
        a second run against the same sweep cache is all hits."""
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        for name in ("a", "b", "c"):
            (corpus / f"{name}.csv").write_text(
                "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n",
                encoding="utf-8",
            )
        args = [
            "classify", str(corpus), "--scale", "0.05", "--trees", "8",
            "--jobs", "2", "--sweep-cache", str(tmp_path / "cache"),
        ]
        out = io.StringIO()
        assert main(args, out=out) == 0
        text = out.getvalue()
        assert "a.csv" in text and "c.csv" in text
        assert "swept 3/3 sources (0 cached" in text

        out = io.StringIO()
        assert main(args, out=out) == 0
        assert "swept 3/3 sources (3 cached" in out.getvalue()

    def test_classify_empty_directory_exits_two(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        out = io.StringIO()
        code = main(
            ["classify", str(empty), "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 2

    def test_unknown_encoding_exits_two(self, csv_file, capsys):
        # Regression: ``--encoding uft-8`` used to be silently dropped
        # by the fallback chain; it is now a usage error.
        code = main(
            ["classify", str(csv_file), "--encoding", "uft-8",
             "--scale", "0.05", "--trees", "8"],
            out=io.StringIO(),
        )
        assert code == 2
        assert "uft-8" in capsys.readouterr().err

    def test_classify_lake_sweeps_every_container(self, tmp_path):
        """Acceptance: loose CSVs + a zip + a tar + NDJSON in one
        directory all classify through io.ingest, each line labelled
        with its provenance locator."""
        import tarfile
        import zipfile

        rows = "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\nTotal,11,15\n"
        lake = tmp_path / "lake"
        (lake / "sub").mkdir(parents=True)
        (lake / "loose.csv").write_text(rows, encoding="utf-8")
        (lake / "sub" / "upper.CSV").write_text(rows, encoding="utf-8")
        with zipfile.ZipFile(lake / "arch.zip", "w") as archive:
            archive.writestr("member.csv", rows)
        with tarfile.open(lake / "arch.tar", "w") as archive:
            csv_path = lake / "loose.csv"
            archive.add(csv_path, arcname="tarred.csv")
        (lake / "log.ndjson").write_text(
            '{"region": "North", "q1": 5}\n{"region": "South", "q1": 6}\n',
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(
            ["classify", str(lake), "--scale", "0.05", "--trees", "8"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "swept 5/5 sources" in text
        assert "arch.zip!member.csv" in text
        assert "arch.tar!tarred.csv" in text
        assert "log.ndjson!records" in text
        assert "upper.CSV" in text

    def test_classify_single_archive_sweeps_members(self, tmp_path):
        import zipfile

        rows = "Region,Q1\nNorth,5\nSouth,6\n"
        archive_path = tmp_path / "only.zip"
        with zipfile.ZipFile(archive_path, "w") as archive:
            archive.writestr("one.csv", rows)
            archive.writestr("two.csv", rows)
        out = io.StringIO()
        code = main(
            ["classify", str(archive_path), "--scale", "0.05",
             "--trees", "8"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "swept 2/2 sources" in text
        assert "only.zip!one.csv" in text


class TestLint:
    def test_clean_file_exits_zero(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("def f(x=None):\n    return x\n",
                         encoding="utf-8")
        out = io.StringIO()
        assert main(["lint", str(clean)], out=out) == 0
        assert "no findings" in out.getvalue()

    def test_findings_exit_one_with_json(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(x={}):\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(["lint", str(bad), "--format", "json"], out=out)
        assert code == 1
        payload = json.loads(out.getvalue())
        assert payload["count"] == 2
        assert payload["by_rule"] == {"R001": 1, "R005": 1}

    def test_select_limits_rules(self, tmp_path):
        import json

        bad = tmp_path / "bad.py"
        bad.write_text(
            "import random\n"
            "def f(x={}):\n"
            "    return random.random()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        code = main(
            ["lint", str(bad), "--format", "json",
             "--select", "R005"],
            out=out,
        )
        assert code == 1
        assert json.loads(out.getvalue())["by_rule"] == {"R005": 1}

    @staticmethod
    def _ingest_bypass_tree(tmp_path):
        """A mini repro-shaped tree where a module decodes bytes into a
        Table outside io.ingest (triggers the project rule R101)."""
        pkg = tmp_path / "repro"
        (pkg / "io").mkdir(parents=True)
        (pkg / "types.py").write_text(
            "class Table:\n    pass\n", encoding="utf-8"
        )
        (pkg / "io" / "ingest.py").write_text(
            "from repro.types import Table\n"
            "\n"
            "def ingest_bytes(raw):\n"
            "    return Table()\n",
            encoding="utf-8",
        )
        (pkg / "sneaky.py").write_text(
            "from repro.types import Table\n"
            "\n"
            "def shortcut(raw):\n"
            "    return Table(raw.decode('utf-8'))\n",
            encoding="utf-8",
        )
        return pkg

    def test_select_accepts_commas_and_repeats(self, tmp_path):
        import json

        pkg = self._ingest_bypass_tree(tmp_path)
        out = io.StringIO()
        code = main(
            ["lint", str(pkg), "--format", "json",
             "--select", "R002,R101", "--select", "R005"],
            out=out,
        )
        assert code == 1
        assert json.loads(out.getvalue())["by_rule"] == {"R101": 1}

    def test_no_graph_skips_project_rules(self, tmp_path):
        pkg = self._ingest_bypass_tree(tmp_path)
        out = io.StringIO()
        assert main(["lint", str(pkg)], out=out) == 1
        assert "R101" in out.getvalue()
        out = io.StringIO()
        assert main(["lint", str(pkg), "--no-graph"], out=out) == 0

    def test_shipped_package_is_clean(self):
        out = io.StringIO()
        assert main(["lint"], out=out) == 0

    def test_unknown_rule_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert main(
            ["lint", str(clean), "--select", "R999"], out=out
        ) == 2

    def test_unknown_rule_in_comma_list_is_usage_error(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        out = io.StringIO()
        assert main(
            ["lint", str(clean), "--select", "R005,R999"], out=out
        ) == 2

    def test_missing_path_is_usage_error(self, tmp_path):
        out = io.StringIO()
        code = main(["lint", str(tmp_path / "absent.py")], out=out)
        assert code == 2

    def test_unparseable_file_reported_as_r000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        out = io.StringIO()
        assert main(["lint", str(bad)], out=out) == 1
        assert "R000" in out.getvalue()


class TestGenerate:
    def test_generate_writes_corpus(self, tmp_path):
        out = io.StringIO()
        code = main(
            [
                "generate", "troy", str(tmp_path / "corpus"),
                "--scale", "0.02", "--seed", "1",
            ],
            out=out,
        )
        assert code == 0
        csv_files = list((tmp_path / "corpus" / "csv").glob("*.csv"))
        assert len(csv_files) >= 2
        corpus = load_corpus(tmp_path / "corpus" / "annotations")
        assert len(corpus) == len(csv_files)

    def test_bad_corpus_name_rejected(self):
        with pytest.raises(SystemExit):
            main(["generate", "nope", "/tmp/x"])


class TestBenchBaseline:
    """CLI wiring of the baseline diff mode (run_benchmark stubbed so
    these stay fast; the diff logic itself is tested in test_perf)."""

    @staticmethod
    def _report(fit_seconds: float = 1.0) -> dict:
        from repro.perf.bench import BenchConfig
        from dataclasses import asdict

        return {
            "schema": "repro-bench/1",
            "config": asdict(BenchConfig.quick_config()),
            "fit_seconds": fit_seconds,
            "stages": {"parsing": 0.01, "profile": 0.02},
            "analyze": {
                "legacy_two_pass_seconds": 0.3,
                "single_pass_seconds": 0.2,
                "cached_seconds": 0.05,
                "single_pass_speedup": 1.5,
                "analyze_speedup": 6.0,
                "cache_hits": 2,
                "cache_misses": 1,
            },
            "cv": {
                "uncached_seconds": 0.8,
                "cached_seconds": 0.5,
                "speedup": 1.6,
                "byte_identical": True,
                "macro_f1": 0.9,
                "cache_hits": 2,
                "cache_misses": 2,
            },
        }

    def _run(self, monkeypatch, tmp_path, report, argv):
        import json

        import repro.cli as cli

        monkeypatch.setattr(cli, "run_benchmark", lambda config: report)
        out = io.StringIO()
        output = tmp_path / "current.json"
        code = cli.main(
            ["bench", "--quick", "--output", str(output)] + argv, out=out
        )
        written = (
            json.loads(output.read_text(encoding="utf-8"))
            if output.exists()
            else None
        )
        return code, out.getvalue(), written

    def test_missing_baseline_exits_two(self, monkeypatch, tmp_path):
        code, text, _ = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(tmp_path / "absent.json")],
        )
        assert code == 2
        assert "cannot load baseline" in text

    def test_incompatible_baseline_exits_two(self, monkeypatch, tmp_path):
        import json

        baseline = self._report()
        baseline["config"]["rows"] = 9999
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline), encoding="utf-8")
        code, text, _ = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(path)],
        )
        assert code == 2
        assert "different workload" in text

    def test_regression_exits_one(self, monkeypatch, tmp_path):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._report()), encoding="utf-8")
        code, text, written = self._run(
            monkeypatch, tmp_path, self._report(fit_seconds=2.0),
            ["--baseline", str(path)],
        )
        assert code == 1
        assert "REGRESSED" in text
        assert written["baseline_comparison"]["regressions"] == [
            "fit_seconds"
        ]

    def test_clean_diff_exits_zero_and_embeds_comparison(
        self, monkeypatch, tmp_path
    ):
        import json

        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(self._report()), encoding="utf-8")
        code, text, written = self._run(
            monkeypatch, tmp_path, self._report(),
            ["--baseline", str(path), "--baseline-tolerance", "0.5"],
        )
        assert code == 0
        assert "no regressions" in text
        comparison = written["baseline_comparison"]
        assert comparison["tolerance"] == 0.5
        assert comparison["regressions"] == []


class TestFailOnSkip:
    """``classify <dir> --fail-on-skip``: skips flip the exit code."""

    @staticmethod
    def _mixed_dir(tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "good.csv").write_text(
            "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\n", encoding="utf-8"
        )
        (corpus / "damaged.csv").write_bytes(b"a,\x00b\n1,2\n3,4\n")
        return corpus

    def _sweep(self, corpus, *extra):
        out = io.StringIO()
        code = main(
            [
                "classify", str(corpus), "--scale", "0.05",
                "--trees", "8", "--strict", *extra,
            ],
            out=out,
        )
        return code, out.getvalue()

    def test_skips_exit_zero_by_default(self, tmp_path, capsys):
        corpus = self._mixed_dir(tmp_path)
        code, text = self._sweep(corpus)
        assert code == 0
        assert "1 skipped" in text
        assert "damaged.csv" in capsys.readouterr().err

    def test_fail_on_skip_exits_one(self, tmp_path, capsys):
        corpus = self._mixed_dir(tmp_path)
        code, text = self._sweep(corpus, "--fail-on-skip")
        assert code == 1
        assert "swept 1/2 sources" in text

    def test_clean_sweep_passes_with_the_flag(self, tmp_path):
        corpus = tmp_path / "corpus"
        corpus.mkdir()
        (corpus / "good.csv").write_text(
            "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\n", encoding="utf-8"
        )
        code, text = self._sweep(corpus, "--fail-on-skip")
        assert code == 0
        assert "0 skipped" in text


class TestDlqCommand:
    """``repro dlq list|replay|purge`` over a queue on disk."""

    DAMAGED = b"Region,Q1\nNorth,\x005\nSouth,6\n"

    @staticmethod
    def _queue(tmp_path):
        from repro.serve import DeadLetterQueue

        return DeadLetterQueue(
            tmp_path / "dlq", clock=lambda: "2026-01-01T00:00:00+00:00"
        )

    def test_list_names_records_and_count(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.append(
            "r1", "damaged.csv", "classify", "NUL byte",
            payload=self.DAMAGED,
        )
        out = io.StringIO()
        assert main(
            ["dlq", "list", "--dlq", str(tmp_path / "dlq")], out=out
        ) == 0
        text = out.getvalue()
        assert "r1\tclassify\tdamaged.csv" in text
        assert "1 dead letter(s)" in text

    def test_replay_empty_queue_is_a_cheap_noop(self, tmp_path):
        out = io.StringIO()
        assert main(
            ["dlq", "replay", "--dlq", str(tmp_path / "dlq")], out=out
        ) == 0
        assert "nothing to replay" in out.getvalue()

    def test_lenient_replay_recovers_and_exits_zero(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.append(
            "r1", "damaged.csv", "classify", "NUL byte",
            payload=self.DAMAGED,
        )
        out = io.StringIO()
        code = main(
            [
                "dlq", "replay", "--dlq", str(tmp_path / "dlq"),
                "--scale", "0.05", "--trees", "8",
            ],
            out=out,
        )
        assert code == 0
        assert "1 recovered" in out.getvalue()
        assert len(queue) == 0

    def test_strict_replay_keeps_the_record_and_exits_one(
        self, tmp_path
    ):
        queue = self._queue(tmp_path)
        queue.append(
            "r1", "damaged.csv", "classify", "NUL byte",
            payload=self.DAMAGED,
        )
        out = io.StringIO()
        code = main(
            [
                "dlq", "replay", "--dlq", str(tmp_path / "dlq"),
                "--scale", "0.05", "--trees", "8", "--strict",
            ],
            out=out,
        )
        assert code == 1
        assert "1 still dead" in out.getvalue()
        (record,) = queue.records()
        assert record.replays == 1

    def test_purge_empties_the_queue(self, tmp_path):
        queue = self._queue(tmp_path)
        queue.append("r1", "a.csv", "read", "gone")
        out = io.StringIO()
        assert main(
            ["dlq", "purge", "--dlq", str(tmp_path / "dlq")], out=out
        ) == 0
        assert "purged 1 dead letter(s)" in out.getvalue()
        assert len(queue) == 0


class TestServeCommand:
    def test_bad_queue_size_exits_two(self, capsys):
        out = io.StringIO()
        code = main(
            [
                "serve", "--scale", "0.02", "--trees", "4",
                "--queue-size", "0",
            ],
            out=out,
        )
        assert code == 2
        assert "queue_size" in capsys.readouterr().err

    def test_sigint_under_load_drains_cleanly(self, tmp_path):
        """The lifecycle acceptance story end to end: a served process
        answers TCP requests, takes SIGINT mid-conversation, drains,
        and exits 0 with the final counts on stdout."""
        import json
        import os
        import re
        import signal
        import socket
        import subprocess
        import sys
        import time
        from pathlib import Path

        good = tmp_path / "good.csv"
        good.write_text(
            "Region,Q1,Q2\nNorth,5,7\nSouth,6,8\n", encoding="utf-8"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--scale", "0.02", "--trees", "4", "--port", "0",
                "--dlq", str(tmp_path / "dlq"),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            while banner and "listening on" not in banner:
                banner = proc.stdout.readline()
            match = re.search(r"listening on [^:]+:(\d+)", banner)
            assert match, banner
            port = int(match.group(1))
            with socket.create_connection(
                ("127.0.0.1", port), timeout=30
            ) as sock:
                handle = sock.makefile("rwb")
                for request_id in ("r1", "r2"):
                    handle.write(
                        json.dumps(
                            {
                                "id": request_id,
                                "op": "classify",
                                "path": str(good),
                            }
                        ).encode("utf-8") + b"\n"
                    )
                    handle.flush()
                    response = json.loads(handle.readline())
                    assert response["id"] == request_id
                    assert response["ok"] is True
                proc.send_signal(signal.SIGINT)
                time.sleep(0.1)
            stdout, stderr = proc.communicate(timeout=120)
        except BaseException:
            proc.kill()
            raise
        assert proc.returncode == 0, stderr
        assert "served 2/2 requests (0 dead-lettered)" in stdout
