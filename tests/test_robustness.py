"""Failure-injection and edge-case robustness tests.

A production library must not fall over on degenerate inputs: garbage
text, single-cell files, corpora missing entire classes, absurd
dialects.  These tests drive those paths end to end.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.strudel import (
    StrudelCellClassifier,
    StrudelLineClassifier,
    StrudelPipeline,
)
from repro.types import AnnotatedFile, CellClass, Table


@pytest.fixture(scope="module")
def pipeline(tiny_corpus):
    model = StrudelPipeline(n_estimators=8, random_state=0)
    model.fit(tiny_corpus.files[:8])
    return model


class TestDegenerateInputs:
    def test_garbage_text(self, pipeline):
        result = pipeline.analyze("@@@###$$$\n%%%^^^&&&\n!!!***(((\n")
        assert len(result.line_classes) == result.table.n_rows

    def test_single_cell_file(self, pipeline):
        result = pipeline.analyze("hello\n")
        assert len(result.line_classes) == 1
        assert result.line_classes[0] is not CellClass.EMPTY

    def test_numbers_only_file(self, pipeline):
        result = pipeline.analyze("1,2,3\n4,5,6\n7,8,9\n")
        data_lines = sum(
            1 for klass in result.line_classes if klass is CellClass.DATA
        )
        # A bare numeric block has no metadata/notes signal; at least
        # part of it must read as data (tiny training models waver on
        # the margins of a three-line file).
        assert data_lines >= 1

    def test_very_wide_single_row(self, pipeline):
        text = ",".join(str(i) for i in range(200)) + "\n"
        result = pipeline.analyze(text)
        assert result.table.n_cols == 200

    def test_file_of_blank_lines(self, pipeline):
        result = pipeline.analyze(",,,\n,,,\n,,,\n")
        # Cropping collapses the all-empty file to the 1x1 sentinel.
        assert result.table.shape == (1, 1)

    def test_unicode_content(self, pipeline):
        result = pipeline.analyze("Bericht über Umsätze\nRegion,Wert\nKöln,42\n")
        assert len(result.cell_classes) > 0


class TestMissingClasses:
    def _two_class_corpus(self):
        """Files containing only header and data lines."""
        files = []
        for index in range(4):
            rows = [["col a", "col b"]] + [
                [str(10 * index + i), str(20 * index + i)] for i in range(4)
            ]
            labels = [CellClass.HEADER] + [CellClass.DATA] * 4
            cell_labels = [
                [labels[i]] * 2 for i in range(5)
            ]
            files.append(
                AnnotatedFile(
                    name=f"two_{index}",
                    table=Table(rows),
                    line_labels=labels,
                    cell_labels=cell_labels,
                )
            )
        return files

    def test_line_classifier_with_two_classes(self):
        files = self._two_class_corpus()
        model = StrudelLineClassifier(n_estimators=5, random_state=0)
        model.fit(files)
        proba = model.predict_proba(files[0].table)
        # Probability matrix stays 6-wide; absent classes get zero mass.
        assert proba.shape == (5, 6)
        assert np.allclose(proba.sum(axis=1), 1.0)
        predictions = model.predict(files[0].table)
        assert set(predictions) <= {CellClass.HEADER, CellClass.DATA}

    def test_cell_classifier_with_two_classes(self):
        files = self._two_class_corpus()
        model = StrudelCellClassifier(n_estimators=5, random_state=0)
        model.fit(files)
        predictions = model.predict(files[0].table)
        assert set(predictions.values()) <= {
            CellClass.HEADER, CellClass.DATA,
        }


class TestFeatureRobustness:
    def test_features_finite_on_pathological_tables(self):
        from repro.core.cell_features import CellFeatureExtractor
        from repro.core.line_features import LineFeatureExtractor

        pathological = [
            Table([["x"]]),
            Table([[""] * 5] * 3),
            Table([["a" * 500, "1" * 300]]),
            Table([[",", '"', "\\"]]),
            Table([[str(10**15), str(-(10**15))]] * 3),
        ]
        for table in pathological:
            line_features = LineFeatureExtractor().extract(table)
            assert np.isfinite(line_features).all()
            _, cell_features = CellFeatureExtractor().extract(table)
            assert np.isfinite(cell_features).all()

    def test_derived_detector_handles_huge_values(self):
        from repro.core.derived import DerivedDetector

        table = Table(
            [
                ["a", str(10**12)],
                ["b", str(2 * 10**12)],
                ["Total", str(3 * 10**12)],
            ]
        )
        assert (2, 1) in DerivedDetector().detect(table)
