"""Tests for the bidirectional sequence RNN (:mod:`repro.ml.rnn`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.rnn import SequenceRNNClassifier, _Adam, _pad


def _emission_task(seed=0, n_sequences=40):
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for _ in range(n_sequences):
        length = int(rng.integers(3, 8))
        X = rng.normal(size=(length, 3))
        y = (X[:, 0] > 0).astype(int)
        sequences.append(X)
        labels.append(y)
    return sequences, labels


def _context_task(seed=0, n_sequences=60):
    """The label of every position equals the sign of the FIRST
    element of the sequence — solvable only via the recurrence."""
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for _ in range(n_sequences):
        length = int(rng.integers(3, 7))
        X = rng.normal(size=(length, 2)) * 0.1
        lead = rng.choice([-1.0, 1.0])
        X[0, 0] = lead * 3.0
        y = np.full(length, int(lead > 0))
        sequences.append(X)
        labels.append(y)
    return sequences, labels


class TestTraining:
    def test_learns_emission_signal(self):
        sequences, labels = _emission_task()
        rnn = SequenceRNNClassifier(
            hidden_size=16, epochs=20, random_state=0
        ).fit(sequences, labels)
        predictions = rnn.predict(sequences)
        accuracy = np.mean(
            [(p == y).mean() for p, y in zip(predictions, labels)]
        )
        assert accuracy > 0.9

    def test_propagates_context_along_sequence(self):
        sequences, labels = _context_task()
        rnn = SequenceRNNClassifier(
            hidden_size=16, epochs=40, learning_rate=2e-2, random_state=0
        ).fit(sequences, labels)
        predictions = rnn.predict(sequences)
        accuracy = np.mean(
            [(p == y).mean() for p, y in zip(predictions, labels)]
        )
        # Per-position features alone cannot beat 0.5 by much; the
        # recurrence must carry the first element's sign forward.
        assert accuracy > 0.85

    def test_seed_determinism(self):
        sequences, labels = _emission_task()
        a = SequenceRNNClassifier(epochs=3, random_state=9).fit(
            sequences, labels
        )
        b = SequenceRNNClassifier(epochs=3, random_state=9).fit(
            sequences, labels
        )
        pa = a.predict_proba(sequences[:3])
        pb = b.predict_proba(sequences[:3])
        for x, y in zip(pa, pb):
            assert np.allclose(x, y)

    def test_label_values_preserved(self):
        sequences, labels = _emission_task()
        shifted = [y + 5 for y in labels]
        rnn = SequenceRNNClassifier(epochs=5, random_state=0).fit(
            sequences, shifted
        )
        assert set(np.concatenate(rnn.predict(sequences))) <= {5, 6}


class TestValidationAndShapes:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SequenceRNNClassifier().fit([], [])

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            SequenceRNNClassifier(hidden_size=0)
        with pytest.raises(InvalidParameterError):
            SequenceRNNClassifier(epochs=0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            SequenceRNNClassifier().predict([np.zeros((2, 3))])

    def test_proba_shapes_and_normalization(self):
        sequences, labels = _emission_task(n_sequences=10)
        rnn = SequenceRNNClassifier(epochs=3, random_state=0).fit(
            sequences, labels
        )
        probabilities = rnn.predict_proba(sequences[:4])
        for seq, proba in zip(sequences[:4], probabilities):
            assert proba.shape == (len(seq), 2)
            assert np.allclose(proba.sum(axis=1), 1.0)

    def test_pad_masks(self):
        X, mask = _pad([np.ones((2, 3)), np.ones((4, 3))])
        assert X.shape == (2, 4, 3)
        assert mask[0].tolist() == [True, True, False, False]
        assert mask[1].all()


class TestGradient:
    def test_finite_difference_on_output_layer(self):
        """Analytic gradients of the output layer match finite
        differences (spot check on a tiny network)."""
        rng = np.random.default_rng(0)
        rnn = SequenceRNNClassifier(hidden_size=4, random_state=0)
        rnn.classes_ = np.array([0, 1])
        rnn.n_features_ = 2
        params = rnn._init_params(2, 2, rng)
        X, mask = _pad([rng.normal(size=(3, 2))])
        y = np.array([[0, 1, 0]])

        loss, grads = rnn._loss_and_grads(params, X, mask, y)
        eps = 1e-6
        for key in ("Wo", "Wx_f", "Wh_b", "b_f"):
            flat_index = 0  # probe the first entry of each array
            perturbed = {k: v.copy() for k, v in params.items()}
            perturbed[key].flat[flat_index] += eps
            up = rnn._loss_and_grads(perturbed, X, mask, y)[0]
            perturbed[key].flat[flat_index] -= 2 * eps
            down = rnn._loss_and_grads(perturbed, X, mask, y)[0]
            numeric = (up - down) / (2 * eps)
            assert grads[key].flat[flat_index] == pytest.approx(
                numeric, abs=1e-4
            )


class TestAdam:
    def test_step_moves_parameters_against_gradient(self):
        params = {"w": np.array([1.0, -1.0])}
        adam = _Adam(params, lr=0.1)
        adam.step(params, {"w": np.array([1.0, -1.0])})
        assert params["w"][0] < 1.0
        assert params["w"][1] > -1.0
