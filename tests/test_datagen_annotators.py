"""Tests for the simulated annotation protocol."""

from __future__ import annotations

import pytest

from repro.datagen.annotators import (
    CONFUSION_PRIOR,
    AnnotationReport,
    NoisyAnnotator,
    annotate_corpus,
)
from repro.errors import GenerationError
from repro.types import CONTENT_CLASSES, CellClass


class TestNoisyAnnotator:
    def test_zero_error_is_perfect(self, tiny_corpus):
        annotator = NoisyAnnotator(0.0, rng=0)
        annotated = tiny_corpus.files[0]
        assert annotator.annotate_file(annotated) == annotated.line_labels

    def test_error_rate_roughly_respected(self):
        annotator = NoisyAnnotator(0.3, rng=0)
        flips = sum(
            annotator.annotate_line(CellClass.DATA) is not CellClass.DATA
            for _ in range(2000)
        )
        assert 0.2 < flips / 2000 < 0.4

    def test_mistakes_follow_confusion_prior(self):
        annotator = NoisyAnnotator(0.9, rng=1)
        outcomes = {
            annotator.annotate_line(CellClass.DERIVED) for _ in range(500)
        }
        allowed = {CellClass.DERIVED} | {
            klass for klass, _ in CONFUSION_PRIOR[CellClass.DERIVED]
        }
        assert outcomes <= allowed

    def test_empty_lines_never_flipped(self):
        annotator = NoisyAnnotator(0.9, rng=0)
        assert annotator.annotate_line(CellClass.EMPTY) is CellClass.EMPTY

    def test_validation(self):
        with pytest.raises(GenerationError):
            NoisyAnnotator(1.0)
        with pytest.raises(GenerationError):
            NoisyAnnotator(-0.1)


class TestReconciliation:
    def test_majority_vote_cleans_noise(self, tiny_corpus):
        """Reconciled labels beat a single annotator's error rate."""
        reconciled, report = annotate_corpus(
            tiny_corpus, error_rate=0.05, seed=0
        )
        # With 5% independent errors the majority is wrong only when
        # two annotators err identically — far rarer than 5%.
        assert report.residual_error_rate < 0.05
        assert report.total_lines == tiny_corpus.total_lines()

    def test_paper_scale_disagreement(self, tiny_corpus):
        """At a ~1% per-annotator error rate the disagreement share is
        a few percent and ties are vanishingly rare — consistent with
        the paper's 1% disagreement / <250 full ties."""
        _, report = annotate_corpus(tiny_corpus, error_rate=0.01, seed=0)
        assert report.disagreement_rate < 0.1
        assert report.tie_broken <= report.majority_resolved

    def test_zero_noise_is_lossless(self, tiny_corpus):
        reconciled, report = annotate_corpus(
            tiny_corpus, error_rate=0.0, seed=0
        )
        assert report.disagreement_rate == 0.0
        assert report.residual_error_rate == 0.0
        for original, cleaned in zip(tiny_corpus, reconciled):
            assert original.line_labels == cleaned.line_labels

    def test_counts_partition(self, tiny_corpus):
        _, report = annotate_corpus(tiny_corpus, error_rate=0.2, seed=0)
        assert (
            report.unanimous + report.majority_resolved + report.tie_broken
            == report.total_lines
        )

    def test_report_properties_on_empty(self):
        report = AnnotationReport(0, 0, 0, 0, 0)
        assert report.disagreement_rate == 0.0
        assert report.residual_error_rate == 0.0

    def test_tables_preserved(self, tiny_corpus):
        reconciled, _ = annotate_corpus(tiny_corpus, error_rate=0.1, seed=0)
        for original, cleaned in zip(tiny_corpus, reconciled):
            assert original.table is cleaned.table
