"""Tier-1 gate: the shipped source tree has zero lint findings.

This is the enforcement half of ``repro.analysis``: every invariant
the rules encode (seed threading, layer boundaries, feature
contracts, deterministic iteration, no mutable defaults) holds for
``src/repro`` on every commit.  A deliberate waiver must be spelled
``# repro: noqa[RULE-ID]`` at the offending line, which keeps the
exception visible in review instead of in this test.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths, render_text

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def test_source_tree_exists():
    assert SRC.is_dir(), f"expected source tree at {SRC}"


def test_source_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n" + render_text(findings)
