"""Tests for the core data model (:mod:`repro.types`)."""

from __future__ import annotations

import pytest

from repro.errors import AnnotationError
from repro.types import (
    CLASS_TO_INDEX,
    CONTENT_CLASSES,
    INDEX_TO_CLASS,
    AnnotatedFile,
    Cell,
    CellClass,
    Corpus,
    Table,
)


class TestTable:
    def test_rows_padded_to_common_width(self):
        table = Table([["a"], ["b", "c", "d"], []])
        assert table.shape == (3, 3)
        assert table.row(0) == ["a", "", ""]
        assert table.row(2) == ["", "", ""]

    def test_empty_input_yields_zero_rows(self):
        table = Table([])
        assert table.shape == (0, 0)
        assert table.count_non_empty_cells() == 0

    def test_cell_access(self):
        table = Table([["a", "b"], ["c", "d"]])
        assert table.cell(1, 0) == "c"
        with pytest.raises(IndexError):
            table.cell(-1, 0)
        with pytest.raises(IndexError):
            table.cell(0, 5)

    def test_column_access(self):
        table = Table([["a", "b"], ["c", "d"]])
        assert table.column(1) == ["b", "d"]
        with pytest.raises(IndexError):
            table.column(2)

    def test_whitespace_counts_as_empty(self):
        table = Table([["  ", "\t", "x"]])
        assert table.is_empty_cell(0, 0)
        assert table.is_empty_cell(0, 1)
        assert not table.is_empty_cell(0, 2)
        assert table.count_non_empty_cells() == 1

    def test_empty_row_and_column(self):
        table = Table([["", "x"], ["", "y"]])
        assert table.is_empty_column(0)
        assert not table.is_empty_column(1)
        assert not table.is_empty_row(0)

    def test_non_empty_cells_row_major(self):
        table = Table([["a", ""], ["", "b"]])
        cells = list(table.non_empty_cells())
        assert cells == [Cell(0, 0, "a"), Cell(1, 1, "b")]

    def test_count_non_empty_rows(self):
        table = Table([["a"], [""], ["b"]])
        assert table.count_non_empty_rows() == 2

    def test_equality_and_hash(self):
        a = Table([["x", "y"]])
        b = Table([["x", "y"]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Table([["x", "z"]])

    def test_row_copies_are_independent(self):
        table = Table([["a", "b"]])
        row = table.row(0)
        row[0] = "mutated"
        assert table.cell(0, 0) == "a"


class TestCell:
    def test_is_empty(self):
        assert Cell(0, 0, "  ").is_empty
        assert not Cell(0, 0, "x").is_empty


class TestClassEncoding:
    def test_six_content_classes(self):
        assert len(CONTENT_CLASSES) == 6
        assert CellClass.EMPTY not in CONTENT_CLASSES

    def test_round_trip(self):
        for klass, index in CLASS_TO_INDEX.items():
            assert INDEX_TO_CLASS[index] is klass

    def test_canonical_order(self):
        assert [c.value for c in CONTENT_CLASSES] == [
            "metadata", "header", "group", "data", "derived", "notes",
        ]


class TestAnnotatedFile:
    def test_validation_rejects_wrong_line_label_count(self):
        table = Table([["a"], ["b"]])
        with pytest.raises(AnnotationError):
            AnnotatedFile(
                name="bad",
                table=table,
                line_labels=[CellClass.DATA],
                cell_labels=[[CellClass.DATA], [CellClass.DATA]],
            )

    def test_validation_rejects_ragged_cell_labels(self):
        table = Table([["a", "b"]])
        with pytest.raises(AnnotationError):
            AnnotatedFile(
                name="bad",
                table=table,
                line_labels=[CellClass.DATA],
                cell_labels=[[CellClass.DATA]],
            )

    def test_non_empty_line_indices(self, verbose_file):
        assert verbose_file.non_empty_line_indices() == [0, 2, 3, 4, 5, 7]

    def test_non_empty_line_labels(self, verbose_file):
        labels = verbose_file.non_empty_line_labels()
        assert labels[0] is CellClass.METADATA
        assert labels[-1] is CellClass.NOTES

    def test_non_empty_cell_items_cover_all_content(self, verbose_file):
        items = verbose_file.non_empty_cell_items()
        assert len(items) == verbose_file.table.count_non_empty_cells()
        assert all(label is not CellClass.EMPTY for _, _, label in items)

    def test_diversity_degree(self, verbose_file):
        assert verbose_file.line_diversity_degree(0) == 1  # metadata only
        assert verbose_file.line_diversity_degree(1) == 0  # empty line
        assert verbose_file.line_diversity_degree(5) == 2  # group+derived


class TestCorpus:
    def test_len_and_iter(self, verbose_file):
        corpus = Corpus(name="c", files=[verbose_file])
        assert len(corpus) == 1
        assert list(corpus) == [verbose_file]

    def test_totals(self, verbose_file):
        corpus = Corpus(name="c", files=[verbose_file, verbose_file])
        assert corpus.total_lines() == 12
        assert corpus.total_cells() == 2 * verbose_file.table.count_non_empty_cells()

    def test_merged_with(self, verbose_file):
        a = Corpus(name="a", files=[verbose_file])
        b = Corpus(name="b", files=[verbose_file])
        merged = a.merged_with(b, name="ab")
        assert merged.name == "ab"
        assert len(merged) == 2
        assert len(a) == 1  # original untouched
