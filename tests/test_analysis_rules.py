"""Unit tests for the static-analysis framework and its rules."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_rules, get_rule, lint_paths, lint_source
from repro.analysis.layering import (
    ALLOWED_DEPENDENCIES,
    check_declared_dag,
    node_for_module,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import module_name_for_path
from repro.errors import ConfigurationError


def lint(source: str, module: str = "fixture", select=None):
    return lint_source(
        textwrap.dedent(source), module=module, select=select
    )


def rule_ids(findings):
    return [f.rule_id for f in findings]


# ----------------------------------------------------------------------
# Framework
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [
            "R001", "R002", "R003", "R004", "R005", "R006",
            "R101", "R102", "R103", "R104", "R105",
        ]

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.title
            assert rule.rationale

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            get_rule("R999")

    def test_select_runs_single_rule(self):
        findings = lint(
            "def f(x={}):\n    return x\n", select=["R005"]
        )
        assert rule_ids(findings) == ["R005"]


class TestSuppressions:
    def test_targeted_noqa_suppresses_one_rule(self):
        findings = lint(
            "def f(x={}):  # repro: noqa[R005]\n    return x\n"
        )
        assert findings == []

    def test_bare_noqa_suppresses_all(self):
        findings = lint(
            "def f(x={}):  # repro: noqa\n    return x\n"
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint(
            "def f(x={}):  # repro: noqa[R001]\n    return x\n"
        )
        assert rule_ids(findings) == ["R005"]

    def test_marker_inside_string_is_inert(self):
        findings = lint(
            "s = '# repro: noqa[R005]'\n"
            "def f(x={}):\n    return x\n"
        )
        assert rule_ids(findings) == ["R005"]


class TestReporters:
    def test_text_report_lists_location_and_summary(self):
        findings = lint("def f(x=[]):\n    return x\n")
        text = render_text(findings)
        assert ":1:" in text
        assert "R005" in text
        assert "1 finding" in text

    def test_json_report_round_trips(self):
        import json

        findings = lint("def f(x=[]):\n    return x\n")
        payload = json.loads(render_json(findings))
        assert payload["count"] == 1
        assert payload["by_rule"] == {"R005": 1}
        assert payload["findings"][0]["rule"] == "R005"

    def test_clean_text_report(self):
        assert "no findings" in render_text([])


class TestModuleNaming:
    @pytest.mark.parametrize(
        "path, expected",
        [
            ("src/repro/core/strudel.py", "repro.core.strudel"),
            ("src/repro/__init__.py", "repro"),
            ("src/repro/ml/__init__.py", "repro.ml"),
            ("elsewhere/fixture.py", "fixture"),
        ],
    )
    def test_module_names(self, path, expected):
        from pathlib import Path

        assert module_name_for_path(Path(path)) == expected


class TestLayeringDeclaration:
    def test_declared_graph_is_acyclic(self):
        order = check_declared_dag()
        assert set(order) == set(ALLOWED_DEPENDENCIES)

    def test_cycle_is_rejected(self):
        with pytest.raises(ConfigurationError):
            check_declared_dag(
                {"a": frozenset({"b"}), "b": frozenset({"a"})}
            )

    def test_longest_prefix_lookup(self):
        assert node_for_module("repro.core.strudel") == "core"
        assert node_for_module("repro.parsing") == "dialect"
        assert node_for_module("repro") == "app"
        assert node_for_module("numpy.random") is None


# ----------------------------------------------------------------------
# R001 — unseeded RNG
# ----------------------------------------------------------------------
class TestUnseededRandom:
    def test_legacy_numpy_api_flagged(self):
        findings = lint(
            "import numpy as np\nx = np.random.rand(3)\n"
        )
        assert rule_ids(findings) == ["R001"]

    def test_default_rng_without_seed_flagged(self):
        findings = lint(
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n"
        )
        assert rule_ids(findings) == ["R001"]

    def test_np_default_rng_at_call_site_flagged(self):
        findings = lint(
            "import numpy as np\nrng = np.random.default_rng(42)\n"
        )
        assert rule_ids(findings) == ["R001"]

    def test_stdlib_random_flagged(self):
        findings = lint("import random\nx = random.random()\n")
        assert rule_ids(findings) == ["R001"]

    def test_unseeded_random_instance_flagged(self):
        findings = lint("import random\nr = random.Random()\n")
        assert rule_ids(findings) == ["R001"]

    def test_seeded_random_instance_allowed(self):
        assert lint("import random\nr = random.Random(7)\n") == []

    def test_generator_draws_allowed(self):
        findings = lint(
            "def f(rng):\n"
            "    return rng.random() + rng.integers(0, 2)\n"
        )
        assert findings == []

    def test_rng_module_is_exempt(self):
        findings = lint(
            "import numpy as np\n"
            "def as_generator(seed):\n"
            "    return np.random.default_rng(seed)\n",
            module="repro.util.rng",
        )
        assert findings == []


# ----------------------------------------------------------------------
# R002 — layer boundaries
# ----------------------------------------------------------------------
class TestLayerBoundaries:
    def test_core_importing_ml_flagged(self):
        findings = lint(
            "from repro.ml.forest import RandomForestClassifier\n",
            module="repro.core.strudel",
        )
        assert rule_ids(findings) == ["R002"]

    def test_ml_importing_eval_flagged(self):
        findings = lint(
            "import repro.eval.runner\n", module="repro.ml.forest"
        )
        assert rule_ids(findings) == ["R002"]

    def test_function_local_import_flagged(self):
        findings = lint(
            """
            def lazy():
                from repro.eval import runner
                return runner
            """,
            module="repro.core.blocks",
        )
        assert rule_ids(findings) == ["R002"]

    def test_relative_upward_import_flagged(self):
        findings = lint(
            "from ..ml import forest\n", module="repro.core.strudel"
        )
        assert rule_ids(findings) == ["R002"]

    def test_downward_import_allowed(self):
        findings = lint(
            "from repro.core.line_features import "
            "LineFeatureExtractor\n",
            module="repro.ml.persistence",
        )
        assert findings == []

    def test_app_layer_imports_everything(self):
        findings = lint(
            "from repro.eval import runner\n"
            "from repro.ml import forest\n",
            module="repro.cli",
        )
        assert findings == []

    def test_third_party_imports_ignored(self):
        findings = lint(
            "import numpy as np\nimport networkx\n",
            module="repro.core.blocks",
        )
        assert findings == []

    def test_lint_paths_maps_repro_tree(self, tmp_path):
        bad = tmp_path / "repro" / "core" / "evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "from repro.eval import runner\n", encoding="utf-8"
        )
        findings = lint_paths([tmp_path])
        assert rule_ids(findings) == ["R002"]


# ----------------------------------------------------------------------
# R003 — feature contracts
# ----------------------------------------------------------------------
class TestFeatureContracts:
    MODULE = "repro.core.line_features"

    def test_missing_annotation_flagged(self):
        findings = lint(
            "def empty_cell_ratio(row):\n    return 0.0\n",
            module=self.MODULE,
        )
        assert rule_ids(findings) == ["R003"]

    def test_non_numeric_annotation_flagged(self):
        findings = lint(
            "def feature_name(row) -> str:\n    return 'x'\n",
            module=self.MODULE,
        )
        assert rule_ids(findings) == ["R003"]

    def test_unguarded_nan_return_flagged(self):
        findings = lint(
            """
            def ratio(values) -> float:
                return float('nan')
            """,
            module=self.MODULE,
        )
        assert rule_ids(findings) == ["R003"]

    def test_np_nan_attribute_flagged(self):
        findings = lint(
            """
            import numpy as np

            def ratio(values) -> float:
                return np.nan
            """,
            module=self.MODULE,
        )
        assert rule_ids(findings) == ["R003"]

    def test_guarded_nan_allowed(self):
        findings = lint(
            """
            def ratio(values) -> float:
                if not values:
                    return float('nan')
                return sum(values) / len(values)
            """,
            module=self.MODULE,
        )
        assert findings == []

    def test_numeric_annotation_allowed(self):
        findings = lint(
            """
            import numpy as np

            def extract(table) -> np.ndarray:
                return np.zeros(3)
            """,
            module=self.MODULE,
        )
        assert findings == []

    def test_rule_inert_outside_feature_modules(self):
        findings = lint(
            "def helper(row):\n    return float('nan')\n",
            module="repro.util.stats",
        )
        assert findings == []

    def test_properties_and_dunders_exempt(self):
        findings = lint(
            """
            class Extractor:
                def __init__(self):
                    self.names = ()

                @property
                def feature_names(self) -> tuple[str, ...]:
                    return self.names
            """,
            module=self.MODULE,
        )
        assert findings == []


# ----------------------------------------------------------------------
# R004 — nondeterministic iteration
# ----------------------------------------------------------------------
class TestNondeterministicIteration:
    def test_for_over_set_call_flagged(self):
        findings = lint(
            "def f(xs):\n"
            "    for x in set(xs):\n"
            "        yield x\n"
        )
        assert rule_ids(findings) == ["R004"]

    def test_comprehension_over_set_literal_flagged(self):
        findings = lint("ys = [x for x in {1, 2, 3}]\n")
        assert rule_ids(findings) == ["R004"]

    def test_unsorted_listdir_flagged(self):
        findings = lint(
            "import os\nnames = [n for n in os.listdir('.')]\n"
        )
        # Flagged once for the unsorted listdir call itself.
        assert "R004" in rule_ids(findings)

    def test_unsorted_glob_method_flagged(self):
        findings = lint(
            """
            from pathlib import Path

            def files(d):
                return list(Path(d).glob('*.csv'))
            """
        )
        assert rule_ids(findings) == ["R004"]

    def test_sorted_set_allowed(self):
        findings = lint(
            "def f(xs):\n"
            "    for x in sorted(set(xs)):\n"
            "        yield x\n"
        )
        assert findings == []

    def test_sorted_glob_allowed(self):
        findings = lint(
            """
            from pathlib import Path

            def files(d):
                return [p for p in sorted(Path(d).glob('*.csv'))]
            """
        )
        assert findings == []

    def test_set_membership_not_flagged(self):
        findings = lint(
            "def f(xs, allowed):\n"
            "    return [x for x in xs if x in set(allowed)]\n"
        )
        assert findings == []


# ----------------------------------------------------------------------
# R005 — mutable defaults
# ----------------------------------------------------------------------
class TestMutableDefaults:
    @pytest.mark.parametrize(
        "default", ["[]", "{}", "set()", "dict()", "list()"]
    )
    def test_mutable_defaults_flagged(self, default):
        findings = lint(f"def f(x={default}):\n    return x\n")
        assert rule_ids(findings) == ["R005"]

    def test_keyword_only_default_flagged(self):
        findings = lint("def f(*, x=[]):\n    return x\n")
        assert rule_ids(findings) == ["R005"]

    def test_lambda_default_flagged(self):
        findings = lint("g = lambda x={}: x\n")
        assert rule_ids(findings) == ["R005"]

    def test_none_default_allowed(self):
        findings = lint(
            "def f(x=None):\n"
            "    return x if x is not None else []\n"
        )
        assert findings == []

    def test_immutable_defaults_allowed(self):
        findings = lint("def f(x=(), y=0, z='s'):\n    return x\n")
        assert findings == []


# ----------------------------------------------------------------------
# R006 — wall-clock timing
# ----------------------------------------------------------------------
class TestWallClockTiming:
    def test_time_time_call_flagged(self):
        findings = lint(
            """
            import time
            started = time.time()
            """
        )
        assert rule_ids(findings) == ["R006"]

    def test_from_time_import_time_flagged(self):
        findings = lint("from time import time\n")
        assert rule_ids(findings) == ["R006"]

    def test_perf_counter_allowed(self):
        findings = lint(
            """
            import time
            started = time.perf_counter()
            elapsed = time.perf_counter() - started
            """
        )
        assert findings == []

    def test_monotonic_and_other_time_imports_allowed(self):
        findings = lint(
            """
            from time import perf_counter, monotonic
            a = perf_counter()
            b = monotonic()
            """
        )
        assert findings == []
