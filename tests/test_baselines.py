"""Tests for the CRF-L, Pytheas-L and RNN-C baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.crf_line import CRFLineClassifier
from repro.baselines.embeddings import EMBEDDING_SIZE, embed_cell, embed_rows
from repro.baselines.pytheas import PytheasLineClassifier, _default_rules
from repro.baselines.rnn_cells import RNNCellClassifier
from repro.errors import NotFittedError
from repro.types import CellClass, Table


class TestCRFLine:
    def test_learns_structure(self, train_test_files):
        train, test = train_test_files
        model = CRFLineClassifier(max_iter=40).fit(train)
        hits = total = 0
        for annotated in test:
            predictions = model.predict(annotated.table)
            for i in annotated.non_empty_line_indices():
                hits += predictions[i] is annotated.line_labels[i]
                total += 1
        assert hits / total > 0.75

    def test_empty_lines_stay_empty(self, train_test_files, verbose_table):
        train, _ = train_test_files
        model = CRFLineClassifier(max_iter=20).fit(train)
        predictions = model.predict(verbose_table)
        assert predictions[1] is CellClass.EMPTY

    def test_predict_before_fit(self, verbose_table):
        with pytest.raises(NotFittedError):
            CRFLineClassifier().predict(verbose_table)

    def test_feature_width_is_consistent(self, train_test_files):
        train, _ = train_test_files
        model = CRFLineClassifier()
        widths = {
            model._features(annotated.table).shape[1]
            for annotated in train
        }
        assert len(widths) == 1


class TestPytheas:
    def test_rules_have_unique_names(self):
        names = [rule.name for rule in _default_rules()]
        assert len(names) == len(set(names))

    def test_weights_learned_in_unit_interval(self, train_test_files):
        train, _ = train_test_files
        model = PytheasLineClassifier().fit(train)
        assert model._weights is not None
        assert all(0.0 <= w <= 1.0 for w in model._weights.values())

    def test_never_predicts_derived(self, train_test_files):
        train, test = train_test_files
        model = PytheasLineClassifier().fit(train)
        for annotated in test:
            for klass in model.predict(annotated.table):
                assert klass is not CellClass.DERIVED

    def test_reasonable_data_detection(self, train_test_files):
        """Data/non-data fusion is the core of Pytheas; binary
        agreement should be solid even when minority classes suffer."""
        train, test = train_test_files
        model = PytheasLineClassifier().fit(train)
        y_true, y_pred = [], []
        for annotated in test:
            predictions = model.predict(annotated.table)
            for i in annotated.non_empty_line_indices():
                y_true.append(
                    annotated.line_labels[i] is CellClass.DATA
                )
                y_pred.append(predictions[i] is CellClass.DATA)
        agreement = np.mean(
            [t == p for t, p in zip(y_true, y_pred)]
        )
        assert agreement > 0.8

    def test_file_without_tables_is_metadata(self, train_test_files):
        train, _ = train_test_files
        model = PytheasLineClassifier().fit(train)
        table = Table(
            [
                ["Just a paragraph of text without any numbers at all."],
                ["Another descriptive sentence follows here."],
            ]
        )
        predictions = model.predict(table)
        assert predictions[0] is CellClass.METADATA

    def test_table_bodies_bridge_small_gaps(self):
        bodies = PytheasLineClassifier._table_bodies([2, 3, 5, 11, 12])
        assert bodies == [(2, 5), (11, 12)]

    def test_unfitted_predict_uses_default_weights(self, verbose_table):
        model = PytheasLineClassifier()
        predictions = model.predict(verbose_table)
        assert len(predictions) == verbose_table.n_rows


class TestEmbeddings:
    def test_embedding_size(self):
        vector = embed_cell("Total", 0, 0, 4, 4)
        assert vector.shape == (EMBEDDING_SIZE,)

    def test_keyword_flag(self):
        with_kw = embed_cell("Total", 0, 0, 4, 4)
        without = embed_cell("Alabama", 0, 0, 4, 4)
        assert with_kw[7] == 1.0
        assert without[7] == 0.0

    def test_embed_rows_skips_empty_lines(self, verbose_table):
        positions, sequences = embed_rows(verbose_table)
        assert len(positions) == verbose_table.count_non_empty_rows()
        flat = [p for line in positions for p in line]
        assert len(flat) == verbose_table.count_non_empty_cells()
        for line_positions, sequence in zip(positions, sequences):
            assert sequence.shape == (len(line_positions), EMBEDDING_SIZE)


class TestRNNCell:
    def test_end_to_end(self, train_test_files):
        train, test = train_test_files
        model = RNNCellClassifier(epochs=6, random_state=0).fit(train)
        hits = total = 0
        for annotated in test:
            predictions = model.predict(annotated.table)
            for i, j, truth in annotated.non_empty_cell_items():
                hits += predictions[(i, j)] is truth
                total += 1
        assert hits / total > 0.6

    def test_covers_all_non_empty_cells(
        self, train_test_files, verbose_table
    ):
        train, _ = train_test_files
        model = RNNCellClassifier(epochs=2, random_state=0).fit(train)
        predictions = model.predict(verbose_table)
        assert set(predictions) == {
            (c.row, c.col) for c in verbose_table.non_empty_cells()
        }

    def test_predict_before_fit(self, verbose_table):
        with pytest.raises(NotFittedError):
            RNNCellClassifier().predict(verbose_table)
