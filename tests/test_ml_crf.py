"""Tests for the linear-chain CRF (:mod:`repro.ml.crf`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, NotFittedError
from repro.ml.crf import LinearChainCRF, _pad_sequences


def _emission_task(seed=0, n_sequences=40):
    """Labels depend only on the features — a pure emission task."""
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for _ in range(n_sequences):
        length = int(rng.integers(3, 9))
        X = rng.normal(size=(length, 3))
        y = (X[:, 0] > 0).astype(int)
        sequences.append(X)
        labels.append(y)
    return sequences, labels


def _transition_task(seed=0, n_sequences=60):
    """Features are pure noise; labels follow a rigid state machine
    0 -> 1 -> 2 -> 0 -> ...  Only the transitions carry signal."""
    rng = np.random.default_rng(seed)
    sequences, labels = [], []
    for _ in range(n_sequences):
        length = int(rng.integers(4, 10))
        sequences.append(rng.normal(size=(length, 2)) * 0.01)
        labels.append(np.arange(length) % 3)
    return sequences, labels


class TestTraining:
    def test_learns_emission_signal(self):
        sequences, labels = _emission_task()
        crf = LinearChainCRF(max_iter=60).fit(sequences, labels)
        predictions = crf.predict(sequences)
        accuracy = np.mean(
            [(p == y).mean() for p, y in zip(predictions, labels)]
        )
        assert accuracy > 0.95

    def test_learns_transition_structure(self):
        sequences, labels = _transition_task()
        crf = LinearChainCRF(max_iter=80).fit(sequences, labels)
        predictions = crf.predict(sequences)
        accuracy = np.mean(
            [(p == y).mean() for p, y in zip(predictions, labels)]
        )
        # Emissions are noise: only transitions + start potentials can
        # explain the cycle. Any emission-only model sits near 1/3.
        assert accuracy > 0.9

    def test_generalizes_to_unseen_sequences(self):
        train_x, train_y = _emission_task(seed=1)
        test_x, test_y = _emission_task(seed=2, n_sequences=10)
        crf = LinearChainCRF(max_iter=60).fit(train_x, train_y)
        predictions = crf.predict(test_x)
        accuracy = np.mean(
            [(p == y).mean() for p, y in zip(predictions, test_y)]
        )
        assert accuracy > 0.9

    def test_label_values_preserved(self):
        sequences, labels = _emission_task()
        shifted = [y + 10 for y in labels]
        crf = LinearChainCRF(max_iter=30).fit(sequences, shifted)
        assert set(np.concatenate(crf.predict(sequences))) <= {10, 11}

    def test_single_position_sequences(self):
        sequences = [np.array([[1.0, 0.0]]), np.array([[-1.0, 0.0]])] * 10
        labels = [np.array([1]), np.array([0])] * 10
        crf = LinearChainCRF(max_iter=40).fit(sequences, labels)
        predictions = crf.predict(sequences)
        assert all(len(p) == 1 for p in predictions)


class TestValidation:
    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            LinearChainCRF().fit([], [])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            LinearChainCRF().fit(
                [np.zeros((2, 1))], [np.array([0, 1, 0])]
            )

    def test_rejects_bad_params(self):
        with pytest.raises(InvalidParameterError):
            LinearChainCRF(l2=-1)
        with pytest.raises(InvalidParameterError):
            LinearChainCRF(max_iter=0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LinearChainCRF().predict([np.zeros((2, 1))])


class TestMarginals:
    def test_marginals_normalized(self):
        sequences, labels = _emission_task()
        crf = LinearChainCRF(max_iter=40).fit(sequences, labels)
        marginals = crf.predict_marginals(sequences[:3])
        for seq, marginal in zip(sequences[:3], marginals):
            assert marginal.shape == (len(seq), 2)
            assert np.allclose(marginal.sum(axis=1), 1.0)

    def test_marginal_argmax_tracks_viterbi_on_confident_data(self):
        sequences, labels = _emission_task()
        crf = LinearChainCRF(max_iter=60).fit(sequences, labels)
        viterbi = crf.predict(sequences[:5])
        marginals = crf.predict_marginals(sequences[:5])
        for path, marginal in zip(viterbi, marginals):
            marginal_path = crf.classes_[np.argmax(marginal, axis=1)]
            agreement = (path == marginal_path).mean()
            assert agreement > 0.9


class TestGradient:
    def test_finite_difference_gradient_check(self):
        """The analytic NLL gradient must match finite differences."""
        rng = np.random.default_rng(0)
        sequences = [rng.normal(size=(4, 2)), rng.normal(size=(3, 2))]
        labels = [np.array([0, 1, 1, 0]), np.array([1, 0, 1])]
        crf = LinearChainCRF(l2=0.0)
        crf.classes_ = np.array([0, 1])
        k, d = 2, 2
        X, mask, y = _pad_sequences(
            [s.astype(float) for s in sequences], labels
        )
        lengths = mask.sum(axis=1)
        theta = rng.normal(scale=0.3, size=k * d + k + k + k * k)

        def nll_of(params):
            W, b, start, trans = crf._unpack(params, k, d)
            return crf._nll_and_grads(
                X, mask, y, lengths, W, b, start, trans
            )[0]

        W, b, start, trans = crf._unpack(theta, k, d)
        _, grads = crf._nll_and_grads(X, mask, y, lengths, W, b, start, trans)
        analytic = np.concatenate(
            [grads[0].ravel(), grads[1], grads[2], grads[3].ravel()]
        )
        numeric = np.zeros_like(theta)
        eps = 1e-6
        for i in range(len(theta)):
            up = theta.copy(); up[i] += eps
            down = theta.copy(); down[i] -= eps
            numeric[i] = (nll_of(up) - nll_of(down)) / (2 * eps)
        assert np.allclose(analytic, numeric, atol=1e-4)
