"""Tests for the Table 2 cell feature extractor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError

from repro.core.cell_features import (
    CELL_FEATURE_GROUPS,
    CELL_FEATURE_NAMES,
    CellFeatureExtractor,
)
from repro.types import CONTENT_CLASSES, DataType, Table

FEATURE_INDEX = {name: i for i, name in enumerate(CELL_FEATURE_NAMES)}


@pytest.fixture
def extraction(verbose_table):
    positions, features = CellFeatureExtractor().extract(verbose_table)
    index = {pos: i for i, pos in enumerate(positions)}
    return index, features


def value(extraction, position, name):
    index, features = extraction
    return features[index[position], FEATURE_INDEX[name]]


class TestShape:
    def test_one_row_per_non_empty_cell(self, verbose_table):
        positions, features = CellFeatureExtractor().extract(verbose_table)
        assert len(positions) == verbose_table.count_non_empty_cells()
        assert features.shape == (
            len(positions), len(CELL_FEATURE_NAMES)
        )

    def test_feature_groups_partition_names(self):
        grouped = [
            name
            for members in CELL_FEATURE_GROUPS.values()
            for name in members
        ]
        assert sorted(grouped) == sorted(CELL_FEATURE_NAMES)

    def test_empty_table_yields_no_rows(self):
        positions, features = CellFeatureExtractor().extract(
            Table([["", ""]])
        )
        assert positions == []
        assert features.shape == (0, len(CELL_FEATURE_NAMES))


class TestContentFeatures:
    def test_value_length_normalized_by_longest(self, extraction):
        # "Note: preliminary data." is the longest cell -> 1.0.
        assert value(extraction, (7, 0), "value_length") == 1.0
        assert 0 < value(extraction, (3, 1), "value_length") < 1.0

    def test_data_type_codes(self, extraction):
        assert value(extraction, (3, 1), "data_type") == float(DataType.INT)
        assert value(extraction, (3, 0), "data_type") == float(
            DataType.STRING
        )

    def test_derived_keyword_flags(self, extraction):
        assert value(extraction, (5, 0), "has_derived_keywords") == 1.0
        assert value(extraction, (5, 1), "has_derived_keywords") == 0.0
        assert value(extraction, (5, 1), "row_has_derived_keywords") == 1.0
        assert value(extraction, (3, 0), "column_has_derived_keywords") == 1.0
        assert value(extraction, (3, 1), "column_has_derived_keywords") == 0.0

    def test_positions(self, extraction):
        assert value(extraction, (0, 0), "row_position") == 0.0
        assert value(extraction, (7, 0), "row_position") == 1.0
        assert value(extraction, (3, 3), "column_position") == 1.0

    def test_uniform_line_probability_by_default(self, extraction):
        for klass in CONTENT_CLASSES:
            name = f"line_class_probability_{klass.value}"
            assert value(extraction, (3, 1), name) == pytest.approx(1 / 6)

    def test_line_probabilities_passed_through(self, verbose_table):
        probabilities = np.zeros((verbose_table.n_rows, 6))
        probabilities[:, 3] = 1.0  # everything "data"
        positions, features = CellFeatureExtractor().extract(
            verbose_table, probabilities
        )
        column = FEATURE_INDEX["line_class_probability_data"]
        assert np.allclose(features[:, column], 1.0)

    def test_probability_shape_validated(self, verbose_table):
        with pytest.raises(InvalidParameterError):
            CellFeatureExtractor().extract(
                verbose_table, np.zeros((2, 6))
            )


class TestContextualFeatures:
    def test_empty_row_flags(self, extraction):
        # Row 2 (header) has the empty row 1 above it.
        assert value(extraction, (2, 0), "is_empty_row_before") == 1.0
        assert value(extraction, (3, 0), "is_empty_row_before") == 0.0
        # Row 5 (total) has the empty row 6 after it.
        assert value(extraction, (5, 0), "is_empty_row_after") == 1.0

    def test_boundary_rows_count_as_empty(self, extraction):
        assert value(extraction, (0, 0), "is_empty_row_before") == 1.0
        assert value(extraction, (7, 0), "is_empty_row_after") == 1.0

    def test_empty_column_flags(self, extraction):
        assert value(extraction, (3, 0), "is_empty_column_left") == 1.0
        assert value(extraction, (3, 3), "is_empty_column_right") == 1.0
        assert value(extraction, (3, 1), "is_empty_column_left") == 0.0

    def test_row_and_column_empty_ratios(self, extraction):
        assert value(extraction, (0, 0), "row_empty_cell_ratio") == (
            pytest.approx(0.75)
        )
        # Column 0 has content in 6 of 8 rows.
        assert value(extraction, (3, 0), "column_empty_cell_ratio") == (
            pytest.approx(2 / 8)
        )

    def test_block_size_normalized(self, extraction, verbose_table):
        # The main table block spans rows 2-5 x 4 cols = 16 cells.
        total = verbose_table.n_rows * verbose_table.n_cols
        assert value(extraction, (3, 1), "block_size") == pytest.approx(
            16 / total
        )
        # The title cell is its own block.
        assert value(extraction, (0, 0), "block_size") == pytest.approx(
            1 / total
        )

    def test_neighbor_profile_values(self, extraction):
        # Cell (3,1)="10": north neighbour is header "2019" (INT).
        assert value(extraction, (3, 1), "neighbor_data_type_n") == float(
            DataType.INT
        )
        assert value(extraction, (3, 1), "neighbor_data_type_w") == float(
            DataType.STRING
        )

    def test_out_of_table_neighbors_get_minus_one(self, extraction):
        assert value(extraction, (0, 0), "neighbor_data_type_nw") == -1.0
        assert value(extraction, (0, 0), "neighbor_value_length_n") == -1.0


class TestComputationalFeature:
    def test_is_aggregation_on_total_cells(self, extraction):
        assert value(extraction, (5, 1), "is_aggregation") == 1.0
        assert value(extraction, (5, 2), "is_aggregation") == 1.0
        assert value(extraction, (3, 1), "is_aggregation") == 0.0
        # The 'Total' label itself is a string, not an aggregate.
        assert value(extraction, (5, 0), "is_aggregation") == 0.0
