"""Tests for shared utilities (:mod:`repro.util`)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rng import as_generator, spawn
from repro.util.stats import (
    bhattacharyya_distance,
    discounted_cumulative_gain,
    histogram,
    min_max_normalize,
)
from repro.util.text import (
    count_words,
    is_alphanumeric_word,
    tokenize_words,
)


class TestText:
    def test_tokenize(self):
        assert tokenize_words("Total (2019): 1,234") == [
            "Total", "2019", "1", "234",
        ]

    def test_count_words(self):
        assert count_words("one two-three") == 3
        assert count_words("") == 0

    def test_is_alphanumeric_word(self):
        assert is_alphanumeric_word("abc123")
        assert not is_alphanumeric_word("a b")
        assert not is_alphanumeric_word("")


class TestDCG:
    def test_empty_vector(self):
        assert discounted_cumulative_gain([]) == 0.0

    def test_all_ones_is_one(self):
        assert discounted_cumulative_gain([1, 1, 1]) == pytest.approx(1.0)

    def test_all_zeros_is_zero(self):
        assert discounted_cumulative_gain([0, 0, 0]) == 0.0

    def test_left_heavier_than_right(self):
        left = discounted_cumulative_gain([1, 0, 0])
        right = discounted_cumulative_gain([0, 0, 1])
        assert left > right

    @given(st.lists(st.sampled_from([0.0, 1.0]), min_size=1, max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_bounded_in_unit_interval(self, vector):
        value = discounted_cumulative_gain(vector)
        assert 0.0 <= value <= 1.0 + 1e-12


class TestBhattacharyya:
    def test_identical_histograms_distance_zero(self):
        assert bhattacharyya_distance([1, 2, 3], [2, 4, 6]) == pytest.approx(
            0.0, abs=1e-9
        )

    def test_disjoint_histograms_distance_one(self):
        assert bhattacharyya_distance([1, 0], [0, 1]) == pytest.approx(1.0)

    def test_both_empty_is_zero(self):
        assert bhattacharyya_distance([0, 0], [0, 0]) == 0.0

    def test_one_empty_is_one(self):
        assert bhattacharyya_distance([0, 0], [1, 0]) == 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            bhattacharyya_distance([1], [1, 2])

    @given(
        st.lists(st.floats(0, 100), min_size=3, max_size=3),
        st.lists(st.floats(0, 100), min_size=3, max_size=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_and_symmetric(self, p, q):
        d_pq = bhattacharyya_distance(p, q)
        d_qp = bhattacharyya_distance(q, p)
        assert 0.0 <= d_pq <= 1.0
        assert d_pq == pytest.approx(d_qp, abs=1e-9)


class TestMinMax:
    def test_normalizes_to_unit_interval(self):
        assert min_max_normalize([2, 4, 6]) == [0.0, 0.5, 1.0]

    def test_constant_values_map_to_zero(self):
        assert min_max_normalize([3, 3]) == [0.0, 0.0]

    def test_empty(self):
        assert min_max_normalize([]) == []


class TestHistogram:
    def test_counts_land_in_buckets(self):
        counts = histogram([0.5, 1.5, 9.9], bins=10, low=0, high=10)
        assert counts[0] == 1 and counts[1] == 1 and counts[9] == 1
        assert sum(counts) == 3

    def test_out_of_range_clamped(self):
        counts = histogram([-5, 50], bins=4, low=0, high=10)
        assert counts[0] == 1 and counts[3] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([], bins=0, low=0, high=1)
        with pytest.raises(ValueError):
            histogram([], bins=3, low=1, high=1)


class TestRng:
    def test_seed_determinism(self):
        a = as_generator(7).integers(0, 1000, 5)
        b = as_generator(7).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_spawn_children_are_independent_and_deterministic(self):
        children_a = spawn(as_generator(3), 4)
        children_b = spawn(as_generator(3), 4)
        draws_a = [c.integers(0, 10**6) for c in children_a]
        draws_b = [c.integers(0, 10**6) for c in children_b]
        assert draws_a == draws_b
        assert len(set(draws_a)) > 1
