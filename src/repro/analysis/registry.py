"""Rule registry: declare a rule once, run it everywhere.

A rule is a class with a ``rule_id``, a one-line ``title``, a
``rationale`` paragraph (surfaced by ``repro lint --explain``-style
tooling and the docs), and a ``check`` generator over one parsed
module.  Registration is a decorator so adding a rule is a single new
module under :mod:`repro.analysis.rules`.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, ClassVar, Iterator, Type

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.findings import Finding
    from repro.analysis.graph import ProjectGraph
    from repro.analysis.runner import ModuleInfo

_RULE_ID_PATTERN = re.compile(r"^R\d{3}$")

#: All registered rules, keyed by id.  Populated by :func:`register`.
_RULES: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for one invariant check.

    Subclasses set the class attributes and implement :meth:`check`;
    the runner instantiates each rule once per lint invocation and
    feeds it every module in turn, so rules may keep cross-module
    state (R002 does not need it, but e.g. a future duplicate-symbol
    rule would).
    """

    rule_id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    rationale: ClassVar[str] = ""

    def check(self, module: "ModuleInfo") -> Iterator["Finding"]:
        """Yield findings for one module."""
        raise NotImplementedError

    def finding(
        self, module: "ModuleInfo", line: int, col: int, message: str
    ) -> "Finding":
        """Convenience constructor stamping this rule's id."""
        from repro.analysis.findings import Finding

        return Finding(
            path=str(module.path),
            line=line,
            col=col,
            rule_id=self.rule_id,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (R100-series) rules.

    Subclasses implement :meth:`check_project` over the
    :class:`~repro.analysis.graph.ProjectGraph` the runner builds once
    per invocation from *all* modules in scope; :meth:`check` is a
    deliberate no-op so a project rule mixed into the per-module loop
    contributes nothing twice.  The runner routes findings through the
    same per-line suppression filter as per-module rules, keyed by the
    finding's path.
    """

    def check(self, module: "ModuleInfo") -> Iterator["Finding"]:
        return iter(())

    def check_project(
        self, project: "ProjectGraph"
    ) -> Iterator["Finding"]:
        """Yield findings over the whole project model."""
        raise NotImplementedError

    def project_finding(
        self, path: str, line: int, col: int, message: str
    ) -> "Finding":
        """Finding constructor for sites identified by explicit path."""
        from repro.analysis.findings import Finding

        return Finding(
            path=path, line=line, col=col,
            rule_id=self.rule_id, message=message,
        )


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_PATTERN.match(cls.rule_id):
        raise ConfigurationError(
            f"rule id {cls.rule_id!r} does not match R###"
        )
    if cls.rule_id in _RULES and _RULES[cls.rule_id] is not cls:
        raise ConfigurationError(
            f"rule id {cls.rule_id} registered twice"
        )
    _RULES[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_RULES[rule_id]() for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id (raises on unknown ids)."""
    _load_builtin_rules()
    if rule_id not in _RULES:
        known = ", ".join(sorted(_RULES))
        raise ConfigurationError(
            f"unknown rule {rule_id!r} (known: {known})"
        )
    return _RULES[rule_id]()


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (idempotent)."""
    from repro.analysis import rules  # noqa: F401 - import registers
