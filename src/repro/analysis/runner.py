"""Walk files, parse once, run every rule, filter suppressions."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)
from repro.analysis.suppressions import collect_suppressions, is_suppressed


@dataclass
class ModuleInfo:
    """Everything a rule needs about one source module, parsed once."""

    path: Path
    module: str
    source: str
    tree: ast.Module
    suppressions: dict[int, frozenset[str]] = field(default_factory=dict)

    _parents: dict[int, ast.AST] | None = None

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (lazily built, cached)."""
        if self._parents is None:
            parents: dict[int, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    parents[id(child)] = outer
            self._parents = parents
        return self._parents.get(id(node))

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Parents of ``node`` from innermost outward."""
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)


def module_name_for_path(path: Path) -> str:
    """Dotted module name, rooted at the last ``repro`` path part.

    ``src/repro/core/strudel.py`` -> ``repro.core.strudel``.  Files
    outside any ``repro`` tree (ad-hoc fixtures) get their bare stem,
    which keeps path-scoped rules (R002, R003) inert on them unless
    the fixture deliberately mimics the package layout.
    """
    parts = list(path.parts)
    parts[-1] = path.stem
    anchors = [i for i, part in enumerate(parts) if part == "repro"]
    if anchors:
        parts = parts[anchors[-1]:]
    else:
        parts = parts[-1:]
    if parts[-1] == "__init__":
        parts = parts[:-1] or ["__init__"]
    return ".".join(parts)


def load_module(path: Path) -> ModuleInfo:
    """Read and parse one file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    return ModuleInfo(
        path=path,
        module=module_name_for_path(path),
        source=source,
        tree=tree,
        suppressions=collect_suppressions(source),
    )


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    found: set[Path] = set()
    for path in paths:
        if path.is_dir():
            found.update(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.add(path)
    return sorted(found)


def _resolve_rules(select: Sequence[str] | None) -> list[Rule]:
    if select is None:
        return all_rules()
    return [get_rule(rule_id.strip().upper()) for rule_id in select]


def lint_modules(
    modules: Iterable[ModuleInfo],
    select: Sequence[str] | None = None,
    graph: bool = True,
) -> list[Finding]:
    """Run the (selected) rules over already-parsed modules.

    Per-module rules see one module at a time; project
    (:class:`~repro.analysis.registry.ProjectRule`) rules see a
    :class:`~repro.analysis.graph.ProjectGraph` built once from every
    module in scope.  ``graph=False`` skips the project rules (and the
    graph build) entirely — the CLI's ``--no-graph``.
    """
    module_list = list(modules)
    rules = _resolve_rules(select)
    if not graph:
        rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    local_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    findings: list[Finding] = []
    for module in module_list:
        for rule in local_rules:
            for finding in rule.check(module):
                if is_suppressed(
                    module.suppressions, finding.line, finding.rule_id
                ):
                    continue
                findings.append(finding)
    if project_rules and module_list:
        from repro.analysis.graph import ProjectGraph

        project = ProjectGraph.build(module_list)
        suppressions_by_path = {
            str(module.path): module.suppressions
            for module in module_list
        }
        for rule in project_rules:
            for finding in rule.check_project(project):
                if is_suppressed(
                    suppressions_by_path.get(finding.path, {}),
                    finding.line,
                    finding.rule_id,
                ):
                    continue
                findings.append(finding)
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    select: Sequence[str] | None = None,
    graph: bool = True,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; the main entry point.

    A file that does not parse cannot be analyzed; it is reported as
    the reserved finding ``R000`` (never suppressed or deselected —
    a broken file must fail the gate regardless of rule selection).
    """
    modules: list[ModuleInfo] = []
    parse_errors: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except SyntaxError as error:
            parse_errors.append(
                Finding(
                    path=str(path),
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    rule_id="R000",
                    message=f"file does not parse: {error.msg}",
                )
            )
    return sorted(
        lint_modules(modules, select=select, graph=graph) + parse_errors
    )


def lint_source(
    source: str,
    module: str = "fixture",
    path: str | Path = "<string>",
    select: Sequence[str] | None = None,
    graph: bool = True,
) -> list[Finding]:
    """Lint one in-memory snippet (rule unit tests use this)."""
    info = ModuleInfo(
        path=Path(path),
        module=module,
        source=source,
        tree=ast.parse(source),
        suppressions=collect_suppressions(source),
    )
    return lint_modules([info], select=select, graph=graph)


def lint_sources(
    sources: dict[str, str],
    select: Sequence[str] | None = None,
    graph: bool = True,
) -> list[Finding]:
    """Lint several in-memory modules as one project.

    ``sources`` maps dotted module names to source text; each module's
    synthetic path is ``<name>``.  This is how the R100-series fixture
    tests build multi-module programs without touching the filesystem.
    """
    modules = [
        ModuleInfo(
            path=Path(f"<{name}>"),
            module=name,
            source=source,
            tree=ast.parse(source),
            suppressions=collect_suppressions(source),
        )
        for name, source in sorted(sources.items())
    ]
    return lint_modules(modules, select=select, graph=graph)
