"""Static-analysis gate for the repro codebase (``repro lint``).

A pure-stdlib (:mod:`ast`-based) invariant linter.  The test suite can
only see behaviour; these rules see *conventions* that behaviour tests
cannot enforce:

* every random draw threads an explicit seed (R001),
* the package layering stays a DAG (R002),
* feature functions keep their numeric contract (R003),
* nothing iterates an unordered source into training data (R004),
* no mutable default arguments (R005).

``repro lint src/repro`` runs all rules and exits non-zero on any
finding; ``tests/test_lint_clean.py`` makes the clean state a tier-1
gate.  Individual findings can be waived in place with a
``# repro: noqa[RULE-ID]`` comment on the offending line.
"""

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, get_rule, register
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import ModuleInfo, lint_paths, lint_source

__all__ = [
    "Finding",
    "ModuleInfo",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
