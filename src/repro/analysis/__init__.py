"""Static-analysis gate for the repro codebase (``repro lint``).

A pure-stdlib (:mod:`ast`-based) invariant linter.  The test suite can
only see behaviour; these rules see *conventions* that behaviour tests
cannot enforce.

Per-module rules look at one file at a time:

* every random draw threads an explicit seed (R001),
* the package layering stays a DAG (R002),
* feature functions keep their numeric contract (R003),
* nothing iterates an unordered source into training data (R004),
* no mutable default arguments (R005).

Whole-program rules (the R100 series) run over a
:class:`~repro.analysis.graph.ProjectGraph` — per-module symbol
tables, an import graph and a call graph that resolves methods,
dict-dispatch and the registered-factory indirection — plus the
interprocedural raise-propagation analysis in
:mod:`repro.analysis.flow`:

* bytes become a ``Table`` only through ``repro.io.ingest`` (R101),
* exceptions escaping public APIs are typed ``ReproError``s (R102),
* tracer span names match the declared pipeline stages (R103),
* metric names come from the declared registry (R104),
* lock-guarded attributes are guarded at every mutation site (R105).

``repro lint src/repro`` runs all rules and exits non-zero on any
finding (``--no-graph`` skips the R100 series); the clean state is a
tier-1 gate via ``tests/test_lint_clean.py``.  Individual findings can
be waived in place with a ``# repro: noqa[RULE-ID]`` comment on the
offending line.
"""

from repro.analysis.findings import Finding
from repro.analysis.registry import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    register,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.runner import (
    ModuleInfo,
    lint_modules,
    lint_paths,
    lint_source,
    lint_sources,
)

__all__ = [
    "Finding",
    "ModuleInfo",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "register",
    "render_json",
    "render_text",
]
