"""Interprocedural raise-propagation over the project graph.

Answers one question per function: *which exception types can escape
it, and from which raise sites?*  Local ``raise`` statements are
resolved to builtin names (``builtins.ValueError``) or project class
qualnames, ``try``/``except`` scopes subtract what their handlers
catch (subclass-aware, over both the builtin hierarchy and project
``ReproError`` subclasses), and escapes propagate caller-ward over the
call graph to a fixpoint, carrying their origin raise sites so a
finding can anchor at the line that needs fixing or waiving.

The analysis is deliberately asymmetric in its approximations:

* a handler whose type expression does not resolve is treated as
  catch-all (suppressing escapes — precision over recall: a finding
  must point at a real untyped escape);
* a call whose callee does not resolve contributes nothing (again:
  no claim without information);
* only *explicit* ``raise`` sites are modelled — implicit exceptions
  (a failing dict subscript, arithmetic) are invisible, as is a bare
  ``raise`` re-raise inside a handler.

:data:`PUBLIC_ENTRY_POINTS` declares the API surface the R102 rule
guards: the CLI, the pipeline/classifier lifecycles, the evaluation
drivers and the ingestion front door.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.graph import ModuleTable, ProjectGraph

#: Qualnames of the public pipeline APIs whose escaping exceptions
#: must be typed ``ReproError`` subclasses (rule R102).  Kept here —
#: next to the analysis that interprets it — so the list is data the
#: rule pack and the docs share.
PUBLIC_ENTRY_POINTS: tuple[str, ...] = (
    "repro.cli.main",
    "repro.core.strudel.StrudelPipeline.fit",
    "repro.core.strudel.StrudelPipeline.analyze",
    "repro.core.strudel.StrudelPipeline.analyze_bytes",
    "repro.core.strudel.StrudelPipeline.analyze_table",
    "repro.core.strudel.StrudelLineClassifier.fit",
    "repro.core.strudel.StrudelLineClassifier.predict",
    "repro.core.strudel.StrudelLineClassifier.predict_proba",
    "repro.core.strudel.StrudelCellClassifier.fit",
    "repro.core.strudel.StrudelCellClassifier.predict",
    "repro.core.strudel.LineToCellBaseline.fit",
    "repro.core.strudel.LineToCellBaseline.predict",
    "repro.eval.runner.cross_validate_lines",
    "repro.eval.runner.cross_validate_cells",
    "repro.eval.runner.transfer_lines",
    "repro.eval.runner.transfer_cells",
    "repro.io.ingest.ingest_bytes",
    "repro.io.ingest.ingest_path",
    "repro.io.ingest.ingest_text",
    "repro.perf.engine.CorpusEngine.process_payloads",
    "repro.serve.dlq.DeadLetterQueue.append",
    "repro.serve.dlq.replay_dead_letters",
    "repro.serve.protocol.decode_request",
    "repro.serve.service.ClassificationService.drain",
    "repro.serve.service.run_service",
)

#: Parent links of the builtin exceptions this analysis knows.  Names
#: are unprefixed; the analysis spells them ``builtins.<Name>``.
_BUILTIN_PARENTS: dict[str, str | None] = {
    "BaseException": None,
    "Exception": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "LookupError": "Exception",
    "IndexError": "LookupError",
    "KeyError": "LookupError",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "OSError": "Exception",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "ReferenceError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "StopIteration": "Exception",
    "SyntaxError": "Exception",
    "SystemError": "Exception",
    "TypeError": "Exception",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
}

_BUILTIN_PREFIX = "builtins."

#: Sentinel handler meaning "catches everything" (bare ``except:``,
#: ``except Exception``, or an unresolvable handler expression).
_CATCH_ALL = "<catch-all>"

#: Cap on propagation rounds; the call graph is shallow enough that
#: real trees converge in a handful.
_MAX_ROUNDS = 30


@dataclass(frozen=True, order=True)
class RaiseSite:
    """Origin of one escaping exception: where the ``raise`` is."""

    path: str
    line: int
    col: int
    exception: str


def builtin_exception(name: str) -> str | None:
    """``builtins.<name>`` if it is a known builtin exception."""
    if name in _BUILTIN_PARENTS:
        return _BUILTIN_PREFIX + name
    return None


class EscapeAnalysis:
    """Which exceptions escape which functions, with origins."""

    def __init__(self, graph: ProjectGraph) -> None:
        self.graph = graph
        #: func qualname -> exception id -> origin raise sites.
        self.escapes: dict[str, dict[str, frozenset[RaiseSite]]] = {}
        self._run()

    # ------------------------------------------------------------------
    # Exception identity and subtyping
    # ------------------------------------------------------------------
    def resolve_exception(
        self, table: ModuleTable, node: ast.expr
    ) -> str | None:
        """Exception id for a ``raise``/``except`` expression.

        Returns a project class qualname, a ``builtins.*`` name, or
        ``None`` when the expression does not resolve to either.
        """
        if isinstance(node, ast.Call):
            node = node.func
        dotted = dotted_name(node)
        if dotted is None:
            return None
        canonical = self.graph.canonical_name(table, dotted)
        if canonical in self.graph.classes:
            return canonical
        if "." not in dotted:
            return builtin_exception(dotted)
        return None

    def ancestors(self, exception: str) -> list[str]:
        """Superclass chain of an exception id, itself excluded."""
        chain: list[str] = []
        if exception.startswith(_BUILTIN_PREFIX):
            current: str | None = exception[len(_BUILTIN_PREFIX):]
            current = _BUILTIN_PARENTS.get(current or "")
            while current is not None:
                chain.append(_BUILTIN_PREFIX + current)
                current = _BUILTIN_PARENTS[current]
            return chain
        seen = {exception}
        stack = [exception]
        while stack:
            cls_info = self.graph.classes.get(stack.pop())
            if cls_info is None:
                continue
            for base in cls_info.bases:
                base_id = base
                if base_id not in self.graph.classes:
                    builtin = builtin_exception(base_id.rpartition(".")[2])
                    if builtin is None:
                        continue
                    base_id = builtin
                if base_id in seen:
                    continue
                seen.add(base_id)
                chain.append(base_id)
                if base_id.startswith(_BUILTIN_PREFIX):
                    chain.extend(self.ancestors(base_id))
                else:
                    stack.append(base_id)
        return chain

    def is_subclass_of(self, exception: str, target: str) -> bool:
        return exception == target or target in self.ancestors(exception)

    def derives_from(self, exception: str, class_qualname: str) -> bool:
        """True when the exception id is ``class_qualname`` or a
        (project-) subclass of it."""
        return self.is_subclass_of(exception, class_qualname)

    # ------------------------------------------------------------------
    # Per-function collection
    # ------------------------------------------------------------------
    def _handler_types(
        self, table: ModuleTable, handler: ast.ExceptHandler
    ) -> list[str]:
        if handler.type is None:
            return [_CATCH_ALL]
        type_nodes: list[ast.expr]
        if isinstance(handler.type, ast.Tuple):
            type_nodes = list(handler.type.elts)
        else:
            type_nodes = [handler.type]
        resolved: list[str] = []
        for type_node in type_nodes:
            exception = self.resolve_exception(table, type_node)
            if exception is None:
                # A handler we cannot read must be assumed to catch
                # everything: better to miss an escape than to flag a
                # handled one.
                return [_CATCH_ALL]
            resolved.append(exception)
        return resolved

    def _caught_by(
        self, exception: str, active: tuple[tuple[str, ...], ...]
    ) -> bool:
        for clause in active:
            for handler_type in clause:
                if handler_type == _CATCH_ALL:
                    return True
                if self.is_subclass_of(exception, handler_type):
                    return True
        return False

    def _sites(
        self, qualname: str
    ) -> Iterator[tuple[ast.stmt | ast.expr, tuple[tuple[str, ...], ...]]]:
        """Every Raise statement and Call expression in a function
        body, paired with the handler clauses guarding it."""
        func = self.graph.functions[qualname]
        table = func.module

        def visit(
            stmts: list[ast.stmt], active: tuple[tuple[str, ...], ...]
        ) -> Iterator[
            tuple[ast.stmt | ast.expr, tuple[tuple[str, ...], ...]]
        ]:
            for stmt in stmts:
                if isinstance(stmt, ast.Try):
                    clauses = tuple(
                        tuple(self._handler_types(table, h))
                        for h in stmt.handlers
                    )
                    yield from visit(stmt.body, active + clauses)
                    for handler in stmt.handlers:
                        yield from visit(handler.body, active)
                    # else-clause exceptions are NOT caught by the
                    # handlers of the same try statement.
                    yield from visit(stmt.orelse, active)
                    yield from visit(stmt.finalbody, active)
                elif isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    yield from visit(stmt.body, active)
                elif isinstance(stmt, ast.ClassDef):
                    continue
                elif isinstance(stmt, (ast.If, ast.While)):
                    yield from self._expr_sites(stmt.test, active)
                    yield from visit(stmt.body, active)
                    yield from visit(stmt.orelse, active)
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    yield from self._expr_sites(stmt.iter, active)
                    yield from visit(stmt.body, active)
                    yield from visit(stmt.orelse, active)
                elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                    for item in stmt.items:
                        yield from self._expr_sites(
                            item.context_expr, active
                        )
                    yield from visit(stmt.body, active)
                elif isinstance(stmt, ast.Raise):
                    if stmt.exc is not None:
                        yield from self._expr_sites(stmt.exc, active)
                    yield stmt, active
                else:
                    for child in ast.iter_child_nodes(stmt):
                        if isinstance(child, ast.expr):
                            yield from self._expr_sites(child, active)

        yield from visit(func.node.body, ())

    @staticmethod
    def _expr_sites(
        expr: ast.expr, active: tuple[tuple[str, ...], ...]
    ) -> Iterator[tuple[ast.expr, tuple[tuple[str, ...], ...]]]:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node, active

    # ------------------------------------------------------------------
    # Fixpoint
    # ------------------------------------------------------------------
    def _run(self) -> None:
        site_cache = {
            qualname: list(self._sites(qualname))
            for qualname in sorted(self.graph.functions)
        }
        call_map: dict[str, dict[int, list[str]]] = {}
        for qualname in sorted(self.graph.functions):
            by_node: dict[int, list[str]] = {}
            for site in self.graph.calls_from(qualname):
                by_node.setdefault(id(site.node), []).append(site.callee)
            call_map[qualname] = by_node

        escapes: dict[str, dict[str, set[RaiseSite]]] = {
            qualname: {} for qualname in site_cache
        }

        # Seed with local raises.
        for qualname, sites in sorted(site_cache.items()):
            func = self.graph.functions[qualname]
            table = func.module
            for node, active in sites:
                if not isinstance(node, ast.Raise) or node.exc is None:
                    continue
                exception = self.resolve_exception(table, node.exc)
                if exception is None:
                    continue
                if self._caught_by(exception, active):
                    continue
                origin = RaiseSite(
                    path=str(table.info.path),
                    line=node.lineno,
                    col=node.col_offset,
                    exception=exception,
                )
                escapes[qualname].setdefault(exception, set()).add(origin)

        # Propagate caller-ward until stable.
        for _ in range(_MAX_ROUNDS):
            changed = False
            for qualname, sites in sorted(site_cache.items()):
                by_node = call_map[qualname]
                out = escapes[qualname]
                for node, active in sites:
                    if not isinstance(node, ast.Call):
                        continue
                    for callee in by_node.get(id(node), ()):
                        for exception, origins in sorted(
                            escapes.get(callee, {}).items()
                        ):
                            if self._caught_by(exception, active):
                                continue
                            bucket = out.setdefault(exception, set())
                            if not origins <= bucket:
                                bucket.update(origins)
                                changed = True
            if not changed:
                break

        self.escapes = {
            qualname: {
                exception: frozenset(origins)
                for exception, origins in per_func.items()
            }
            for qualname, per_func in escapes.items()
        }

    # ------------------------------------------------------------------
    def escaping(self, qualname: str) -> dict[str, frozenset[RaiseSite]]:
        """Exception id -> origin sites escaping ``qualname``."""
        return self.escapes.get(qualname, {})
