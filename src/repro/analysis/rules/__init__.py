"""Built-in rules.  Importing this package registers all of them."""

from repro.analysis.rules import (  # noqa: F401 - imports register rules
    contracts,
    defaults,
    iteration,
    layers,
    rng,
    timing,
)
