"""Built-in rules.  Importing this package registers all of them."""

from repro.analysis.rules import (  # noqa: F401 - imports register rules
    contracts,
    defaults,
    errorflow,
    ingest_gate,
    iteration,
    layers,
    locks,
    metric_names,
    rng,
    spans,
    timing,
)
