"""R006 — wall-clock timing of durations.

``time.time()`` reads the wall clock, which NTP can step backwards or
smear mid-measurement; an elapsed-time computed from two wall-clock
readings can come out negative or wildly wrong.  Every duration in
this repository — bench stages, CV fold timers, report footers — must
come from the monotonic ``time.perf_counter()`` (or
``time.monotonic()``), which is what :mod:`repro.obs` spans use.

Flagged:

* any call spelled ``time.time()``;
* ``from time import time`` (which hides the later bare ``time()``
  call from call-site inspection).

Wall-clock *timestamps* (file mtimes, log dates) have no legitimate
call sites in ``src/repro`` today; if one appears, it should read
``datetime.now`` so the intent is explicit rather than riding on
``time.time``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo


@register
class WallClockTimingRule(Rule):
    rule_id = "R006"
    title = "wall-clock time.time() used for timing"
    rationale = (
        "time.time() is not monotonic: NTP adjustments can step it "
        "backwards mid-measurement, so durations derived from it can "
        "be negative or wrong. Use time.perf_counter() (as the "
        "repro.obs spans do) for every elapsed-time measurement."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                if call_name(node) == "time.time":
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "time.time() call; use time.perf_counter() "
                        "for durations",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and any(
                    alias.name == "time" for alias in node.names
                ):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "'from time import time' hides wall-clock "
                        "reads; import the module and call "
                        "time.perf_counter() for durations",
                    )
