"""R003 — feature-function contracts.

The Strudel-L / Strudel-C feature extractors
(``repro.core.line_features`` / ``repro.core.cell_features``) are the
contract surface between raw tables and the classifiers: every
function in them must make its numeric output type explicit, and no
NaN may escape unguarded — an empty line or cell must map to a
*defined* finite value (the docstrings spell out each boundary
convention), never to silent NaN propagation that a forest will
happily split on.

Concretely, inside the declared feature modules:

* every function and method (except dunders and ``@property``
  accessors, which expose metadata rather than feature values) must
  carry a return annotation, and that annotation must mention a
  numeric type (``float``, ``int``, ``bool``, ``np.ndarray``, …);
* a ``return`` whose expression contains ``float('nan')``, ``np.nan``
  or ``math.nan`` must sit under a guard (``if`` / ``try`` / the
  branch of a conditional expression), i.e. be an explicitly handled
  case rather than the unconditional result.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo

#: Modules whose functions carry the feature contract.
FEATURE_MODULES = frozenset(
    {"repro.core.line_features", "repro.core.cell_features"}
)

_NUMERIC_NAMES = frozenset({"float", "int", "bool", "complex"})
_NUMERIC_DOTTED = frozenset(
    {
        "np.ndarray", "numpy.ndarray", "np.float64", "numpy.float64",
        "np.floating", "numpy.floating", "np.number", "numpy.number",
    }
)
_NAN_DOTTED = frozenset({"np.nan", "numpy.nan", "math.nan"})


@register
class FeatureContractRule(Rule):
    rule_id = "R003"
    title = "feature function breaks the numeric contract"
    rationale = (
        "Strudel features must be total: annotated numeric outputs, "
        "and NaN only as an explicitly guarded case, so empty lines "
        "and cells can never leak undefined values into training."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module not in FEATURE_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if self._is_exempt(node):
                continue
            yield from self._check_annotation(module, node)
            yield from self._check_nan_returns(module, node)

    # ------------------------------------------------------------------
    @staticmethod
    def _is_exempt(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if node.name.startswith("__") and node.name.endswith("__"):
            return True
        for decorator in node.decorator_list:
            name = dotted_name(decorator)
            if name in {"property", "functools.cached_property",
                        "cached_property"}:
                return True
            if name is not None and name.endswith(".setter"):
                return True
        return False

    def _check_annotation(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        if node.returns is None:
            yield self.finding(
                module, node.lineno, node.col_offset,
                f"feature function {node.name!r} has no return "
                "annotation (must declare its numeric output)",
            )
            return
        if not self._mentions_numeric(node.returns):
            yield self.finding(
                module, node.returns.lineno, node.returns.col_offset,
                f"feature function {node.name!r} is annotated "
                f"{ast.unparse(node.returns)!r}, which names no "
                "numeric type",
            )

    @classmethod
    def _mentions_numeric(cls, annotation: ast.AST) -> bool:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id in _NUMERIC_NAMES:
                return True
            if isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in _NUMERIC_DOTTED:
                    return True
            if isinstance(node, ast.Constant) and isinstance(
                node.value, str
            ):
                # String annotations: cheap textual membership test.
                if any(t in node.value for t in _NUMERIC_NAMES):
                    return True
        return False

    # ------------------------------------------------------------------
    def _check_nan_returns(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        for statement, guarded in self._walk_guarded(node.body, False):
            if not isinstance(statement, ast.Return):
                continue
            if statement.value is None:
                continue
            if guarded:
                continue
            if self._has_unguarded_nan(statement.value):
                yield self.finding(
                    module, statement.lineno, statement.col_offset,
                    f"feature function {node.name!r} returns a bare "
                    "NaN on its unconditional path; guard it and "
                    "return a defined boundary value",
                )

    @classmethod
    def _walk_guarded(
        cls, statements: list[ast.stmt], guarded: bool
    ) -> Iterator[tuple[ast.stmt, bool]]:
        for statement in statements:
            yield statement, guarded
            if isinstance(statement, ast.If):
                yield from cls._walk_guarded(statement.body, True)
                yield from cls._walk_guarded(statement.orelse, True)
            elif isinstance(statement, ast.Try):
                yield from cls._walk_guarded(statement.body, True)
                for handler in statement.handlers:
                    yield from cls._walk_guarded(handler.body, True)
                yield from cls._walk_guarded(statement.orelse, True)
                yield from cls._walk_guarded(
                    statement.finalbody, guarded
                )
            elif isinstance(
                statement, (ast.For, ast.While, ast.With)
            ):
                yield from cls._walk_guarded(statement.body, guarded)
                if hasattr(statement, "orelse"):
                    yield from cls._walk_guarded(
                        statement.orelse, guarded
                    )
            # Nested function/class defs are visited by the outer
            # ast.walk pass in check(); skip them here.

    @classmethod
    def _has_unguarded_nan(cls, expression: ast.AST) -> bool:
        if isinstance(expression, ast.IfExp):
            # `x if cond else y`: both arms are guarded cases; only
            # the test expression could leak an unconditional NaN.
            return cls._has_unguarded_nan(expression.test)
        if cls._is_nan(expression):
            return True
        return any(
            cls._has_unguarded_nan(child)
            for child in ast.iter_child_nodes(expression)
        )

    @staticmethod
    def _is_nan(node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute):
            return dotted_name(node) in _NAN_DOTTED
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func)
            if callee in {"float"} and node.args:
                first = node.args[0]
                return (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                    and first.value.strip().lower() in {"nan", "-nan"}
                )
        return False
