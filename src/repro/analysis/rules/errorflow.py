"""R102 — exceptions escaping public APIs must be typed ReproErrors.

The library's contract (PR 5) is that callers of the public pipeline
surface — ``fit`` / ``analyze`` / ``predict``, the CLI, the evaluation
drivers, the ingestion front door — can catch :class:`ReproError` at
the boundary without swallowing unrelated programming errors.  A raw
``ValueError`` raised three calls deep breaks that contract silently:
no test notices until a caller's ``except ReproError`` misses it in
production.  This rule runs the interprocedural raise-propagation
analysis (:mod:`repro.analysis.flow`) from every declared entry point
and reports the *origin raise site* of each untyped escape, so the fix
(or an explicit ``# repro: noqa[R102]`` waiver) lands exactly where
the exception is born.

Flagged builtins are ``ValueError`` / ``TypeError`` / ``KeyError`` /
``RuntimeError``.  Two deliberate exemptions: ``IndexError``, because
the sequence protocol in :mod:`repro.types` raises it as part of the
*language* contract (``for`` loops depend on it), and
``NotImplementedError`` (a ``RuntimeError`` subclass), because it is
the abstract-method idiom — the base raise is never reached through a
concrete subclass and signals a programming error, not a library
failure.  Implicit exceptions (failing subscripts, arithmetic) are
invisible to the analysis — the rule covers deliberate raises, which
is where a typed hierarchy is an author's choice.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.flow import PUBLIC_ENTRY_POINTS, EscapeAnalysis
from repro.analysis.graph import ProjectGraph
from repro.analysis.registry import ProjectRule, register

_FLAGGED_BUILTINS = (
    "builtins.ValueError",
    "builtins.TypeError",
    "builtins.KeyError",
    "builtins.RuntimeError",
)

#: Never flagged even though they subclass a flagged builtin: the
#: abstract-method idiom raises NotImplementedError from base classes
#: whose concrete subclasses always override it.
_EXEMPT = ("builtins.NotImplementedError",)

#: Any project class with this name anchors the typed hierarchy.
_ROOT_ERROR_NAME = "ReproError"


@register
class UntypedEscapeRule(ProjectRule):
    rule_id = "R102"
    title = "untyped exception can escape a public API"
    rationale = (
        "Public entry points promise ReproError-typed failures so "
        "callers can catch one base class at the boundary; a raw "
        "ValueError/TypeError/KeyError escaping fit/analyze/the CLI "
        "breaks that promise in a way no behaviour test observes."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        entries = [
            qualname
            for qualname in PUBLIC_ENTRY_POINTS
            if qualname in project.functions
        ]
        if not entries:
            return
        analysis = EscapeAnalysis(project)
        roots = [
            qualname
            for qualname in sorted(project.classes)
            if qualname.rpartition(".")[2] == _ROOT_ERROR_NAME
        ]
        # origin -> entry points it escapes from (dedup across entries).
        offenders: dict[tuple[str, int, int, str], list[str]] = {}
        for entry in entries:
            for exception, origins in sorted(
                analysis.escaping(entry).items()
            ):
                if not self._flagged(analysis, exception, roots):
                    continue
                for origin in sorted(origins):
                    key = (
                        origin.path, origin.line, origin.col,
                        origin.exception,
                    )
                    offenders.setdefault(key, []).append(entry)
        for (path, line, col, exception), reached in sorted(
            offenders.items()
        ):
            shown = ", ".join(reached[:3])
            if len(reached) > 3:
                shown += f", … ({len(reached)} entry points)"
            name = exception.rpartition(".")[2]
            yield self.project_finding(
                path, line, col,
                f"{name} raised here can escape the public API "
                f"untyped (reaches {shown}); raise a ReproError "
                "subclass at the boundary",
            )

    @staticmethod
    def _flagged(
        analysis: EscapeAnalysis, exception: str, roots: list[str]
    ) -> bool:
        if any(analysis.derives_from(exception, root) for root in roots):
            return False
        if any(
            analysis.is_subclass_of(exception, exempt)
            for exempt in _EXEMPT
        ):
            return False
        return any(
            analysis.is_subclass_of(exception, builtin)
            for builtin in _FLAGGED_BUILTINS
        )
