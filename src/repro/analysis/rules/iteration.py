"""R004 — nondeterministic iteration order.

Training data must be assembled in a deterministic order: hash
randomization makes ``set`` iteration differ between interpreter
runs, and ``os.listdir`` / ``Path.iterdir`` / ``glob`` return
filesystem order.  Either one upstream of a ``fit`` silently changes
bootstraps, folds and learned trees between otherwise identical runs
(the evaluation runner sorts its group sets for exactly this reason).

Flagged:

* ``for … in`` (or a comprehension) iterating directly over a ``set``
  display, ``set(…)`` / ``frozenset(…)`` call, or set comprehension;
* any ``os.listdir`` / ``os.scandir`` / ``glob.glob`` / ``glob.iglob``
  call, or ``.iterdir()`` / ``.glob()`` / ``.rglob()`` method call,
  that is not wrapped in ``sorted(…)`` within the same statement.

Sorting first (``sorted(set(xs))``, ``sorted(path.glob("*.csv"))``)
is the fix and is never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo

_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
_LISTING_FUNCTIONS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)
_LISTING_METHODS = frozenset({"iterdir", "glob", "rglob", "scandir"})


@register
class NondeterministicIterationRule(Rule):
    rule_id = "R004"
    title = "iteration over an unordered source"
    rationale = (
        "set iteration order and directory listing order vary "
        "between runs; feeding either into training breaks "
        "seed-for-seed reproducibility in ways no unit test catches."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iterables: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ):
                iterables.extend(g.iter for g in node.generators)
            for iterable in iterables:
                if self._is_set_valued(iterable):
                    yield self.finding(
                        module, iterable.lineno, iterable.col_offset,
                        "iterating a set has no stable order; sort it "
                        "first (sorted(...))",
                    )
            if isinstance(node, ast.Call):
                listing = self._listing_call(node)
                if listing and not self._under_sorted(module, node):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        f"{listing} returns filesystem order; wrap it "
                        "in sorted(...)",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _is_set_valued(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in _SET_CONSTRUCTORS
        return False

    @staticmethod
    def _listing_call(node: ast.Call) -> str | None:
        name = dotted_name(node.func)
        if name in _LISTING_FUNCTIONS:
            return name
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LISTING_METHODS
        ):
            return f".{node.func.attr}()"
        return None

    @staticmethod
    def _under_sorted(module: ModuleInfo, node: ast.Call) -> bool:
        for ancestor in module.ancestors(node):
            if isinstance(ancestor, ast.Call):
                callee = dotted_name(ancestor.func)
                if callee == "sorted":
                    return True
            if isinstance(ancestor, ast.stmt):
                break
        return False
