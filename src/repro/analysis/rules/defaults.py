"""R005 — mutable default arguments.

A ``def f(x, cache={})`` default is evaluated once at import and
shared by every call — state leaks across calls, across tests, and
(for the estimators) across fits.  The convention here, as in the
rest of the scientific Python world, is a ``None`` default plus an
explicit ``x = x if x is not None else {}`` in the body (see
``keys: list | None = None`` in ``repro.eval.runner``).

Flagged default expressions: list/dict/set displays, comprehensions,
and calls to the mutable builtin constructors (``list``, ``dict``,
``set``, ``bytearray``, ``collections.defaultdict``, …).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list", "dict", "set", "bytearray", "defaultdict",
        "OrderedDict", "Counter", "deque",
        "collections.defaultdict", "collections.OrderedDict",
        "collections.Counter", "collections.deque",
    }
)
_MUTABLE_DISPLAYS = (
    ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.DictComp, ast.SetComp,
)


@register
class MutableDefaultRule(Rule):
    rule_id = "R005"
    title = "mutable default argument"
    rationale = (
        "Defaults are evaluated once and shared across calls; a "
        "mutable one is cross-call hidden state, the exact opposite "
        "of the stateless estimator convention."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    name = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        module, default.lineno, default.col_offset,
                        f"function {name!r} has a mutable default "
                        f"({ast.unparse(default)}); use None and "
                        "construct inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, _MUTABLE_DISPLAYS):
            return True
        if isinstance(node, ast.Call):
            return dotted_name(node.func) in _MUTABLE_CONSTRUCTORS
        return False
