"""R001 — unseeded randomness.

Reproducibility is the whole point of this repository: identical
seeds must give byte-identical forests, folds and corpora.  That only
holds if *every* random draw flows from an explicitly seeded
``numpy.random.Generator``.  The blessed path is
``repro.util.rng.as_generator`` / ``spawn``; that module is the single
place allowed to call ``default_rng``.

Flagged everywhere else:

* any call through the legacy global-state APIs — ``np.random.rand``,
  ``np.random.seed``, ``random.random``, ``random.shuffle``, … — which
  are unseeded by construction (or worse, mutate global state);
* ``default_rng()`` / ``np.random.default_rng(None)`` — an explicitly
  *fresh* entropy pull;
* ``random.Random()`` without a seed argument.

``np.random.default_rng(some_variable)`` outside the RNG module is
still flagged: call sites should go through ``as_generator`` so the
"seed or shared generator" convention stays in one place.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name, is_none_constant
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo

#: Modules allowed to talk to numpy's seeding machinery directly.
EXEMPT_MODULES = frozenset({"repro.util.rng"})

#: numpy constructors that *consume* seeds rather than draw numbers.
_NP_SEED_CONSUMERS = frozenset(
    {"Generator", "SeedSequence", "PCG64", "PCG64DXSM", "Philox",
     "MT19937", "SFC64", "BitGenerator", "RandomState"}
)


@register
class UnseededRandomRule(Rule):
    rule_id = "R001"
    title = "unseeded or global-state randomness"
    rationale = (
        "Every stochastic component must thread an explicit seed "
        "through repro.util.rng so experiments reproduce bit-for-bit; "
        "global-state and fresh-entropy APIs break that silently."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module in EXEMPT_MODULES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            message = self._diagnose(name, node)
            if message is not None:
                yield self.finding(
                    module, node.lineno, node.col_offset, message
                )

    # ------------------------------------------------------------------
    def _diagnose(self, name: str, node: ast.Call) -> str | None:
        tail = name.rsplit(".", 1)[-1]
        if name.startswith(("np.random.", "numpy.random.")):
            if tail in _NP_SEED_CONSUMERS:
                return None
            if tail == "default_rng":
                return (
                    "call repro.util.rng.as_generator(seed) instead of "
                    "default_rng at call sites"
                )
            return (
                f"legacy global-state API {name}(); draw from an "
                "explicitly seeded Generator instead"
            )
        if name == "default_rng":
            if self._missing_seed(node):
                return (
                    "default_rng() without a seed pulls fresh entropy; "
                    "pass a seed or use repro.util.rng.as_generator"
                )
            return None
        if name.startswith("random.") and name.count(".") == 1:
            if tail in {"Random", "SystemRandom"}:
                if tail == "Random" and not self._missing_seed(node):
                    return None
                return f"{name}() without an explicit seed"
            return (
                f"stdlib {name}() uses hidden global state; use a "
                "seeded numpy Generator from repro.util.rng"
            )
        return None

    @staticmethod
    def _missing_seed(node: ast.Call) -> bool:
        if node.args and not is_none_constant(node.args[0]):
            return False
        for keyword in node.keywords:
            if keyword.arg == "seed" and not is_none_constant(
                keyword.value
            ):
                return False
        return not node.args or is_none_constant(node.args[0])
