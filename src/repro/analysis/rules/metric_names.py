"""R104 — metric names are literals drawn from the declared registry.

The metrics glossary (``METRIC_NAMES`` in :mod:`repro.obs.metrics`,
mirrored in ``docs/observability.md``) is how a dashboard, a bench
report and a test agree on what ``ingest.recovered`` means.  Counter
names are plain strings, so one typo — ``ingest.recoverd`` — creates a
parallel metric that every reader silently misses.  This rule resolves
each ``.increment`` / ``.gauge`` / ``.observe`` / ``.time`` call's
*receiver* through the project graph (so ``get_metrics().increment``
and a ``metrics = get_metrics()`` local both count, while
``time.time()`` never does) and checks the name argument:

* a string literal must appear in ``METRIC_NAMES`` *exactly* —
  wildcard entries never cover literals, because a literal is fully
  known statically and letting ``feature_cache.*`` absorb a typo'd
  ``feature_cache.hitz`` would defeat the check;
* an f-string is allowed when a wildcard entry (``"feature_cache.*"``)
  covers its literal prefix — the dynamic per-corpus gauges;
* anything else (a variable, an unprefixed f-string) is a finding:
  the registry cannot vouch for a name it cannot see.

The module that declares ``METRIC_NAMES`` is exempt (the ``Metrics``
class forwards names through its own helpers), and the rule stands
down entirely when no declaration is in lint scope.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph
from repro.analysis.registry import ProjectRule, register
from repro.analysis.rules.spans import _declared_tuple, _string_elements

_DECLARATION = "METRIC_NAMES"
_METRICS_CLASS = "Metrics"
_RECORDING_METHODS = frozenset({"increment", "gauge", "observe", "time"})


def _wildcard_match(name: str, registry: frozenset[str]) -> bool:
    for entry in sorted(registry):
        if entry.endswith(".*") and name.startswith(entry[:-1]):
            return True
    return False


@register
class MetricNameRule(ProjectRule):
    rule_id = "R104"
    title = "metric name not in the declared METRIC_NAMES registry"
    rationale = (
        "Metric names are stringly-typed: a typo mints a parallel "
        "counter that dashboards and tests silently miss. Requiring "
        "literals from one declared registry turns that runtime "
        "no-show into a lint finding."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        registry: set[str] = set()
        declaring_modules: set[str] = set()
        for module_name in sorted(project.modules):
            table = project.modules[module_name]
            for stmt in table.info.tree.body:
                value = _declared_tuple(stmt, _DECLARATION)
                names = _string_elements(value)
                if names is not None:
                    registry.update(names)
                    declaring_modules.add(module_name)
        if not registry:
            return  # No registry in scope: nothing to vouch against.
        frozen = frozenset(registry)

        metrics_classes = {
            qualname
            for qualname in project.classes
            if qualname.rpartition(".")[2] == _METRICS_CLASS
            and qualname.rpartition(".")[0] in declaring_modules
        }
        if not metrics_classes:
            return

        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            if func.module.name in declaring_modules:
                continue  # the registry's own module forwards names
            for node in ast.walk(func.node):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RECORDING_METHODS
                    and node.args
                ):
                    continue
                receiver = project.eval_in(qualname, node.func.value)
                if not any(
                    kind == "instance" and target in metrics_classes
                    for kind, target in receiver
                ):
                    continue
                yield from self._check_name(
                    func, node, node.args[0], frozen
                )

    def _check_name(
        self,
        func,
        call: ast.Call,
        name_node: ast.expr,
        registry: frozenset[str],
    ) -> Iterator[Finding]:
        path = str(func.module.info.path)
        if isinstance(name_node, ast.Constant) and isinstance(
            name_node.value, str
        ):
            # Literals must match exactly; wildcard entries are for
            # dynamic names only (a wildcard absorbing a typo'd
            # literal would defeat the check).
            if name_node.value in registry:
                return
            yield self.project_finding(
                path, call.lineno, call.col_offset,
                f"metric name {name_node.value!r} is not declared in "
                f"{_DECLARATION}; add it to the registry or fix the "
                "spelling",
            )
            return
        if isinstance(name_node, ast.JoinedStr):
            values = name_node.values
            if (
                values
                and isinstance(values[0], ast.Constant)
                and isinstance(values[0].value, str)
                and _wildcard_match(values[0].value, registry)
            ):
                return
            yield self.project_finding(
                path, call.lineno, call.col_offset,
                "dynamic metric name has no wildcard entry in "
                f"{_DECLARATION} covering its literal prefix",
            )
            return
        yield self.project_finding(
            path, call.lineno, call.col_offset,
            "metric name must be a string literal from "
            f"{_DECLARATION} (or an f-string under a declared "
            "wildcard); a variable name cannot be checked",
        )
