"""R101 — bytes must become a ``Table`` only through ``io.ingest``.

PR 4's hardened front door exists so that no stray byte sequence can
reach dialect detection or the feature extractors: every decode —
encoding fallbacks, BOM stripping, NUL repair, size limits — happens
in :mod:`repro.io.ingest`, under a policy, with a report.  A function
elsewhere that decodes bytes *and* can reach a
:class:`repro.types.Table` construction without passing through the
ingest module has re-opened the hole the fuzz harness guards, and the
fuzzer can only catch it if its corpus happens to exercise that path.
This rule closes it statically: decode sites are syntactic (a
``.decode(...)`` / ``.read_bytes()`` / ``codecs.decode`` / binary
``open``), Table reachability is computed over the project call graph
with ``repro.io.ingest`` treated as an opaque, trusted boundary.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph
from repro.analysis.registry import ProjectRule, register

#: Modules allowed to decode bytes into tables (the trusted boundary);
#: the reachability walk does not descend into them either.
_INGEST_MODULES = ("repro.io.ingest",)

_TABLE_SUFFIX = ".types.Table"


def _is_table_class(qualname: str) -> bool:
    return qualname == "types.Table" or qualname.endswith(_TABLE_SUFFIX)


def _in_ingest(module_name: str) -> bool:
    return any(
        module_name == m or module_name.startswith(m + ".")
        for m in _INGEST_MODULES
    )


def _decode_site(node: ast.Call) -> str | None:
    """A human-readable label when ``node`` is a bytes-decoding call."""
    func = node.func
    if isinstance(func, ast.Attribute):
        # Covers both `raw.decode(...)` and `codecs.decode(raw, ...)`.
        if func.attr == "decode":
            return ".decode()"
        if func.attr == "read_bytes":
            return ".read_bytes()"
    if isinstance(func, ast.Name) and func.id == "open":
        if len(node.args) >= 2:
            mode = node.args[1]
            if isinstance(mode, ast.Constant) and isinstance(
                mode.value, str
            ) and "b" in mode.value:
                return "open(..., 'rb')"
    return None


@register
class IngestGateRule(ProjectRule):
    rule_id = "R101"
    title = "bytes-to-Table path outside the ingest front door"
    rationale = (
        "Every byte-level repair (encoding fallback, BOM, NULs, size "
        "limits) lives in repro.io.ingest; a decode that can reach a "
        "Table construction anywhere else bypasses the policy and the "
        "report, recreating the crash class the hardened front door "
        "retired."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        for qualname in sorted(project.functions):
            func = project.functions[qualname]
            if _in_ingest(func.module.name):
                continue
            decode_sites = [
                (node, label)
                for node in ast.walk(func.node)
                if isinstance(node, ast.Call)
                for label in (_decode_site(node),)
                if label is not None
            ]
            if not decode_sites:
                continue
            construction = self._reachable_table_construction(
                project, qualname
            )
            if construction is None:
                continue
            where, line = construction
            for node, label in decode_sites:
                yield self.project_finding(
                    str(func.module.info.path),
                    node.lineno,
                    node.col_offset,
                    f"{label} here can reach a Table construction at "
                    f"{where}:{line} without passing through "
                    "repro.io.ingest; bytes must enter through the "
                    "hardened front door",
                )

    @staticmethod
    def _reachable_table_construction(
        project: ProjectGraph, qualname: str
    ) -> tuple[str, int] | None:
        for reached in project.reachable_from(
            qualname, skip_module_prefixes=_INGEST_MODULES
        ):
            func = project.functions.get(reached)
            if func is not None and _in_ingest(func.module.name):
                continue
            for site in project.instantiations_in(reached):
                if _is_table_class(site.class_qualname):
                    return reached, site.line
        return None
