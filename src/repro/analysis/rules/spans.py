"""R103 — tracer span names match the declared pipeline stages.

``PIPELINE_STAGES`` in :mod:`repro.obs.trace` is the single source of
truth for stage names: the benchmark harness reads its stage table
from spans carrying them and the docs promise the same spellings.  A
typo'd ``tracer.span("line_featuers")`` silently produces a trace the
bench report cannot see; a stage declared but never instrumented is a
dashboard row that is forever empty.  Both halves are whole-program
properties — span call sites are scattered over ``io``, ``core``,
``eval`` and ``perf`` — so the rule reads the declarations statically
from the ASTs in scope (never importing ``repro.obs``, which would
break the analysis layer's R002 footprint) and checks:

* every *literal* span name is declared (``PIPELINE_STAGES`` or the
  auxiliary ``AUX_SPANS`` — lifecycle spans like ``fit``/``analyze``);
* every declared pipeline stage has at least one literal call site.

Coverage is only enforced when the lint scope actually contains both
the declaring module and at least one other module using spans —
linting a single file in isolation must not report the whole pipeline
as uninstrumented.  Dynamic span names (``tracer.span(args.command)``)
are out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ProjectGraph
from repro.analysis.registry import ProjectRule, register

_STAGE_DECLARATION = "PIPELINE_STAGES"
_AUX_DECLARATION = "AUX_SPANS"


def _declared_tuple(stmt: ast.stmt, name: str) -> ast.expr | None:
    """The value expression of a module-level ``name = (…)`` binding."""
    if isinstance(stmt, ast.AnnAssign):
        target = stmt.target
        if isinstance(target, ast.Name) and target.id == name:
            return stmt.value
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name) and target.id == name:
            return stmt.value
    return None


def _string_elements(value: ast.expr | None) -> list[str] | None:
    if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return None
    names: list[str] = []
    for element in value.elts:
        if not (
            isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ):
            return None
        names.append(element.value)
    return names


@register
class SpanCoverageRule(ProjectRule):
    rule_id = "R103"
    title = "span name not declared, or declared stage never spanned"
    rationale = (
        "PIPELINE_STAGES is the contract between instrumentation, the "
        "bench stage table and the docs; a misspelled span name or an "
        "uninstrumented stage silently breaks that contract and no "
        "behaviour test reads trace names."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        stages: list[str] = []
        allowed: set[str] = set()
        declaring: dict[str, tuple[str, int]] = {}
        declaring_modules: set[str] = set()
        for module_name in sorted(project.modules):
            table = project.modules[module_name]
            for stmt in table.info.tree.body:
                for declaration in (_STAGE_DECLARATION, _AUX_DECLARATION):
                    value = _declared_tuple(stmt, declaration)
                    if value is None:
                        continue
                    names = _string_elements(value)
                    if names is None:
                        continue
                    declaring_modules.add(module_name)
                    allowed.update(names)
                    if declaration == _STAGE_DECLARATION:
                        stages.extend(
                            n for n in names if n not in stages
                        )
                        for name in names:
                            declaring.setdefault(
                                name,
                                (str(table.info.path), stmt.lineno),
                            )
        if not stages:
            return  # No declaration in scope: nothing checkable.

        used: set[str] = set()
        external_sites = False
        for module_name in sorted(project.modules):
            table = project.modules[module_name]
            for node in ast.walk(table.info.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "span"
                    and node.args
                ):
                    continue
                first = node.args[0]
                if not (
                    isinstance(first, ast.Constant)
                    and isinstance(first.value, str)
                ):
                    continue  # dynamic span names are out of scope
                name = first.value
                used.add(name)
                if module_name not in declaring_modules:
                    external_sites = True
                if name not in allowed:
                    yield self.project_finding(
                        str(table.info.path),
                        node.lineno,
                        node.col_offset,
                        f"span name {name!r} is not declared in "
                        f"{_STAGE_DECLARATION} or {_AUX_DECLARATION}; "
                        "declare it or fix the spelling",
                    )
        if not external_sites:
            return  # Partial scope: coverage would be all noise.
        for stage in stages:
            if stage in used:
                continue
            path, line = declaring[stage]
            yield self.project_finding(
                path, line, 0,
                f"pipeline stage {stage!r} is declared but no "
                "tracer.span(...) call site uses it; instrument the "
                "stage or retire the name",
            )
