"""R002 — layer-boundary imports.

The package layering (``repro.analysis.layering``) is a declared DAG:
``core`` may never import ``ml``/``eval``/``baselines``, ``ml`` may
never import ``eval``, and so on.  The rule resolves every ``import``
/ ``from … import`` (module-level *and* function-local — a lazy
import is still a dependency) to a layering node and checks the edge
against the declaration.

Relative imports are resolved against the module's own dotted name so
``from ..ml import forest`` inside ``repro.core`` is caught just like
the absolute spelling.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.layering import ALLOWED_DEPENDENCIES, node_for_module
from repro.analysis.registry import Rule, register
from repro.analysis.runner import ModuleInfo


@register
class LayerBoundaryRule(Rule):
    rule_id = "R002"
    title = "import crosses a declared layer boundary"
    rationale = (
        "The core -> ml -> eval layering must stay acyclic as the "
        "system grows; upward imports make lower layers untestable "
        "in isolation and eventually force real import cycles."
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        source_node = node_for_module(module.module)
        if source_node is None:
            return
        allowed = ALLOWED_DEPENDENCIES.get(source_node, frozenset())
        is_package = module.path.name == "__init__.py"
        for node in ast.walk(module.tree):
            for target in self._import_targets(
                node, module.module, is_package
            ):
                target_node = node_for_module(target)
                if target_node is None or target_node == source_node:
                    continue
                if target_node not in allowed:
                    yield self.finding(
                        module,
                        node.lineno,
                        node.col_offset,
                        f"layer {source_node!r} may not import "
                        f"{target!r} (layer {target_node!r}); allowed: "
                        f"{sorted(allowed) or 'nothing'}",
                    )

    # ------------------------------------------------------------------
    @staticmethod
    def _import_targets(
        node: ast.AST, module: str, is_package: bool
    ) -> list[str]:
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if isinstance(node, ast.ImportFrom):
            if node.level == 0:
                return [node.module] if node.module else []
            # Resolve `from ..pkg import x` against our own name;
            # level 1 is the containing package, which for an
            # __init__ module is the module itself.
            parts = module.split(".")
            if is_package:
                parts = parts + ["__init__"]
            base = parts[: max(len(parts) - node.level, 0)]
            prefix = ".".join(base)
            if node.module:
                prefix = f"{prefix}.{node.module}" if prefix else node.module
            return [prefix] if prefix else []
        return []
