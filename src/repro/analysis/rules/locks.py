"""R105 — attributes guarded by a lock anywhere are guarded everywhere.

The concurrency story (``FeatureCache``, the tracer, the metrics
registry) is half-locked by construction: a class creates a
``threading.Lock``/``RLock`` in ``__init__`` and wraps *most* state
mutations in ``with self._lock``.  The failure mode is the forgotten
site — a later PR adds a ``reset()`` that clears the dict without the
lock, and the race it opens is invisible to every single-threaded
test.  This rule derives the guarded set *from the code itself*: any
``self.X`` mutated at least once under ``with self.<lock>`` is lock-
protected state, and every other mutation of ``X`` in the class must
either hold the lock or live in a **lock-safe helper** — an
underscore-named method whose every call site inside the class holds
the lock (``FeatureCache._admit``).  ``__init__`` is exempt: before
``__init__`` returns no second thread can hold ``self``.

Mutations counted: assignment / augmented assignment / ``del`` through
``self.X`` (including subscripts and nested attributes, which mutate
the object held by ``X``), and calls to known mutator methods
(``.append`` / ``.update`` / ``.pop`` / …) on ``self.X``.  Reads are
deliberately out of scope — unlocked reads are a policy choice the
tracer makes on purpose.

**Module-level state** gets the same treatment (PR 9): a module that
creates a top-level ``threading.Lock()`` and mutates a module global
under ``with _LOCK:`` somewhere has declared that global shared
state, and every other mutation of it — from any function or method
in the module — must hold the lock or live in a lock-safe
underscore-named top-level helper.  There is no ``__init__``
exemption at module level: a registry like ``pool._LIVE_POOLS`` is
visible to every thread from import time, so even a constructor's
``.add`` must lock.  Module import itself (the top-level assignments
that create the state) is naturally exempt — only function bodies are
scanned.  A function that binds the same name as a plain local (no
``global`` declaration) shadows the global, and its mutations are
ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.graph import ClassInfo, ModuleTable, ProjectGraph
from repro.analysis.registry import ProjectRule, register

_LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem",
    "clear", "update", "setdefault", "add", "discard",
    "move_to_end", "sort", "reverse",
})


def _name_root(node: ast.expr) -> str | None:
    """The ``X`` in an ``X``-rooted chain (``X``, ``X[k]``,
    ``X.field[k]``), else ``None``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _self_attr_root(node: ast.expr) -> str | None:
    """The ``X`` in a ``self.X``-rooted chain, else ``None``.

    Peels subscripts and attribute accesses: ``self.X[k]``,
    ``self.X.field`` and ``self.X[k].field`` all root at ``X``.
    """
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


@register
class LockDisciplineRule(ProjectRule):
    rule_id = "R105"
    title = "lock-guarded attribute mutated without the lock"
    rationale = (
        "A class that wraps some mutations of an attribute in `with "
        "self._lock` has declared that attribute shared state; one "
        "unlocked mutation site reopens the race, and single-threaded "
        "tests cannot catch it."
    )

    def check_project(self, project: ProjectGraph) -> Iterator[Finding]:
        for qualname in sorted(project.classes):
            cls = project.classes[qualname]
            locks = self._lock_attrs(project, cls)
            if not locks:
                continue
            yield from self._check_class(cls, locks)
        for name in sorted(project.modules):
            table = project.modules[name]
            locks = self._module_locks(project, table)
            if not locks:
                continue
            yield from self._check_module(table, locks)

    # ------------------------------------------------------------------
    @staticmethod
    def _lock_attrs(project: ProjectGraph, cls: ClassInfo) -> frozenset[str]:
        """Attributes assigned a ``threading.Lock()``/``RLock()``."""
        attrs: set[str] = set()
        for name in sorted(cls.methods):
            method = cls.methods[name]
            for node in ast.walk(method.node):
                if not (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Attribute)
                    and isinstance(node.targets[0].value, ast.Name)
                    and node.targets[0].value.id == "self"
                    and isinstance(node.value, ast.Call)
                ):
                    continue
                origin = project.resolve_origin(
                    cls.module, node.value.func
                )
                if origin in _LOCK_TYPES:
                    attrs.add(node.targets[0].attr)
        return frozenset(attrs)

    def _check_class(
        self, cls: ClassInfo, locks: frozenset[str]
    ) -> Iterator[Finding]:
        # (method, attr, node, directly_under_lock) for every mutation;
        # (caller_method, callee_method, under_lock) for self-calls.
        mutations: list[tuple[str, str, ast.AST, bool]] = []
        self_calls: list[tuple[str, str, bool]] = []
        for name in sorted(cls.methods):
            if name == "__init__":
                continue
            method = cls.methods[name]
            self._scan(
                name, method.node.body, locks, False,
                mutations, self_calls,
            )

        # Lock-safe helpers: underscore-named methods whose every
        # in-class call site holds the lock (directly, or from another
        # lock-safe helper).  Iterated to a fixpoint.
        callers: dict[str, list[tuple[str, bool]]] = {}
        for caller, callee, locked in self_calls:
            callers.setdefault(callee, []).append((caller, locked))
        lock_safe: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(cls.methods):
                if (
                    name in lock_safe
                    or not name.startswith("_")
                    or name.startswith("__")
                ):
                    continue
                sites = callers.get(name, [])
                if sites and all(
                    locked or caller in lock_safe
                    for caller, locked in sites
                ):
                    lock_safe.add(name)
                    changed = True

        guarded: set[str] = set()
        for _, attr, _, locked in mutations:
            if attr in locks:
                continue  # re-binding the lock itself is not state
            if locked:
                guarded.add(attr)
        if not guarded:
            return
        for method, attr, node, locked in mutations:
            if attr not in guarded or locked or method in lock_safe:
                continue
            yield self.project_finding(
                str(cls.module.info.path),
                node.lineno,
                getattr(node, "col_offset", 0),
                f"self.{attr} is mutated under the lock elsewhere in "
                f"{cls.name} but mutated here without holding it; "
                "wrap this in `with self."
                f"{sorted(locks)[0]}` or move it into a lock-safe "
                "helper",
            )

    # ------------------------------------------------------------------
    def _scan(
        self,
        method: str,
        stmts: list[ast.stmt],
        locks: frozenset[str],
        under_lock: bool,
        mutations: list[tuple[str, str, ast.AST, bool]],
        self_calls: list[tuple[str, str, bool]],
    ) -> None:
        for stmt in stmts:
            self._scan_stmt(
                method, stmt, locks, under_lock, mutations, self_calls
            )

    def _scan_stmt(
        self,
        method: str,
        stmt: ast.stmt,
        locks: frozenset[str],
        under_lock: bool,
        mutations: list[tuple[str, str, ast.AST, bool]],
        self_calls: list[tuple[str, str, bool]],
    ) -> None:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            acquires = any(
                isinstance(item.context_expr, ast.Attribute)
                and isinstance(item.context_expr.value, ast.Name)
                and item.context_expr.value.id == "self"
                and item.context_expr.attr in locks
                for item in stmt.items
            )
            for item in stmt.items:
                self._scan_expr(
                    method, item.context_expr, locks, under_lock,
                    mutations, self_calls,
                )
            self._scan(
                method, stmt.body, locks, under_lock or acquires,
                mutations, self_calls,
            )
            return
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_target(
                    method, target, stmt, under_lock, mutations
                )
            self._scan_expr(
                method, stmt.value, locks, under_lock,
                mutations, self_calls,
            )
            return
        if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            self._record_target(
                method, stmt.target, stmt, under_lock, mutations
            )
            if stmt.value is not None:
                self._scan_expr(
                    method, stmt.value, locks, under_lock,
                    mutations, self_calls,
                )
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_target(
                    method, target, stmt, under_lock, mutations
                )
            return
        # Generic statement: recurse into child statements with the
        # same lock state, and scan embedded expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._scan_stmt(
                    method, child, locks, under_lock,
                    mutations, self_calls,
                )
            elif isinstance(child, ast.expr):
                self._scan_expr(
                    method, child, locks, under_lock,
                    mutations, self_calls,
                )
            elif isinstance(child, (ast.excepthandler, ast.withitem)):
                for grand in ast.iter_child_nodes(child):
                    if isinstance(grand, ast.stmt):
                        self._scan_stmt(
                            method, grand, locks, under_lock,
                            mutations, self_calls,
                        )
                    elif isinstance(grand, ast.expr):
                        self._scan_expr(
                            method, grand, locks, under_lock,
                            mutations, self_calls,
                        )

    def _scan_expr(
        self,
        method: str,
        expr: ast.expr,
        locks: frozenset[str],
        under_lock: bool,
        mutations: list[tuple[str, str, ast.AST, bool]],
        self_calls: list[tuple[str, str, bool]],
    ) -> None:
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                self_calls.append((method, func.attr, under_lock))
                continue
            if func.attr in _MUTATORS:
                attr = _self_attr_root(func.value)
                if attr is not None:
                    mutations.append((method, attr, node, under_lock))

    @staticmethod
    def _record_target(
        method: str,
        target: ast.expr,
        stmt: ast.stmt,
        under_lock: bool,
        mutations: list[tuple[str, str, ast.AST, bool]],
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                LockDisciplineRule._record_target(
                    method, element, stmt, under_lock, mutations
                )
            return
        attr = _self_attr_root(target)
        if attr is not None:
            mutations.append((method, attr, stmt, under_lock))

    # ------------------------------------------------------------------
    # Module-level pass
    # ------------------------------------------------------------------
    @staticmethod
    def _module_locks(
        project: ProjectGraph, table: ModuleTable
    ) -> frozenset[str]:
        """Top-level names assigned a ``threading.Lock()``/``RLock()``."""
        locks: set[str] = set()
        for stmt in table.info.tree.body:
            if not (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Call)
            ):
                continue
            origin = project.resolve_origin(table, stmt.value.func)
            if origin in _LOCK_TYPES:
                locks.add(stmt.targets[0].id)
        return frozenset(locks)

    @staticmethod
    def _module_names(table: ModuleTable) -> frozenset[str]:
        """Every name assigned at the module's top level."""
        names: set[str] = set()
        for stmt in table.info.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                if isinstance(stmt.target, ast.Name):
                    names.add(stmt.target.id)
        return frozenset(names)

    def _check_module(
        self, table: ModuleTable, locks: frozenset[str]
    ) -> Iterator[Finding]:
        module_names = self._module_names(table)
        functions = list(table.functions.values())
        for cls in table.classes.values():
            functions.extend(cls.methods.values())
        mutations: list[tuple[str, str, ast.AST, bool]] = []
        calls: list[tuple[str, str, bool]] = []
        for func in functions:
            self._scan_global_func(
                func.name, func.node, module_names, locks,
                mutations, calls,
            )
        # Lock-safe helpers: underscore top-level functions whose
        # every in-module call site holds a module lock (directly or
        # through another lock-safe helper); same fixpoint as the
        # class pass.
        callers: dict[str, list[tuple[str, bool]]] = {}
        for caller, callee, locked in calls:
            callers.setdefault(callee, []).append((caller, locked))
        lock_safe: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name in sorted(table.functions):
                if name in lock_safe or not name.startswith("_"):
                    continue
                sites = callers.get(name, [])
                if sites and all(
                    locked or caller in lock_safe
                    for caller, locked in sites
                ):
                    lock_safe.add(name)
                    changed = True
        guarded = {
            name
            for _, name, _, locked in mutations
            if locked and name not in locks
        }
        if not guarded:
            return
        for func_name, name, node, locked in mutations:
            if name not in guarded or locked or func_name in lock_safe:
                continue
            yield self.project_finding(
                str(table.info.path),
                node.lineno,
                getattr(node, "col_offset", 0),
                f"module global {name} is mutated under the lock "
                f"elsewhere in {table.name} but mutated here without "
                f"holding it; wrap this in `with "
                f"{sorted(locks)[0]}:` or move it into a lock-safe "
                "helper",
            )

    def _scan_global_func(
        self,
        func_name: str,
        func_node: ast.AST,
        module_names: frozenset[str],
        locks: frozenset[str],
        mutations: list[tuple[str, str, ast.AST, bool]],
        calls: list[tuple[str, str, bool]],
    ) -> None:
        """Scan one function for mutations of module globals.

        A name counts as the module's global inside this function
        unless the function shadows it with a plain local binding
        (no ``global`` declaration).
        """
        declared: set[str] = set()
        local_binds: set[str] = set()
        for node in ast.walk(func_node):
            if isinstance(node, ast.Global):
                declared.update(node.names)
            elif isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                local_binds.add(node.id)

        def is_global(name: str) -> bool:
            if name not in module_names:
                return False
            return name in declared or name not in local_binds

        def record(target: ast.expr, stmt: ast.stmt, locked: bool):
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    record(element, stmt, locked)
                return
            if isinstance(target, ast.Name):
                # A plain-name rebind is a mutation only when the
                # function declared the name global; otherwise it just
                # creates a shadowing local.
                if target.id in declared and target.id in module_names:
                    mutations.append(
                        (func_name, target.id, stmt, locked)
                    )
                return
            root = _name_root(target)
            if root is not None and is_global(root):
                mutations.append((func_name, root, stmt, locked))

        def scan_expr(expr: ast.expr, locked: bool):
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if isinstance(func, ast.Name):
                    calls.append((func_name, func.id, locked))
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    root = _name_root(func.value)
                    if root is not None and is_global(root):
                        mutations.append(
                            (func_name, root, node, locked)
                        )

        def scan_stmt(stmt: ast.stmt, locked: bool):
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquires = any(
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id in locks
                    for item in stmt.items
                )
                for item in stmt.items:
                    scan_expr(item.context_expr, locked)
                for child in stmt.body:
                    scan_stmt(child, locked or acquires)
                return
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    record(target, stmt, locked)
                scan_expr(stmt.value, locked)
                return
            if isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                record(stmt.target, stmt, locked)
                if stmt.value is not None:
                    scan_expr(stmt.value, locked)
                return
            if isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    record(target, stmt, locked)
                return
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    scan_stmt(child, locked)
                elif isinstance(child, ast.expr):
                    scan_expr(child, locked)
                elif isinstance(
                    child, (ast.excepthandler, ast.withitem)
                ):
                    for grand in ast.iter_child_nodes(child):
                        if isinstance(grand, ast.stmt):
                            scan_stmt(grand, locked)
                        elif isinstance(grand, ast.expr):
                            scan_expr(grand, locked)

        for stmt in func_node.body:
            scan_stmt(stmt, False)
