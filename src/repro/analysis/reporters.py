"""Render findings for terminals (text) and tooling (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.analysis.findings import Finding


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE message`` line per finding + summary."""
    if not findings:
        return "repro lint: no findings"
    lines = [finding.render() for finding in findings]
    by_rule = Counter(finding.rule_id for finding in findings)
    summary = ", ".join(
        f"{rule}: {count}" for rule, count in sorted(by_rule.items())
    )
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun} ({summary})")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Stable machine-readable report for CI annotation tooling."""
    by_rule = Counter(finding.rule_id for finding in findings)
    payload = {
        "findings": [finding.to_dict() for finding in findings],
        "count": len(findings),
        "by_rule": dict(sorted(by_rule.items())),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
