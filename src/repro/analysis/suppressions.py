"""Per-line suppression comments: ``# repro: noqa[R001]``.

Three accepted spellings, always on the same physical line as the
finding (for multi-line statements: the line where the statement
starts, which is where every rule anchors its findings):

* ``# repro: noqa`` — waive every rule on this line;
* ``# repro: noqa[R002]`` — waive one rule;
* ``# repro: noqa[R001,R004]`` — waive several.

Comments are located with :mod:`tokenize` rather than substring
search, so a string literal *containing* the marker never suppresses
anything.
"""

from __future__ import annotations

import io
import re
import tokenize

_MARKER = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)

#: Sentinel meaning "all rules suppressed on this line".
ALL_RULES = frozenset({"*"})


def collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> suppressed rule ids (``ALL_RULES`` = all).

    Unreadable or syntactically broken trailing source (tokenize can
    fail on files :func:`ast.parse` accepts only in exotic cases) is
    treated as having no suppressions; the lint run itself will
    surface the real problem.
    """
    suppressed: dict[int, frozenset[str]] = {}
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressed
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _MARKER.search(token.string)
        if not match:
            continue
        line = token.start[0]
        ids = match.group("ids")
        if ids is None:
            suppressed[line] = ALL_RULES
        else:
            parsed = frozenset(
                part.strip().upper()
                for part in ids.split(",")
                if part.strip()
            )
            suppressed[line] = suppressed.get(line, frozenset()) | parsed
    return suppressed


def is_suppressed(
    suppressions: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is waived on ``line``."""
    ids = suppressions.get(line)
    if ids is None:
        return False
    return ids is ALL_RULES or "*" in ids or rule_id in ids
