"""Whole-program project model: symbols, imports, calls, values.

The per-module rules (R001–R006) see one tree at a time; the R100
series needs to see the *program* — which function calls which, what a
``self.`` attribute holds, what the composition root registered into a
module-level factory slot.  :class:`ProjectGraph` builds exactly that
from the already-parsed :class:`~repro.analysis.runner.ModuleInfo`
objects, with no imports executed: everything is recovered statically
from the ASTs, so linting a tree can never run its code (and the
``analysis`` layer keeps its no-dependency footprint, rule R002).

The model is a deliberately coarse abstract interpretation:

* every expression evaluates to a set of **values** — ``("module", q)``,
  ``("class", q)``, ``("func", q)`` or ``("instance", q)`` tuples with
  dotted qualnames — and anything unresolvable evaluates to the empty
  set (analyses must treat "no information" as "no claim");
* containers are transparent: a list/tuple/dict display evaluates to
  the union of its element values and a subscript passes the container
  value through.  That single approximation is what resolves the CLI's
  ``handlers[args.command](args, out)`` dict dispatch;
* assignments through a ``global`` statement inside a function make
  that function a **registrar**: every call site's argument values
  flow into the module-level slot, which is how the factory
  registration in ``repro/__init__.py``
  (``set_default_classifier_factory(RandomForestClassifier)``) becomes
  a resolvable call edge from ``StrudelLineClassifier.fit`` to
  ``RandomForestClassifier.fit``;
* the whole build iterates to a fixpoint (bounded passes) so return
  values, instance-attribute types and registry contents can feed each
  other.

Everything downstream — the raise-propagation analysis in
:mod:`repro.analysis.flow`, the R101 ingest gate, the R104 metric-name
check, the R105 lock discipline — reads this one structure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.runner import ModuleInfo

#: A resolved abstract value: ``(kind, qualname)`` where kind is one of
#: ``module`` / ``class`` / ``func`` / ``instance``.  Unknown external
#: symbols stay ``("module", dotted)`` so attribute chains on them keep
#: their textual identity (``("module", "threading.Lock")``).
Value = tuple[str, str]

#: Upper bound on fixpoint passes.  The deepest real chain in this
#: repository (registry -> _default_classifier -> _make_model ->
#: fit-site resolution) converges in four; the bound only guards
#: against pathological inputs.
_MAX_PASSES = 6


@dataclass
class FunctionInfo:
    """One function or method: where it lives and what we learned."""

    qualname: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    module: "ModuleTable"
    cls: "ClassInfo | None" = None
    #: Module-level qualname of the global this function assigns its
    #: own parameter into (the registrar pattern), or ``None``.
    registrar_for: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    def is_method(self) -> bool:
        return self.cls is not None

    def decorator_names(self) -> list[str]:
        names = []
        for dec in self.node.decorator_list:
            dotted = dotted_name(dec.func if isinstance(dec, ast.Call) else dec)
            if dotted:
                names.append(dotted)
        return names


@dataclass
class ClassInfo:
    """One class: methods, declared bases, inferred attribute values."""

    qualname: str
    node: ast.ClassDef
    module: "ModuleTable"
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: Canonical dotted names of the declared bases (project classes
    #: resolve to their qualnames; externals keep their spelling).
    bases: list[str] = field(default_factory=list)
    #: ``self.attr`` -> values ever assigned to it (grown monotonically
    #: across fixpoint passes; includes dataclass field annotations).
    attr_values: dict[str, set[Value]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ModuleTable:
    """Per-module symbol table derived from one parsed file."""

    info: ModuleInfo
    name: str
    #: Local name -> dotted import target (``from x import y as z``
    #: binds ``z -> x.y``; ``import a.b`` binds ``a -> a``).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Module-level simple assignments, abstractly evaluated
    #: (``_METRICS = Metrics()`` -> ``{("instance", …Metrics)}``).
    module_values: dict[str, set[Value]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its AST node."""

    caller: str
    callee: str
    node: ast.Call

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class Instantiation:
    """One resolved ``SomeClass(...)`` construction site."""

    caller: str
    class_qualname: str
    node: ast.Call

    @property
    def line(self) -> int:
        return self.node.lineno


class ProjectGraph:
    """The whole-program model over a set of parsed modules.

    Build with :meth:`build`; query ``modules`` / ``functions`` /
    ``classes`` / ``calls_from`` / ``instantiations_in`` /
    ``reachable_from``.  All containers are keyed by dotted qualname
    and iterate deterministically (sorted keys) so analyses built on
    top produce stable finding orders.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleTable] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Module-global qualname -> values registered into it through
        #: registrar functions (monotone across passes).
        self.registries: dict[str, set[Value]] = {}
        self.return_values: dict[str, frozenset[Value]] = {}
        self._calls: dict[str, list[CallSite]] = {}
        self._instantiations: dict[str, list[Instantiation]] = {}
        self._envs: dict[str, dict[str, frozenset[Value]]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: Iterable[ModuleInfo]) -> "ProjectGraph":
        graph = cls()
        for info in sorted(modules, key=lambda m: m.module):
            # Last table wins on duplicate dotted names (ad-hoc
            # fixtures sharing a stem); real trees have unique names.
            graph.modules[info.module] = graph._build_table(info)
        graph._index_symbols()
        graph._resolve_bases()
        graph._detect_registrars()
        graph._run_fixpoint()
        return graph

    def _build_table(self, info: ModuleInfo) -> ModuleTable:
        table = ModuleTable(info=info, name=info.module)
        for stmt in info.tree.body:
            self._collect_stmt(table, stmt)
        return table

    def _collect_stmt(self, table: ModuleTable, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            self._collect_import(table, stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qual = f"{table.name}.{stmt.name}"
            table.functions[stmt.name] = FunctionInfo(
                qualname=qual, node=stmt, module=table
            )
        elif isinstance(stmt, ast.ClassDef):
            qual = f"{table.name}.{stmt.name}"
            cls_info = ClassInfo(qualname=qual, node=stmt, module=table)
            for body_stmt in stmt.body:
                if isinstance(
                    body_stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    cls_info.methods[body_stmt.name] = FunctionInfo(
                        qualname=f"{qual}.{body_stmt.name}",
                        node=body_stmt,
                        module=table,
                        cls=cls_info,
                    )
            table.classes[stmt.name] = cls_info
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards, conditional imports.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    self._collect_stmt(table, child)

    @staticmethod
    def _collect_import(
        table: ModuleTable, stmt: ast.Import | ast.ImportFrom
    ) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    table.imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".")[0]
                    table.imports[root] = root
            return
        base = stmt.module or ""
        if stmt.level:
            parts = table.name.split(".")
            anchor = parts[: max(len(parts) - stmt.level, 0)]
            prefix = ".".join(anchor)
            base = f"{prefix}.{base}" if base and prefix else (prefix or base)
        for alias in stmt.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            table.imports[local] = f"{base}.{alias.name}" if base else alias.name

    def _index_symbols(self) -> None:
        for name in sorted(self.modules):
            table = self.modules[name]
            for func in table.functions.values():
                self.functions[func.qualname] = func
            for cls_info in table.classes.values():
                self.classes[cls_info.qualname] = cls_info
                for method in cls_info.methods.values():
                    self.functions[method.qualname] = method

    def _resolve_bases(self) -> None:
        for qual in sorted(self.classes):
            cls_info = self.classes[qual]
            for base in cls_info.node.bases:
                dotted = dotted_name(base)
                if dotted is None:
                    continue
                cls_info.bases.append(
                    self.canonical_name(cls_info.module, dotted)
                )

    def _detect_registrars(self) -> None:
        """Mark functions that assign a parameter into a module global."""
        for qual in sorted(self.functions):
            func = self.functions[qual]
            if func.is_method():
                continue
            globals_declared: set[str] = set()
            for stmt in ast.walk(func.node):
                if isinstance(stmt, ast.Global):
                    globals_declared.update(stmt.names)
            if not globals_declared:
                continue
            params = {a.arg for a in func.node.args.args}
            for stmt in ast.walk(func.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not (
                    len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id in globals_declared
                    and isinstance(stmt.value, ast.Name)
                    and stmt.value.id in params
                ):
                    continue
                func.registrar_for = (
                    f"{func.module.name}.{stmt.targets[0].id}"
                )
                break

    def _run_fixpoint(self) -> None:
        previous: dict[str, frozenset[Value]] = {}
        for _ in range(_MAX_PASSES):
            self._calls = {}
            self._instantiations = {}
            self._envs = {}
            for name in sorted(self.modules):
                table = self.modules[name]
                evaluator = _Evaluator(self, table, func=None)
                evaluator.exec_block(table.info.tree.body)
            returns: dict[str, frozenset[Value]] = {}
            for qual in sorted(self.functions):
                func = self.functions[qual]
                evaluator = _Evaluator(self, func.module, func=func)
                returns[qual] = evaluator.run_function()
                self._envs[qual] = {
                    name: frozenset(vals)
                    for name, vals in evaluator.env.items()
                }
            self.return_values = returns
            if returns == previous:
                break
            previous = returns

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def canonical_name(
        self, table: ModuleTable, dotted: str, _seen: frozenset[str] = frozenset()
    ) -> str:
        """Follow import aliases to a canonical dotted name.

        ``get_metrics`` spelled in ``repro.perf.cache`` canonicalizes
        to ``repro.obs.metrics.get_metrics`` (through the ``repro.obs``
        re-export); external names keep their spelling
        (``threading.Lock``).
        """
        head, _, rest = dotted.partition(".")
        if head in table.functions or head in table.classes:
            dotted = f"{table.name}.{dotted}"
        elif head in table.imports:
            target = table.imports[head]
            dotted = f"{target}.{rest}" if rest else target
        return self._canonical_dotted(dotted, _seen)

    def _canonical_dotted(self, dotted: str, seen: frozenset[str]) -> str:
        if dotted in seen:
            return dotted
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:i])
            if prefix not in self.modules:
                continue
            table = self.modules[prefix]
            member, rest = parts[i], parts[i + 1:]
            if member in table.functions or member in table.classes:
                return ".".join([prefix, member] + rest)
            if member in table.imports:
                target = table.imports[member]
                return self._canonical_dotted(
                    ".".join([target] + rest), seen | {dotted}
                )
            return dotted
        return dotted

    def values_for(self, canonical: str) -> frozenset[Value]:
        """Abstract values behind a canonical dotted name."""
        if canonical in self.modules:
            return frozenset({("module", canonical)})
        if canonical in self.classes:
            return frozenset({("class", canonical)})
        if canonical in self.functions:
            return frozenset({("func", canonical)})
        prefix, _, last = canonical.rpartition(".")
        values: set[Value] = set()
        if prefix in self.modules:
            values.update(self.modules[prefix].module_values.get(last, ()))
            values.update(self.registries.get(canonical, ()))
            if values:
                return frozenset(values)
        if prefix in self.classes:
            method = self.classes[prefix].methods.get(last)
            if method is not None:
                return frozenset({("func", method.qualname)})
        # Opaque external symbol: keep the dotted chain alive.
        return frozenset({("module", canonical)})

    def resolve_origin(self, table: ModuleTable, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or None."""
        dotted = dotted_name(node)
        if dotted is None:
            return None
        return self.canonical_name(table, dotted)

    def class_ancestry(self, qualname: str) -> Iterator[str]:
        """The project-class ancestor chain (canonical names), with
        external/builtin base names included as leaves."""
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            cls_info = self.classes.get(current)
            if cls_info is not None:
                stack.extend(reversed(cls_info.bases))

    def method_on(self, class_qual: str, attr: str) -> FunctionInfo | None:
        """Resolve ``attr`` as a method on ``class_qual`` or its bases."""
        for ancestor in self.class_ancestry(class_qual):
            cls_info = self.classes.get(ancestor)
            if cls_info is not None and attr in cls_info.methods:
                return cls_info.methods[attr]
        return None

    def attr_values_on(self, class_qual: str, attr: str) -> frozenset[Value]:
        """Inferred values of an instance attribute, bases included."""
        values: set[Value] = set()
        for ancestor in self.class_ancestry(class_qual):
            cls_info = self.classes.get(ancestor)
            if cls_info is not None:
                values.update(cls_info.attr_values.get(attr, ()))
        return frozenset(values)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def calls_from(self, qualname: str) -> list[CallSite]:
        return self._calls.get(qualname, [])

    def instantiations_in(self, qualname: str) -> list[Instantiation]:
        return self._instantiations.get(qualname, [])

    def env_of(self, qualname: str) -> dict[str, frozenset[Value]]:
        """The final abstract local environment of one function."""
        return self._envs.get(qualname, {})

    def eval_in(self, qualname: str, node: ast.expr) -> frozenset[Value]:
        """Re-evaluate one expression in a function's final environment
        (read-only: records no new edges)."""
        func = self.functions.get(qualname)
        if func is None:
            return frozenset()
        evaluator = _Evaluator(self, func.module, func=func, record=False)
        evaluator.env = {
            name: set(vals) for name, vals in self.env_of(qualname).items()
        }
        evaluator.bind_parameters()
        return frozenset(evaluator.eval(node))

    def reachable_from(
        self, qualname: str, skip_module_prefixes: tuple[str, ...] = ()
    ) -> list[str]:
        """Functions reachable from ``qualname`` over call edges.

        Traversal never descends *into* a function whose module matches
        one of ``skip_module_prefixes`` (the function itself is listed,
        its callees are not) — R101 uses this to treat ``io.ingest`` as
        an opaque, trusted boundary.
        """
        seen: set[str] = set()
        stack = [qualname]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            func = self.functions.get(current)
            if func is not None and any(
                func.module.name == p or func.module.name.startswith(p + ".")
                for p in skip_module_prefixes
            ):
                continue
            for site in self.calls_from(current):
                if site.callee not in seen:
                    stack.append(site.callee)
        return sorted(seen)

    def record_call(self, caller: str, callee: str, node: ast.Call) -> None:
        self._calls.setdefault(caller, []).append(
            CallSite(caller=caller, callee=callee, node=node)
        )

    def record_instantiation(
        self, caller: str, class_qual: str, node: ast.Call
    ) -> None:
        self._instantiations.setdefault(caller, []).append(
            Instantiation(caller=caller, class_qualname=class_qual, node=node)
        )


_MODULE_CALLER_SUFFIX = ".<module>"


class _Evaluator:
    """Abstract interpreter for one function body (or module body).

    Evaluates expressions to sets of :data:`Value`, binding simple
    assignments into a flow-insensitive local environment, recording
    call and instantiation edges on the graph as a side effect.
    """

    def __init__(
        self,
        graph: ProjectGraph,
        table: ModuleTable,
        func: FunctionInfo | None,
        record: bool = True,
    ) -> None:
        self.graph = graph
        self.table = table
        self.func = func
        self.record = record
        self.env: dict[str, set[Value]] = {}
        self.returns: set[Value] = set()
        self._nested_depth = 0
        if func is None:
            self.caller = table.name + _MODULE_CALLER_SUFFIX
        else:
            self.caller = func.qualname

    # ------------------------------------------------------------------
    def run_function(self) -> frozenset[Value]:
        assert self.func is not None
        self.bind_parameters()
        self.exec_block(self.func.node.body)
        node = self.func.node
        if node.returns is not None:
            self.returns.update(self.eval_annotation(node.returns))
        return frozenset(self.returns)

    def bind_parameters(self) -> None:
        if self.func is None:
            return
        node = self.func.node
        decorators = self.func.decorator_names()
        args = list(node.args.posonlyargs) + list(node.args.args)
        if self.func.is_method() and args and "staticmethod" not in decorators:
            first = args[0]
            assert self.func.cls is not None
            if "classmethod" in decorators:
                kind = "class"
            else:
                kind = "instance"
            self.env.setdefault(first.arg, set()).add(
                (kind, self.func.cls.qualname)
            )
            args = args[1:]
        for arg in args + list(node.args.kwonlyargs):
            if arg.annotation is not None:
                self.env.setdefault(arg.arg, set()).update(
                    self.eval_annotation(arg.annotation)
                )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            values = self.eval(stmt.value)
            for target in stmt.targets:
                self.assign(target, values)
        elif isinstance(stmt, ast.AnnAssign):
            values: set[Value] = set()
            if stmt.value is not None:
                values |= self.eval(stmt.value)
            values |= self.eval_annotation(stmt.annotation)
            self.assign(stmt.target, values)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                values = self.eval(stmt.value)
                if self._nested_depth == 0:
                    self.returns |= values
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_values = self.eval(stmt.iter)
            # Transparent containers: binding the loop target to the
            # iterable's element union resolves `for b in [A(), B()]`.
            self.assign(stmt.target, iter_values)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                context = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, context)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                if handler.type is not None:
                    self.eval(handler.type)
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs: their calls execute (eventually) on behalf
            # of the enclosing function; returns are not ours.
            self._nested_depth += 1
            self.exec_block(stmt.body)
            self._nested_depth -= 1
        elif isinstance(stmt, ast.ClassDef):
            pass  # nested classes are out of model
        elif isinstance(stmt, (ast.Delete, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def assign(self, target: ast.expr, values: set[Value]) -> None:
        if isinstance(target, ast.Name):
            if self.func is None:
                self.table.module_values.setdefault(
                    target.id, set()
                ).update(values)
            else:
                self.env.setdefault(target.id, set()).update(values)
        elif isinstance(target, ast.Attribute):
            # `self.attr = …` inside a method feeds the class model.
            if (
                self.func is not None
                and self.func.cls is not None
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self.func.cls.attr_values.setdefault(
                    target.attr, set()
                ).update(v for v in values if v[0] == "instance")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self.assign(element, values)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, node: ast.expr) -> set[Value]:
        if isinstance(node, ast.Name):
            return self.eval_name(node.id)
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node)
        if isinstance(node, ast.Call):
            return self.eval_call(node)
        if isinstance(node, ast.BoolOp):
            values: set[Value] = set()
            for operand in node.values:
                values |= self.eval(operand)
            return values
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.NamedExpr):
            values = self.eval(node.value)
            self.assign(node.target, values)
            return values
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            values = set()
            for element in node.elts:
                values |= self.eval(element)
            return values
        if isinstance(node, ast.Dict):
            values = set()
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value in node.values:
                values |= self.eval(value)
            return values
        if isinstance(node, ast.Subscript):
            self.eval(node.slice)
            # Transparent containers: d[k] has the container's values.
            return self.eval(node.value)
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
        ):
            for generator in node.generators:
                self.assign(generator.target, self.eval(generator.iter))
                for condition in generator.ifs:
                    self.eval(condition)
            return self.eval(node.elt)
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self.assign(generator.target, self.eval(generator.iter))
                for condition in generator.ifs:
                    self.eval(condition)
            self.eval(node.key)
            return self.eval(node.value)
        if isinstance(node, ast.Lambda):
            self._nested_depth += 1
            self.eval(node.body)
            self._nested_depth -= 1
            return set()
        # Constants, operators, f-strings, comparisons: evaluate the
        # children for their side effects (call edges), yield nothing.
        values = set()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child)
        return set()

    def eval_name(self, name: str) -> set[Value]:
        if name in self.env:
            return set(self.env[name])
        table = self.table
        if name in table.functions:
            return {("func", table.functions[name].qualname)}
        if name in table.classes:
            return {("class", table.classes[name].qualname)}
        if name in table.imports:
            canonical = self.graph.canonical_name(table, name)
            return set(self.graph.values_for(canonical))
        values: set[Value] = set(table.module_values.get(name, ()))
        values |= self.graph.registries.get(f"{table.name}.{name}", set())
        return values

    def eval_attribute(self, node: ast.Attribute) -> set[Value]:
        base_values = self.eval(node.value)
        values: set[Value] = set()
        for value in base_values:
            values |= self.attr_lookup(value, node.attr)
        return values

    def attr_lookup(self, value: Value, attr: str) -> set[Value]:
        kind, qual = value
        if kind == "module":
            if qual in self.graph.modules:
                canonical = self.graph._canonical_dotted(
                    f"{qual}.{attr}", frozenset()
                )
                return set(self.graph.values_for(canonical))
            return {("module", f"{qual}.{attr}")}
        if kind in ("instance", "class"):
            method = self.graph.method_on(qual, attr)
            if method is not None:
                return {("func", method.qualname)}
            if kind == "instance":
                return set(self.graph.attr_values_on(qual, attr))
        return set()

    def eval_call(self, node: ast.Call) -> set[Value]:
        func_values = self.eval(node.func)
        arg_values: list[set[Value]] = []
        for arg in node.args:
            arg_values.append(self.eval(arg))
        for keyword in node.keywords:
            self.eval(keyword.value)
        results: set[Value] = set()
        for value in sorted(func_values):
            kind, qual = value
            if kind == "class" and qual in self.graph.classes:
                if self.record:
                    self.graph.record_instantiation(self.caller, qual, node)
                    init = self.graph.method_on(qual, "__init__")
                    if init is not None:
                        self.graph.record_call(
                            self.caller, init.qualname, node
                        )
                results.add(("instance", qual))
            elif kind == "func":
                func = self.graph.functions.get(qual)
                if func is None:
                    continue
                if self.record:
                    self.graph.record_call(self.caller, qual, node)
                if func.registrar_for is not None and arg_values:
                    self.graph.registries.setdefault(
                        func.registrar_for, set()
                    ).update(arg_values[0])
                results |= set(self.graph.return_values.get(qual, ()))
        return results

    # ------------------------------------------------------------------
    def eval_annotation(self, node: ast.expr) -> set[Value]:
        """Instance values implied by a type annotation.

        Handles ``X``, ``mod.X``, ``X | None``, ``Optional[X]`` and
        string annotations; container types (``list[X]``, ``dict`` …)
        deliberately yield nothing — a list of X is not an X.
        """
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return set()
            return self.eval_annotation(parsed)
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            return self.eval_annotation(node.left) | self.eval_annotation(
                node.right
            )
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base in ("Optional", "typing.Optional"):
                return self.eval_annotation(node.slice)
            return set()
        if isinstance(node, (ast.Name, ast.Attribute)):
            canonical = self.graph.resolve_origin(self.table, node)
            if canonical is None:
                return set()
            values = set()
            for value in self.graph.values_for(canonical):
                if value[0] == "class" and value[1] in self.graph.classes:
                    values.add(("instance", value[1]))
            return values
        return set()
