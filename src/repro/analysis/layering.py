"""The declared package-dependency DAG enforced by rule R002.

Nodes are the top-level sub-packages of ``repro`` (plus the loose
top-level modules, grouped where they form one conceptual layer).
``ALLOWED_DEPENDENCIES`` lists, for every node, the set of *other*
nodes it may import from; imports within a node are always allowed.

Two deliberate groupings keep the declaration acyclic without lying
about the code:

* ``repro.parsing`` is grouped with ``repro.dialect`` — the tokenizer
  and the dialect model are mutually recursive by design (see
  ``docs/architecture.md``, "the one deliberate wrinkle").
* ``repro.cli`` / ``repro.__main__`` / the ``repro`` package root form
  the ``app`` node: the composition root that is allowed to import
  everything and wires cross-layer defaults (e.g. registering the
  random forest as the default Strudel classifier so that ``core``
  never imports ``ml``).

The declaration itself is validated: :func:`check_declared_dag`
raises if the allowed-dependency relation has a cycle, and a unit
test pins that.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Longest-prefix map from module prefix to layering node.
#:
#: ``repro.perf`` is split in two: the cache and parallel helpers form
#: the low-level ``perf`` node (below ``core``, so the classifiers can
#: consume them), while ``repro.perf.bench`` — which drives the whole
#: pipeline end to end — is its own top-level ``bench`` node.  The
#: longest-prefix lookup makes the split exact.
NODE_BY_PREFIX: dict[str, str] = {
    "repro.util": "util",
    "repro.errors": "errors",
    "repro.obs": "obs",
    "repro.types": "types",
    "repro.parsing": "dialect",
    "repro.dialect": "dialect",
    # The hardened ingestion stage is declared explicitly: it is the
    # single entry path every reader routes through (encoding
    # resolution, strict/lenient repair policy, BOM stripping), but it
    # is io-internal infrastructure, not a new layer — it imports only
    # dialect/errors/types, and io.reader sits directly on top of it.
    "repro.io.ingest": "io",
    # The source-adapter layer (directories, zip/tar archives, NDJSON,
    # XML→tabular) sits *in front of* the ingest front door: adapters
    # enumerate containers into (bytes, provenance) payloads and every
    # payload still routes through ``io.ingest``.  It is its own node
    # above ``io`` — the crawl/sweep surfaces (cli, serve, fuzz,
    # bench) consume it, while nothing inside ``io`` may import it.
    "repro.io.adapters": "io.adapters",
    "repro.io": "io",
    "repro.perf.bench": "bench",
    # The corpus engine drives whole sweeps through the fitted
    # pipeline, so unlike the rest of ``repro.perf`` it must sit
    # *above* ``core`` and ``io`` — it is its own node, importable by
    # eval/bench/app, while ``perf.pool``/``perf.parallel`` stay in
    # the low ``perf`` node below ``core``.
    "repro.perf.engine": "perf.engine",
    "repro.perf": "perf",
    # The columnar TableProfile is declared explicitly: it sits at the
    # *bottom* of core (datatypes/keywords below it, every extractor
    # above it) but cannot be its own node — it imports core.datatypes
    # while core.line_features imports it, so a split would cut the
    # core node in half.  The explicit entry documents that the
    # profile is core-internal infrastructure, not a new layer.
    "repro.core.profile": "core",
    "repro.core": "core",
    # Compiled forest inference is declared explicitly for the same
    # reason as the profile above: it is ml-internal infrastructure
    # (ml.forest compiles into it, ml.persistence stores its tensors)
    # that sits below the estimators, not a new layer.
    "repro.ml.compiled": "ml",
    "repro.ml": "ml",
    "repro.baselines": "baselines",
    "repro.datagen": "datagen",
    "repro.eval": "eval",
    "repro.fuzz": "fuzz",
    "repro.analysis": "analysis",
    # The long-lived classification service: an asyncio front end and
    # a replayable dead-letter queue over a standing ``perf.engine``
    # corpus engine.  Above ``perf.engine`` (it owns one) and below
    # ``bench``/``app`` (the roundtrip bench drives it, the CLI hosts
    # it).
    "repro.serve": "serve",
    "repro.cli": "app",
    "repro.__main__": "app",
    "repro": "app",
}

#: node -> nodes it may import from (besides itself).
ALLOWED_DEPENDENCIES: dict[str, frozenset[str]] = {
    "util": frozenset(),
    "errors": frozenset(),
    # Observability is near-bottom infrastructure: every layer that
    # does work (io, perf, core, ml, eval) may emit spans and metrics
    # into it, so it may depend on almost nothing itself.
    "obs": frozenset({"errors", "util"}),
    "types": frozenset({"errors"}),
    "perf": frozenset({"errors", "obs", "types", "util"}),
    "dialect": frozenset({"errors", "types", "util"}),
    "io": frozenset({"dialect", "errors", "obs", "types", "util"}),
    # Source adapters stand on the ingest front door (``io``) and the
    # observability registries; they never touch core/ml — their whole
    # output is (bytes, provenance) payloads for ingest.
    "io.adapters": frozenset(
        {"dialect", "errors", "io", "obs", "types", "util"}
    ),
    "core": frozenset(
        {"dialect", "errors", "io", "obs", "perf", "types", "util"}
    ),
    # The persistent-worker corpus engine: pools and the sweep cache
    # from ``perf``, the pipeline from ``core``, ingestion policy from
    # ``io``.  ``ml`` is *not* a dependency — the engine fingerprints
    # models through the classifier protocol, never by importing the
    # forest.
    "perf.engine": frozenset(
        {"core", "dialect", "errors", "io", "obs", "perf", "types",
         "util"}
    ),
    "ml": frozenset(
        {"core", "dialect", "errors", "io", "obs", "perf", "types",
         "util"}
    ),
    "baselines": frozenset(
        {"core", "dialect", "errors", "io", "ml", "types", "util"}
    ),
    "datagen": frozenset(
        {"dialect", "errors", "io", "types", "util"}
    ),
    "eval": frozenset(
        {
            "baselines", "core", "datagen", "dialect", "errors", "io",
            "ml", "obs", "perf", "perf.engine", "types", "util",
        }
    ),
    # The service shell needs the engine it wraps and the layers the
    # engine already stands on; notably *not* ``ml`` (models arrive
    # fitted, through the classifier protocol) and not ``datagen`` /
    # ``eval`` (serving is a production surface, not an experiment).
    "serve": frozenset(
        {"core", "dialect", "errors", "io", "io.adapters", "obs",
         "perf", "perf.engine", "types", "util"}
    ),
    "bench": frozenset(
        {
            "core", "datagen", "dialect", "errors", "eval", "io",
            "io.adapters", "ml", "obs", "perf", "perf.engine",
            "serve", "types", "util",
        }
    ),
    # The ingestion fuzz harness mutates datagen corpora at the byte
    # level and verifies strict/lenient feature parity through the
    # core extractors, so it sits above both — like bench, it drives
    # lower layers end to end without anything importing it but app.
    "fuzz": frozenset(
        {"core", "datagen", "dialect", "errors", "io", "io.adapters",
         "obs", "perf", "types", "util"}
    ),
    "analysis": frozenset({"errors", "util"}),
    "app": frozenset(
        {
            "analysis", "baselines", "bench", "core", "datagen",
            "dialect", "errors", "eval", "fuzz", "io", "io.adapters",
            "ml", "obs", "perf", "perf.engine", "serve", "types",
            "util",
        }
    ),
}


def node_for_module(module: str) -> str | None:
    """Longest-prefix lookup of the layering node for a dotted module.

    Returns ``None`` for modules outside the declared universe (third
    party, stdlib, or fixture code not under ``repro``).
    """
    parts = module.split(".")
    for end in range(len(parts), 0, -1):
        prefix = ".".join(parts[:end])
        if prefix in NODE_BY_PREFIX:
            return NODE_BY_PREFIX[prefix]
    return None


def check_declared_dag(
    allowed: dict[str, frozenset[str]] | None = None,
) -> list[str]:
    """Topologically sort the declared graph; raise on any cycle.

    Returns one valid bottom-up ordering of the nodes, which the docs
    generator uses to render the layering table.
    """
    graph = dict(ALLOWED_DEPENDENCIES if allowed is None else allowed)
    for node, deps in graph.items():
        unknown = deps - graph.keys()
        if unknown:
            raise ConfigurationError(
                f"layer {node!r} depends on undeclared {sorted(unknown)}"
            )
    order: list[str] = []
    placed: set[str] = set()
    remaining = set(graph)
    while remaining:
        ready = sorted(
            node for node in remaining if graph[node] <= placed
        )
        if not ready:
            raise ConfigurationError(
                f"dependency cycle among layers {sorted(remaining)}"
            )
        order.extend(ready)
        placed.update(ready)
        remaining.difference_update(ready)
    return order


# Fail fast: an inconsistent declaration should break at import, not
# silently let R002 pass vacuously.
check_declared_dag()
