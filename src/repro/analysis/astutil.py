"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call nodes in the chain break it (``f().g`` is not a static
    dotted name), which is exactly the conservatism the rules want.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def is_none_constant(node: ast.AST) -> bool:
    """True for a literal ``None``."""
    return isinstance(node, ast.Constant) and node.value is None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of a call's callee, if statically resolvable."""
    return dotted_name(node.func)
