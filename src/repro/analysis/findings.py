"""The unit of linter output: one rule violation at one location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Ordered by location first so that reports read top-to-bottom per
    file regardless of which rule produced each finding.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The conventional ``path:line:col: RULE message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
