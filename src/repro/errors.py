"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class at API
boundaries without swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DialectError(ReproError):
    """Raised when a file's dialect cannot be detected or applied."""


class ParseError(ReproError):
    """Raised when a CSV document cannot be parsed under a given dialect."""


class AnnotationError(ReproError):
    """Raised when ground-truth annotations are malformed or inconsistent."""


class NotFittedError(ReproError):
    """Raised when ``predict`` is called on an estimator before ``fit``."""


class InvalidParameterError(ReproError):
    """Raised when an estimator or feature extractor receives a bad setting."""


class GenerationError(ReproError):
    """Raised when a synthetic corpus generator is configured inconsistently."""


class ConfigurationError(ReproError):
    """Raised when the library itself is mis-assembled: an invalid
    static-analysis rule declaration, a cyclic layer graph, or a
    missing composition-root registration (e.g. no default classifier
    factory bound before a Strudel estimator needed one)."""
