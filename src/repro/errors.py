"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one base class at API
boundaries without swallowing unrelated programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class DialectError(ReproError):
    """Raised when a file's dialect cannot be detected or applied."""


class ParseError(ReproError):
    """Raised when a CSV document cannot be parsed under a given dialect."""


class AnnotationError(ReproError):
    """Raised when ground-truth annotations are malformed or inconsistent."""


class NotFittedError(ReproError):
    """Raised when ``predict`` is called on an estimator before ``fit``."""


class InvalidParameterError(ReproError):
    """Raised when an estimator or feature extractor receives a bad setting."""


class GenerationError(ReproError):
    """Raised when a synthetic corpus generator is configured inconsistently."""


class IngestError(ReproError):
    """Base class for failures in the hardened ingestion stage.

    Everything :mod:`repro.io.ingest` raises deliberately derives from
    this class, so entry points can catch one exception for "this file
    could not be turned into a :class:`~repro.types.Table`" without
    also swallowing bugs (``UnicodeDecodeError`` escaping a raw
    ``read_text`` is exactly the crash class this hierarchy retires).
    """


class EncodingError(IngestError):
    """Raised when a file's bytes cannot be decoded under the policy:
    the strict UTF-8 attempt and every fallback encoding failed, or a
    byte-order mark announced an encoding the payload then violated
    (strict mode only — lenient mode substitutes U+FFFD and reports)."""


class SizeLimitError(IngestError):
    """Raised in strict mode when an input exceeds the policy's byte
    budget; lenient mode truncates at a record boundary and reports."""


class MalformedInputError(IngestError):
    """Raised in strict mode for structurally damaged but decodable
    input — NUL characters, or an unterminated quoted field at EOF —
    that lenient mode would repair and report instead."""


class AdapterError(IngestError):
    """Raised when a source adapter cannot enumerate a container: a
    truncated or corrupt archive, a zip/tar member that cannot be
    read, NDJSON lines that are not JSON (or records of mixed shape),
    unparseable XML, or container nesting beyond the depth budget.
    Subclasses :class:`IngestError` because adapters are part of the
    ingestion front door: callers that already handle ingest failures
    handle container failures for free, and the fuzz contract (typed
    ``ReproError``, never a raw ``zipfile``/``json``/``xml``
    exception) extends to containers unchanged."""


class ServeError(ReproError):
    """Raised when the classification service is misused: submitting
    to a service that is draining or was never started, starting a
    service twice, or configuring it with a nonsensical queue bound."""


class ProtocolError(ServeError):
    """Raised when a wire request violates the ``repro-serve/1``
    newline-delimited JSON protocol: undecodable JSON, a missing or
    non-string request id, an unknown operation, or a payload that is
    neither a path nor valid base64 bytes.  The service never lets
    this abort a connection — the offending line is dead-lettered and
    answered with a structured failure response instead."""


class EvaluationError(ReproError):
    """Raised when an evaluation run is inconsistent with itself: zero
    score sets to average, or folds that cannot be formed from the
    grouped corpus."""


class ConfigurationError(ReproError):
    """Raised when the library itself is mis-assembled: an invalid
    static-analysis rule declaration, a cyclic layer graph, or a
    missing composition-root registration (e.g. no default classifier
    factory bound before a Strudel estimator needed one)."""
