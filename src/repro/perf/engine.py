"""Persistent-worker corpus engine: sweep a file list through one model.

The per-file pipeline is fast (PR 3 columnar profile, PR 7 compiled
forest); the corpus — the unit of work Datamaran-style data-lake
extraction actually bills — was not.  A naive sweep pays process-pool
startup per fan-out and re-pickles the fitted model into every task,
and nothing survives between sweeps.  :class:`CorpusEngine` fixes all
three amortization failures:

* **warm workers** — one private :class:`~repro.perf.pool.WorkerPool`
  per engine, kept alive across :meth:`CorpusEngine.sweep` calls;
* **one-time model broadcast** — the fitted pipeline is pickled once
  (feature caches detached — they are process-local) into the pool
  initializer, so each worker deserializes the compiled forest tensors
  exactly once at spawn instead of once per task;
* **content-addressed sweep cache** — results are stored on disk keyed
  by ``(file content hash, model fingerprint, ingest policy)``, so
  re-sweeping an unchanged corpus never reaches a worker at all.

Determinism contract: ``sweep`` shards the file list into
*contiguous, size-balanced* micro-batches and streams ``(path,
result)`` pairs back in **input order** with a bounded in-flight
window (backpressure: at most ``window`` batches of raw bytes exist at
once).  Results are plain numpy arrays (class codes, cell positions),
so parity across ``n_jobs``, cache hits and misses is checkable with
``.tobytes()`` equality — the pinned guarantee that parallelism may
change *when* work happens, never *what* it computes.

Failure routing: a file that cannot be read or classified becomes a
:class:`SkipEntry` in the run's :class:`SweepReport` instead of
aborting the sweep; a worker killed mid-batch is recorded loudly
(``sweep.worker_crashes`` metric + ``RuntimeWarning``), its batch's
files join the skip report as casualties, and the pool respawns for
the remaining files.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
import warnings
import zipfile
from collections import deque
from concurrent.futures import CancelledError, Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.dialect.dialect import Dialect
from repro.errors import InvalidParameterError, NotFittedError
from repro.io.ingest import IngestPolicy
from repro.obs import get_metrics, get_tracer
from repro.perf.parallel import effective_jobs
from repro.perf.pool import WorkerPool
from repro.types import CONTENT_CLASSES, CellClass

#: Integer codes for every cell class, *including* the ``EMPTY``
#: sentinel (which deliberately has no index in ``CLASS_TO_INDEX`` —
#: it is not a content class, but line predictions do emit it).
_CLASS_CODES: dict[CellClass, int] = {
    cls: index for index, cls in enumerate(CONTENT_CLASSES)
}
_CLASS_CODES[CellClass.EMPTY] = len(CONTENT_CLASSES)
_CODE_TO_CLASS: dict[int, CellClass] = {
    code: cls for cls, code in _CLASS_CODES.items()
}

#: Public aliases of the code tables, for layers that serialize
#: :class:`FileResult` arrays across other boundaries (the serve
#: protocol re-encodes them as JSON and must agree on the codes).
CLASS_CODES = _CLASS_CODES
CODE_TO_CLASS = _CODE_TO_CLASS

#: Aim for this many micro-batches per worker, so one slow shard
#: cannot serialize the sweep's tail while keeping per-batch overhead
#: (submit + result pickling) amortized over many files.
_BATCHES_PER_WORKER = 4

#: Hard per-batch file count bound, so a corpus of tiny files still
#: produces batches a worker finishes promptly.
_MAX_BATCH_FILES = 64

#: What a damaged ``.npz`` raises on load: truncated zip containers,
#: bad headers, missing members.  Treated as a cache miss, never an
#: error — the corrupt file is removed so it cannot poison anything.
_CORRUPT_CACHE_ERRORS = (OSError, ValueError, KeyError, EOFError,
                         zipfile.BadZipFile)


def file_content_hash(data: bytes) -> str:
    """SHA-256 hex digest of a file's raw bytes."""
    return hashlib.sha256(data).hexdigest()


def model_fingerprint(pipeline) -> str:
    """SHA-256 digest of everything that determines a sweep's output.

    Hashes the compiled forest tensors of both classifiers (the same
    arrays ``ml.persistence`` stores — two models produce the same
    fingerprint iff they predict identically), the extractor
    configuration keys and the crop flag.  Cached sweep results are
    addressed by this fingerprint, so refitting the model can never
    serve stale results.
    """
    digest = hashlib.sha256()
    digest.update(f"crop={int(pipeline.crop)};".encode("ascii"))
    for clf in (pipeline.line_classifier, pipeline.cell_classifier):
        if clf._model is None:
            raise NotFittedError(
                "cannot fingerprint an unfitted pipeline; call fit() "
                "before building a CorpusEngine"
            )
        digest.update(clf.extractor.cache_key.encode("utf-8"))
        digest.update(b";")
        compiled = clf._model.compile()
        for tensor in (
            compiled.classes_, compiled._tree_classes,
            compiled._feature, compiled._threshold, compiled._left,
            compiled._right, compiled._proba, compiled._roots,
            compiled._tree_class_offsets,
        ):
            array = np.ascontiguousarray(tensor)
            digest.update(str(array.dtype).encode("ascii"))
            digest.update(str(array.shape).encode("ascii"))
            digest.update(array.tobytes())
    return digest.hexdigest()


def policy_fingerprint(policy: IngestPolicy) -> str:
    """A stable key for an ingest policy (frozen dataclass repr)."""
    return repr(policy)


# ----------------------------------------------------------------------
# Results and reports
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class FileResult:
    """One swept file's classified structure, in array form.

    Arrays, not objects, so results are cheap to ship across process
    boundaries, round-trip losslessly through the ``.npz`` sweep cache
    and compare byte-for-byte in the parity tests.  ``line_codes`` /
    ``cell_codes`` hold :data:`_CLASS_CODES` values; decode through
    :meth:`line_classes` / :meth:`cell_classes`.
    """

    path: Path
    dialect: Dialect
    n_rows: int
    n_cols: int
    line_codes: np.ndarray
    cell_positions: np.ndarray
    cell_codes: np.ndarray

    @property
    def provenance(self) -> str:
        """The source locator as the adapters produced it.

        For a loose file this is its path; for a container member it
        is the full ``archive.zip!member.csv`` locator that rode
        through ``process_payloads`` as the payload name (``path``
        merely stores it as a :class:`~pathlib.Path`).
        """
        return str(self.path)

    def line_classes(self) -> list[CellClass]:
        """Per-line classes, decoded to :class:`CellClass`."""
        return [_CODE_TO_CLASS[int(code)] for code in self.line_codes]

    def cell_classes(self) -> dict[tuple[int, int], CellClass]:
        """Non-empty cell positions mapped to their classes."""
        return {
            (int(row), int(col)): _CODE_TO_CLASS[int(code)]
            for (row, col), code in zip(
                self.cell_positions, self.cell_codes
            )
        }


@dataclass(frozen=True)
class SkipEntry:
    """One file the sweep could not classify, and why.

    ``stage`` is where it failed: ``"read"`` (the bytes never left the
    parent), ``"classify"`` (the pipeline raised in a worker) or
    ``"worker"`` (the worker process died mid-batch).
    """

    path: Path
    stage: str
    reason: str


@dataclass
class SweepReport:
    """What a sweep did: counts, cache traffic, and the casualties."""

    files: int = 0
    completed: int = 0
    cache_hits: int = 0
    batches: int = 0
    worker_crashes: int = 0
    skipped: list[SkipEntry] = field(default_factory=list)

    def merge(self, other: "SweepReport") -> None:
        """Fold another report into this one — chunked lake sweeps
        call ``process_payloads`` per chunk and aggregate here."""
        self.files += other.files
        self.completed += other.completed
        self.cache_hits += other.cache_hits
        self.batches += other.batches
        self.worker_crashes += other.worker_crashes
        self.skipped.extend(other.skipped)

    def as_dict(self) -> dict:
        """A JSON-ready summary (paths as strings)."""
        return {
            "files": self.files,
            "completed": self.completed,
            "cache_hits": self.cache_hits,
            "batches": self.batches,
            "worker_crashes": self.worker_crashes,
            "skipped": [
                {
                    "path": str(entry.path),
                    "stage": entry.stage,
                    "reason": entry.reason,
                }
                for entry in self.skipped
            ],
        }


# ----------------------------------------------------------------------
# Result encoding (parent and workers share these, so every path —
# inline, worker, cache hit — produces identical arrays)
# ----------------------------------------------------------------------
def _encode_structure(result) -> dict[str, np.ndarray]:
    """Flatten a :class:`StructureResult` into deterministic arrays."""
    line_codes = np.array(
        [_CLASS_CODES[cls] for cls in result.line_classes],
        dtype=np.int8,
    )
    items = sorted(result.cell_classes.items())
    positions = np.array(
        [position for position, _ in items], dtype=np.int64
    ).reshape(len(items), 2)
    cell_codes = np.array(
        [_CLASS_CODES[cls] for _, cls in items], dtype=np.int8
    )
    dialect = np.array(
        [
            result.dialect.delimiter,
            result.dialect.quotechar,
            result.dialect.escapechar,
        ],
        dtype=np.str_,
    )
    shape = np.array(
        [result.table.n_rows, result.table.n_cols], dtype=np.int64
    )
    return {
        "line_codes": line_codes,
        "cell_positions": positions,
        "cell_codes": cell_codes,
        "dialect": dialect,
        "shape": shape,
    }


def _decode_arrays(path: Path, arrays: dict) -> FileResult:
    """Rebuild a :class:`FileResult` from encoded arrays."""
    dialect = arrays["dialect"]
    shape = arrays["shape"]
    return FileResult(
        path=path,
        dialect=Dialect(
            delimiter=str(dialect[0]),
            quotechar=str(dialect[1]),
            escapechar=str(dialect[2]),
        ),
        n_rows=int(shape[0]),
        n_cols=int(shape[1]),
        line_codes=np.asarray(arrays["line_codes"], dtype=np.int8),
        cell_positions=np.asarray(
            arrays["cell_positions"], dtype=np.int64
        ).reshape(-1, 2),
        cell_codes=np.asarray(arrays["cell_codes"], dtype=np.int8),
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Per-worker broadcast state, installed once by the pool initializer.
_WORKER_STATE: tuple | None = None


def _init_sweep_worker(payload: bytes) -> None:
    """Pool initializer: deserialize the broadcast model once."""
    global _WORKER_STATE
    _WORKER_STATE = pickle.loads(payload)


def _run_batch(pipeline, policy, batch):
    """Classify one micro-batch; per-file failures become markers.

    Returns ``(index, arrays_dict)`` per success and
    ``(index, ("error", reason))`` per failure — a sweep over a messy
    data lake must survive any single file.
    """
    out = []
    for index, _name, data in batch:
        try:
            encoded = _encode_structure(
                pipeline.analyze_bytes(data, policy=policy)
            )
        except Exception as exc:
            out.append(
                (index, ("error", f"{type(exc).__name__}: {exc}"))
            )
        else:
            out.append((index, encoded))
    return out


def _sweep_batch(batch):
    """Process-pool entry: run a batch against the broadcast model."""
    pipeline, policy = _WORKER_STATE
    return _run_batch(pipeline, policy, batch)


# ----------------------------------------------------------------------
# The content-addressed sweep cache
# ----------------------------------------------------------------------
class SweepCache:
    """On-disk cache of swept-file results, content-addressed.

    Entries are ``.npz`` files named by
    ``sha256(content hash | model fingerprint | policy)``, written
    atomically (temp file + ``os.replace``) so concurrent engines and
    mid-write crashes can never leave a partial file behind, and a
    corrupt entry (however it got there) is removed and treated as a
    miss.  Counters mirror into the metrics registry
    (``sweep_cache.hits`` / ``sweep_cache.misses`` /
    ``sweep_cache.evictions``) and snapshot through :meth:`stats`,
    exactly like :class:`~repro.perf.cache.FeatureCache`.
    """

    def __init__(
        self,
        directory: str | Path,
        max_entries: int = 8192,
    ):
        if max_entries < 1:
            raise InvalidParameterError("max_entries must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._metrics = get_metrics()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._count = len(sorted(self.directory.glob("*.npz")))

    @staticmethod
    def entry_key(
        content_hash: str, model: str, policy: str
    ) -> str:
        """The cache address for one (file, model, policy) triple."""
        digest = hashlib.sha256()
        digest.update(content_hash.encode("ascii"))
        digest.update(b"|")
        digest.update(model.encode("ascii"))
        digest.update(b"|")
        digest.update(policy.encode("utf-8"))
        return digest.hexdigest()

    def stats(self) -> dict[str, int]:
        """A consistent locked snapshot of the counters."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": self._count,
            }

    # ------------------------------------------------------------------
    def load(self, key: str, path: Path) -> FileResult | None:
        """The cached result for ``key``, or ``None`` on miss.

        A corrupt entry is deleted and reported as a miss: a crash
        that slipped past the atomic write must cost one recompute,
        never poison every later sweep.
        """
        entry = self.directory / f"{key}.npz"
        arrays: dict | None = None
        try:
            with np.load(entry) as archive:
                arrays = {name: archive[name] for name in archive.files}
            result = _decode_arrays(path, arrays)
        except FileNotFoundError:
            result = None
        except _CORRUPT_CACHE_ERRORS:
            result = None
            try:
                entry.unlink()
            except OSError:
                pass
        if result is None:
            with self._lock:
                self.misses += 1
            self._metrics.increment("sweep_cache.misses")
            return None
        with self._lock:
            self.hits += 1
        self._metrics.increment("sweep_cache.hits")
        return result

    def store(self, key: str, arrays: dict[str, np.ndarray]) -> None:
        """Write one entry atomically; evict oldest past the bound."""
        entry = self.directory / f"{key}.npz"
        if entry.exists():
            return
        handle = tempfile.NamedTemporaryFile(
            dir=self.directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                np.savez(handle, **arrays)
            os.replace(handle.name, entry)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        with self._lock:
            self._count += 1
            over = self._count - self.max_entries
        if over > 0:
            self._evict(over)

    def _evict(self, count: int) -> None:
        """Remove the ``count`` oldest entries (write-time LRU)."""
        entries = sorted(
            self.directory.glob("*.npz"),
            key=lambda p: (p.stat().st_mtime_ns, p.name),
        )
        removed = 0
        for stale in entries[:count]:
            try:
                stale.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            with self._lock:
                self.evictions += removed
                self._count -= removed
            self._metrics.increment("sweep_cache.evictions", removed)


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SweepRun:
    """One in-progress sweep: iterate for results, read ``report``.

    Iterating yields ``(path, FileResult)`` pairs in input order;
    ``report`` is filled in as iteration proceeds and is complete once
    the iterator is exhausted.
    """

    def __init__(self, engine: "CorpusEngine", paths: list[Path]):
        self.report = SweepReport(files=len(paths))
        self._engine = engine
        self._paths = paths

    def __iter__(self) -> Iterator[tuple[Path, FileResult]]:
        return self._engine._run(self._paths, self.report)

    def collect(self) -> list[tuple[Path, FileResult]]:
        """Drain the whole sweep into a list (report then final)."""
        return list(self)


class CorpusEngine:
    """Sweep file corpora through one fitted pipeline, fast.

    Parameters
    ----------
    pipeline:
        A **fitted** :class:`~repro.core.strudel.StrudelPipeline`;
        fingerprinted at construction, broadcast to workers once.
    n_jobs:
        Worker processes (``parallel_map`` semantics: ``None``/``1``
        sequential, ``<=0`` all cores).  The worker pool persists
        across sweeps; results are byte-identical for any value.
    policy:
        Ingest policy applied to every file (part of the cache key).
    cache_dir:
        Optional directory for the content-addressed sweep cache.
    window:
        Maximum in-flight micro-batches (backpressure bound).
        Defaults to ``2 * workers``.

    Use as a context manager (or call :meth:`close`) to release the
    warm workers deterministically; an engine left open is reaped at
    interpreter exit.
    """

    def __init__(
        self,
        pipeline,
        n_jobs: int | None = 1,
        policy: IngestPolicy | None = None,
        cache_dir: str | Path | None = None,
        window: int | None = None,
    ):
        if window is not None and window < 1:
            raise InvalidParameterError("window must be >= 1")
        self._pipeline = pipeline
        self._policy = policy or IngestPolicy()
        self._n_jobs = n_jobs
        self._window = window
        self._fingerprint = model_fingerprint(pipeline)
        self._policy_key = policy_fingerprint(self._policy)
        self.cache = (
            SweepCache(cache_dir) if cache_dir is not None else None
        )
        self._pool: WorkerPool | None = None
        self._metrics = get_metrics()

    @property
    def fingerprint(self) -> str:
        """The model fingerprint sweeps are cached under."""
        return self._fingerprint

    def close(self) -> None:
        """Shut down the warm workers (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CorpusEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def sweep(self, paths: Iterable[str | Path]) -> SweepRun:
        """Classify every file, streaming results in input order.

        Returns a :class:`SweepRun`; iterate it for ``(path,
        FileResult)`` pairs.  Unreadable or unclassifiable files are
        skipped into ``run.report``, never raised.
        """
        return SweepRun(self, [Path(p) for p in paths])

    def sweep_paths(
        self, paths: Iterable[str | Path]
    ) -> tuple[list[tuple[Path, FileResult]], SweepReport]:
        """Convenience: run a sweep to completion and return both."""
        run = self.sweep(paths)
        return run.collect(), run.report

    def process_payloads(
        self, items: Sequence[tuple[str, bytes]]
    ) -> tuple[list["FileResult | SkipEntry"], SweepReport]:
        """Classify in-memory payloads through the warm pool.

        The service front end's entry point: no filesystem access,
        and the return value is a list **aligned with** ``items`` — a
        :class:`FileResult` per success, a :class:`SkipEntry` per
        failure (stage ``"classify"`` or ``"worker"``) — plus the
        run's :class:`SweepReport`.  The sweep cache is consulted and
        populated exactly as in :meth:`sweep`, so a served payload and
        a swept file with the same bytes share one cache entry.

        Unlike :meth:`sweep`, every micro-batch is submitted up front
        (the caller — a bounded service queue — provides the
        backpressure), so a worker crash fails the remaining batches
        of *this call* loudly instead of resubmitting them; the
        entries are replayable and the pool respawns for the next
        call.
        """
        indexed = [
            (i, str(name), bytes(data))
            for i, (name, data) in enumerate(items)
        ]
        report = SweepReport(files=len(indexed))
        out: list[FileResult | SkipEntry | None] = [None] * len(indexed)
        tracer = get_tracer()
        with tracer.span("sweep", n_files=len(indexed)):
            pending: list[tuple[int, str, bytes]] = []
            for i, name, data in indexed:
                if self.cache is not None:
                    cached = self.cache.load(
                        self._cache_key(data), Path(name)
                    )
                    if cached is not None:
                        report.cache_hits += 1
                        report.completed += 1
                        out[i] = cached
                        continue
                pending.append((i, name, data))
            for batch, results in self._compute_batches(
                pending, report, tracer
            ):
                if results is None:
                    # Worker crash: _crashed_batch named the
                    # casualties; align them with their slots.
                    entries = report.skipped[-len(batch):]
                    for (i, _name, _data), entry in zip(batch, entries):
                        out[i] = entry
                    continue
                settled = self._settle_batch(
                    batch, dict(results), report
                )
                for (i, _name, _data), (_path, payload) in zip(
                    batch, settled
                ):
                    out[i] = payload
        self._metrics.increment("sweep.files", len(indexed))
        self._metrics.increment("sweep.skipped", len(report.skipped))
        return list(out), report

    # ------------------------------------------------------------------
    def _cache_key(self, data: bytes) -> str:
        """The sweep-cache address of one payload under this engine."""
        return SweepCache.entry_key(
            file_content_hash(data), self._fingerprint, self._policy_key
        )

    @staticmethod
    def _payload_batches(
        pending: list[tuple[int, str, bytes]], workers: int
    ) -> list[list[tuple[int, str, bytes]]]:
        """Contiguous size-balanced micro-batches of raw payloads."""
        if not pending:
            return []
        total = sum(len(data) for _i, _name, data in pending)
        budget = max(1, total // max(1, workers * _BATCHES_PER_WORKER))
        batches: list[list[tuple[int, str, bytes]]] = []
        batch: list[tuple[int, str, bytes]] = []
        batch_bytes = 0
        for entry in pending:
            batch.append(entry)
            batch_bytes += len(entry[2])
            if batch_bytes >= budget or len(batch) >= _MAX_BATCH_FILES:
                batches.append(batch)
                batch = []
                batch_bytes = 0
        if batch:
            batches.append(batch)
        return batches

    def _compute_batches(self, pending, report, tracer):
        """Shard ``pending`` payloads and resolve every micro-batch.

        Yields ``(batch, results)`` pairs; ``results`` is ``None`` for
        a batch whose worker died (the casualties are already in the
        report).  An interrupt mid-flight cancels the outstanding
        futures and discards the pool before re-raising, so the next
        call on this engine starts from a clean executor.
        """
        workers = effective_jobs(self._n_jobs, max(len(pending), 1))
        batches = self._payload_batches(pending, workers)
        if workers <= 1:
            for batch in batches:
                report.batches += 1
                self._metrics.increment("sweep.batches")
                with tracer.span("sweep_batch", n_files=len(batch)):
                    yield batch, _run_batch(
                        self._pipeline, self._policy, batch
                    )
            return
        pool = self._ensure_pool(workers)
        futures = [
            (batch, pool.submit(_sweep_batch, list(batch)))
            for batch in batches
        ]
        for batch, _future in futures:
            report.batches += 1
            self._metrics.increment("sweep.batches")
        try:
            for batch, future in futures:
                try:
                    with tracer.span("sweep_batch", n_files=len(batch)):
                        results = future.result()
                except (BrokenProcessPool, CancelledError) as exc:
                    self._crashed_batch(batch, report, exc)
                    yield batch, None
                else:
                    yield batch, results
        except BaseException:
            for _batch, future in futures:
                future.cancel()
            self._discard_pool()
            raise

    def _discard_pool(self) -> None:
        """Drop the warm pool; the next use respawns + rebroadcasts."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int) -> WorkerPool:
        """The engine's private pool, broadcast included, grown to
        ``workers``."""
        pool = self._pool
        if pool is None or pool.max_workers < workers:
            if pool is not None:
                pool.shutdown(wait=False)
            payload = pickle.dumps((self._pipeline, self._policy))
            pool = WorkerPool(
                workers,
                initializer=_init_sweep_worker,
                initargs=(payload,),
            )
            self._pool = pool
        return pool

    def _plan_budget(self, paths: Sequence[Path], workers: int) -> int:
        """Per-batch byte budget from stat sizes (never file reads)."""
        total = 0
        for path in paths:
            try:
                total += path.stat().st_size
            except OSError:
                continue
        batches = max(1, workers * _BATCHES_PER_WORKER)
        return max(1, total // batches)

    def _run(
        self, paths: list[Path], report: SweepReport
    ) -> Iterator[tuple[Path, FileResult]]:
        """The sweep generator behind :class:`SweepRun`."""
        tracer = get_tracer()
        with tracer.span("sweep", n_files=len(paths)):
            yield from self._run_spanned(paths, report, tracer)
        self._metrics.increment("sweep.files", len(paths))
        self._metrics.increment("sweep.skipped", len(report.skipped))

    def _run_spanned(self, paths, report, tracer):
        workers = effective_jobs(self._n_jobs, len(paths))
        inline = workers <= 1
        window = self._window or max(2 * workers, 2)
        budget = self._plan_budget(paths, workers)
        # Items awaiting emission, in input order: ("hit", path,
        # result) or ("batch", token, files) where files is the
        # submitted [(index, name, data), ...] and token resolves to
        # the batch's results.  In-flight bytes are bounded by the
        # window: hits carry no raw data, batches are capped.
        queue: deque = deque()
        inflight = 0
        batch: list[tuple[int, str, bytes]] = []
        batch_bytes = 0

        def close_batch():
            nonlocal batch, batch_bytes, inflight
            if not batch:
                return
            if inline:
                token = list(batch)
            else:
                token = self._ensure_pool(workers).submit(
                    _sweep_batch, list(batch)
                )
            queue.append(("batch", token, list(batch)))
            report.batches += 1
            self._metrics.increment("sweep.batches")
            inflight += 1
            batch = []
            batch_bytes = 0

        # Anything that is not part of the sweep's own failure
        # handling — KeyboardInterrupt, an outer cancellation, the
        # consumer abandoning this generator (GeneratorExit) — must
        # not leave the engine with a half-drained window: cancel the
        # outstanding futures, drop the pool, and re-raise, so the
        # next sweep on this engine starts clean.
        try:
            for index, path in enumerate(paths):
                try:
                    data = path.read_bytes()
                except OSError as exc:
                    report.skipped.append(
                        SkipEntry(
                            path, "read", f"{type(exc).__name__}: {exc}"
                        )
                    )
                    continue
                if self.cache is not None:
                    cached = self.cache.load(self._cache_key(data), path)
                    if cached is not None:
                        report.cache_hits += 1
                        queue.append(("hit", path, cached))
                        continue
                batch.append((index, str(path), data))
                batch_bytes += len(data)
                if (
                    batch_bytes >= budget
                    or len(batch) >= _MAX_BATCH_FILES
                ):
                    close_batch()
                    while inflight >= window or (inline and inflight):
                        inflight -= self._emitted_batches(queue, report)
                        yield from self._emit_front(queue, report, tracer)
            close_batch()
            while queue:
                inflight -= self._emitted_batches(queue, report)
                yield from self._emit_front(queue, report, tracer)
        except BaseException:
            self._abort_window(queue)
            raise

    def _abort_window(self, queue: deque) -> None:
        """A sweep died mid-window: cancel the in-flight batch futures
        and discard the pool (workers may hold half-submitted state),
        so a later sweep respawns and rebroadcasts instead of
        inheriting a wedged executor.  Inline sweeps have no futures
        and keep nothing worth discarding."""
        outstanding = 0
        for kind, token, _files in queue:
            if kind == "batch" and isinstance(token, Future):
                token.cancel()
                outstanding += 1
        if outstanding:
            self._discard_pool()

    @staticmethod
    def _emitted_batches(queue: deque, report) -> int:
        """How many batches the next :meth:`_emit_front` resolves."""
        return 1 if queue and queue[0][0] == "batch" else 0

    def _emit_front(self, queue, report, tracer):
        """Pop and yield the queue's front item (blocking on batches)."""
        kind, token, extra = queue.popleft()
        if kind == "hit":
            report.completed += 1
            yield token, extra
            return
        files = extra
        try:
            with tracer.span("sweep_batch", n_files=len(files)):
                results = self._resolve(token)
        except (BrokenProcessPool, CancelledError) as exc:
            self._crashed_batch(files, report, exc)
            return
        for path, payload in self._settle_batch(
            files, dict(results), report
        ):
            if isinstance(payload, FileResult):
                yield path, payload

    def _settle_batch(
        self, files, outcomes: dict, report
    ) -> list[tuple[Path, "FileResult | SkipEntry"]]:
        """Resolve one computed batch against its submitted files.

        Returns exactly one ``(path, FileResult | SkipEntry)`` pair
        per file, in submission order; successes are decoded, cached,
        and counted, failures are appended to ``report.skipped`` with
        stage ``"classify"``.
        """
        settled: list[tuple[Path, FileResult | SkipEntry]] = []
        for index, name, data in files:
            path = Path(name)
            outcome = outcomes.get(index)
            if isinstance(outcome, dict):
                result = _decode_arrays(path, outcome)
                if self.cache is not None:
                    self.cache.store(self._cache_key(data), outcome)
                report.completed += 1
                settled.append((path, result))
            else:
                reason = (
                    outcome[1]
                    if isinstance(outcome, tuple)
                    else "no result returned for file"
                )
                entry = SkipEntry(path, "classify", reason)
                report.skipped.append(entry)
                settled.append((path, entry))
        return settled

    def _resolve(self, token):
        """Batch results from a token: future, or inline work list."""
        if isinstance(token, Future):
            return token.result()
        return _run_batch(self._pipeline, self._policy, token)

    def _crashed_batch(self, files, report, exc) -> None:
        """A worker died mid-batch: loud metric + warning, casualties
        named, pool discarded so the next batch respawns workers."""
        if self._pool is not None:
            self._pool.discard_broken()
        report.worker_crashes += 1
        self._metrics.increment("sweep.worker_crashes")
        for _index, name, _data in files:
            report.skipped.append(
                SkipEntry(
                    Path(name),
                    "worker",
                    f"worker crashed mid-batch "
                    f"({type(exc).__name__}: {exc})",
                )
            )
        warnings.warn(
            f"sweep worker crashed; {len(files)} file(s) skipped and "
            f"the pool was restarted: {type(exc).__name__}: {exc}",
            RuntimeWarning,
            stacklevel=3,
        )
