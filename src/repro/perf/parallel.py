"""Deterministic fan-out helpers.

The rule for every parallel path in this repository: parallelism may
change *when* work happens, never *what* it computes.  Both helpers
here guarantee that by construction:

* work items are submitted in input order and results are collected
  back into input order, so downstream reductions see the exact
  sequence the sequential path would produce;
* no helper draws randomness — callers pre-derive one independent
  seeded stream per item (see :func:`repro.util.rng.spawn`), so the
  schedule cannot leak into the numbers.

``parallel_map`` prefers a thread pool (cheap start-up; numpy releases
the GIL in its hot kernels) and can opt into a process pool for
CPU-bound pure-Python work such as tree induction.  Any failure to
stand up or use a process pool — missing ``fork``, unpicklable
payload, a sandbox without ``sem_open`` — degrades to the sequential
path, which is always equivalent.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def effective_jobs(n_jobs: int | None, n_tasks: int) -> int:
    """Resolve an ``n_jobs`` request into a concrete worker count.

    ``None`` and ``1`` mean sequential; ``0`` or a negative value mean
    "all available cores"; any other value is clamped to the number of
    tasks so no worker sits idle by construction.
    """
    if n_tasks <= 1:
        return 1
    if n_jobs is None:
        return 1
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, min(n_jobs, n_tasks))


def _sequential_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = 1,
    prefer: str = "threads",
) -> list[R]:
    """Apply ``fn`` to every item, preserving input order in the output.

    Parameters
    ----------
    fn:
        The per-item function.  For ``prefer="processes"`` it must be
        picklable (a module-level function or ``functools.partial`` of
        one).
    items:
        The work items; consumed eagerly so the task count is known.
    n_jobs:
        Worker count request, resolved by :func:`effective_jobs`.
    prefer:
        ``"threads"`` (default) or ``"processes"``.  Processes fall
        back to the sequential path if the pool cannot be created or
        the payload cannot be shipped; the result is identical either
        way because each item is independent.
    """
    if prefer not in ("threads", "processes"):
        raise ValueError(f"unknown executor preference: {prefer!r}")
    work = list(items)
    jobs = effective_jobs(n_jobs, len(work))
    if jobs <= 1:
        return _sequential_map(fn, work)
    if prefer == "processes":
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(fn, work))
        except Exception:
            # Pools are an optimization, never a requirement: any
            # failure (pickling, missing fork/semaphores, dying
            # worker) silently degrades to the equivalent sequential
            # computation.  Inputs are re-used untouched — process
            # workers only ever saw copies.
            return _sequential_map(fn, work)
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, work))
