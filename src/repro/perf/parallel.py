"""Deterministic fan-out helpers.

The rule for every parallel path in this repository: parallelism may
change *when* work happens, never *what* it computes.  Both helpers
here guarantee that by construction:

* work items are submitted in input order and results are collected
  back into input order, so downstream reductions see the exact
  sequence the sequential path would produce;
* no helper draws randomness — callers pre-derive one independent
  seeded stream per item (see :func:`repro.util.rng.spawn`), so the
  schedule cannot leak into the numbers.

``parallel_map`` prefers a thread pool (cheap start-up; numpy releases
the GIL in its hot kernels) and can opt into a process pool for
CPU-bound pure-Python work such as tree induction.  Process fan-outs
run on the persistent shared :class:`repro.perf.pool.WorkerPool`, so
repeated calls (one forest fit per CV fold, one batch per corpus
shard) reuse warm workers instead of forking a pool each time.  A
failure to
stand up or use the pool *itself* — missing ``fork``, unpicklable
payload, a sandbox without ``sem_open``, a worker killed from outside
— degrades to the sequential path, which is always equivalent, and
the degradation is recorded (a ``parallel.pool_degraded`` metric plus
a ``RuntimeWarning``) so a silently-sequential deployment cannot
masquerade as a parallel one.  An exception raised by the work
function is **not** infrastructure: it propagates immediately and the
work is never re-run.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.errors import InvalidParameterError
from repro.obs import get_metrics
from repro.perf.pool import shared_pool

#: Failures of the pool machinery (never of the work function): the
#: payload cannot be shipped, the pool cannot be created in this
#: environment, or its workers died out from under it.
_POOL_FAILURES = (pickle.PicklingError, BrokenProcessPool, OSError)

#: What ``pickle.dumps`` raises for a callable that cannot be shipped
#: to a worker process: PicklingError for a module-attribute mismatch,
#: AttributeError for a local function/lambda/closure, TypeError for
#: objects whose reduction is forbidden outright.  Checked *before*
#: the pool exists, in the main thread, so these types can never be
#: confused with an exception the work function raised in a worker.
_UNPICKLABLE_CALLABLE = (pickle.PicklingError, AttributeError, TypeError)

T = TypeVar("T")
R = TypeVar("R")


def effective_jobs(n_jobs: int | None, n_tasks: int) -> int:
    """Resolve an ``n_jobs`` request into a concrete worker count.

    ``None`` and ``1`` mean sequential; ``0`` or a negative value mean
    "all available cores"; any other value is clamped to the number of
    tasks so no worker sits idle by construction.
    """
    if n_tasks <= 1:
        return 1
    if n_jobs is None:
        return 1
    if n_jobs <= 0:
        n_jobs = os.cpu_count() or 1
    return max(1, min(n_jobs, n_tasks))


def _sequential_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    return [fn(item) for item in items]


def _degrade_to_sequential(exc: BaseException) -> None:
    """Record a pool degradation loudly: metric plus RuntimeWarning.

    Heavy-traffic deployments must be able to see when their
    parallelism silently became 1x; a counter alone is not enough for
    interactive runs, a warning alone is not enough for dashboards.
    """
    get_metrics().increment("parallel.pool_degraded")
    warnings.warn(
        f"process pool unavailable, degrading to sequential "
        f"execution: {type(exc).__name__}: {exc}",
        RuntimeWarning,
        stacklevel=3,
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: int | None = 1,
    prefer: str = "threads",
) -> list[R]:
    """Apply ``fn`` to every item, preserving input order in the output.

    Parameters
    ----------
    fn:
        The per-item function.  For ``prefer="processes"`` it must be
        picklable (a module-level function or ``functools.partial`` of
        one).
    items:
        The work items; consumed eagerly so the task count is known.
    n_jobs:
        Worker count request, resolved by :func:`effective_jobs`.
    prefer:
        ``"threads"`` (default) or ``"processes"``.  Processes fall
        back to the sequential path if the pool cannot be created or
        the payload cannot be shipped; the result is identical either
        way because each item is independent.  Exceptions raised by
        ``fn`` itself propagate unchanged — a work error is never
        retried sequentially (it would run the work twice and mask
        the real failure as a perf degradation).
    """
    if prefer not in ("threads", "processes"):
        raise InvalidParameterError(
            f"unknown executor preference: {prefer!r}"
        )
    work = list(items)
    jobs = effective_jobs(n_jobs, len(work))
    if jobs <= 1:
        return _sequential_map(fn, work)
    if prefer == "processes":
        # Pre-flight the function's picklability here in the main
        # thread, where the exception type is unambiguous.  A worker
        # can legitimately raise AttributeError or TypeError *from the
        # work itself*; catching those around ``pool.map`` would mask
        # a work error as a perf degradation and re-run the work — the
        # exact silent failure this module exists to prevent.
        try:
            pickle.dumps(fn)
        except _UNPICKLABLE_CALLABLE as exc:
            _degrade_to_sequential(exc)
            return _sequential_map(fn, work)
        try:
            return shared_pool(jobs).map(fn, work)
        except _POOL_FAILURES as exc:
            # Pools are an optimization, never a requirement: when the
            # pool *infrastructure* fails (an unshippable work item,
            # missing fork/semaphores, dying workers) the equivalent
            # sequential computation takes over.  Inputs are re-used
            # untouched — process workers only ever saw copies.  A
            # broken shared pool has already been discarded by
            # WorkerPool.map, so the *next* call gets fresh workers.
            _degrade_to_sequential(exc)
            return _sequential_map(fn, work)
    with ThreadPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, work))
