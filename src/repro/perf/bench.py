"""The ``repro bench`` harness: a perf trajectory for the pipeline.

Times the stages the paper profiles in Section 6.3.4 (dialect
detection, parsing, feature creation, prediction) plus the three ways
this repository can serve an ``analyze`` request:

* **legacy two-pass** — the pre-single-pass flow: line classification
  and cell classification each extract the line feature matrix
  themselves (what ``StrudelPipeline.analyze`` did before the
  single-pass plan, reconstructed from public APIs);
* **single-pass** — one :class:`~repro.core.strudel.LineInference`
  shared by both output granularities (the current ``analyze``);
* **cached** — single-pass with a warm
  :class:`~repro.perf.cache.FeatureCache`, the repeated-traffic
  configuration where matrices for known content are lookups.

It also times repeated grouped CV with and without a corpus-level
cache and checks the scores are byte-identical — caching and
parallelism must never change a number.

Results are written to ``BENCH_pipeline.json`` (schema
``repro-bench/1``) so CI can archive one point per commit; see
``docs/performance.md`` for how to read the trajectory.

A saved report doubles as a **baseline**: :func:`diff_reports`
compares a fresh run against it metric by metric (stage seconds,
analyze variants, CV timings) and flags any timing that regressed by
more than a tolerance (default 25%).  ``repro bench --baseline`` wires
this into CI so a perf regression fails the build the same way a
broken test does.  Reports are only comparable when their workload
configuration matches — :func:`configs_comparable` guards against
diffing a ``--quick`` run against a full one.
"""

from __future__ import annotations

import asyncio
import json
import tarfile
import tempfile
import time
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from functools import partial
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.profile import table_profile
from repro.core.strudel import StrudelPipeline
from repro.datagen.corpora import make_corpus
from repro.datagen.filegen import generate_file
from repro.datagen.spec import FileSpec, TableSpec
from repro.errors import InvalidParameterError
from repro.eval.experiments import materialize_corpus
from repro.eval.runner import CVResult, cross_validate_lines
from repro.io.adapters import DirectoryAdapter
from repro.io.cropping import crop_table
from repro.io.ingest import IngestPolicy, decode_bytes, ingest_text
from repro.io.writer import write_csv_text
from repro.obs import PIPELINE_STAGES, Tracer, activate, get_tracer
from repro.perf.cache import FeatureCache
from repro.perf.engine import CorpusEngine, FileResult, _run_batch
from repro.serve.client import ServiceClient
from repro.serve.service import ClassificationService
from repro.types import Corpus, Table
from repro.util.rng import as_generator

#: Schema tag for the emitted JSON, bumped on incompatible changes.
BENCH_SCHEMA = "repro-bench/1"

#: Default output file name (uploaded as a CI artifact).
DEFAULT_OUTPUT = "BENCH_pipeline.json"


@dataclass
class BenchConfig:
    """Workload knobs for one benchmark run."""

    corpus: str = "saus"
    scale: float = 0.15
    trees: int = 40
    rows: int = 600
    repeats: int = 3
    cv_splits: int = 3
    cv_repeats: int = 2
    cv_trees: int = 12
    seed: int = 0
    n_jobs: int = 1
    quick: bool = False

    @classmethod
    def quick_config(cls, seed: int = 0, n_jobs: int = 1) -> "BenchConfig":
        """A CI-sized workload (finishes in well under a minute)."""
        return cls(
            scale=0.06, trees=10, rows=200, repeats=2, cv_splits=2,
            cv_repeats=1, cv_trees=6, seed=seed, n_jobs=n_jobs,
            quick=True,
        )


def generated_text(rows: int, seed: int) -> str:
    """CSV text of a generated verbose file with ``rows`` data rows.

    Mirrors the file used by ``benchmarks/test_scalability.py`` so the
    two harnesses measure comparable inputs.
    """
    spec = FileSpec(
        domain="science",
        metadata_lines=2,
        notes_lines=2,
        tables=[
            TableSpec(
                n_numeric_cols=6,
                n_groups=0,
                rows_per_group=rows,
                grand_total=True,
            )
        ],
    )
    annotated = generate_file(spec, as_generator(seed), f"bench{rows}")
    return write_csv_text(annotated.table.rows())


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``repeats`` calls (noise-resistant)."""
    samples = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _parse(text: str) -> Table:
    # Routed through the hardened ingestion stage, like analyze(), so
    # the legacy-vs-single-pass comparison measures the same front end.
    return crop_table(ingest_text(text).table)


def _legacy_two_pass(pipeline: StrudelPipeline, text: str) -> None:
    """The pre-PR analyze flow: both classifiers extract on their own."""
    table = _parse(text)
    pipeline.line_classifier.predict(table)
    pipeline.cell_classifier.predict(table)


def _stage_breakdown(
    pipeline: StrudelPipeline, text: str, repeats: int = 1
) -> dict[str, float]:
    """Per-stage seconds for a single-pass analyze, read from the
    spans the instrumented pipeline emits.

    The pipeline's own :data:`~repro.obs.PIPELINE_STAGES` spans are
    the single source of truth: the bench report and a ``--trace``
    file are two renderings of the same measurements, never two
    timing implementations that can drift apart.  Runs are cold in
    the cache sense — feature caches were detached by the caller —
    and the traced analyze is repeated ``repeats`` times with the
    per-stage **median** reported, the same noise treatment every
    other timing in the harness gets (a single traced run can swing
    tens of percent on a busy machine, which at millisecond stage
    budgets is pure noise).
    """
    ambient = get_tracer()
    # Under ``repro bench --trace`` the CLI already activated a real
    # tracer; record into it so the breakdown's spans appear in the
    # trace file.  Otherwise use a private tracer just for this read.
    tracer = ambient if isinstance(ambient, Tracer) else Tracer()
    samples: list[dict[str, float]] = []
    for _ in range(max(1, repeats)):
        first = len(tracer.spans)
        with activate(tracer):
            # Encoding resolution over the raw bytes — the stage
            # every entry point pays before the text exists at all.
            decoded, _ = decode_bytes(text.encode("utf-8"))
            # No pre-detected dialect: detection and parsing run (and
            # are measured) inside the hardened ingestion stage.
            table = crop_table(ingest_text(decoded).table)
            # The compute-once columnar primitives every extractor
            # shares; materializing them under their own span leaves
            # the feature stages measuring pure consumption of the
            # profile.
            with tracer.span("profile"):
                table_profile(table).materialize()
            inference = pipeline.line_classifier.infer(table)
            pipeline.cell_classifier.predict(
                table, line_inference=inference
            )
        samples.append(tracer.durations(PIPELINE_STAGES, first))
    return {
        stage: sorted(run[stage] for run in samples)[len(samples) // 2]
        for stage in samples[0]
    }


def _bench_prediction(
    pipeline: StrudelPipeline, text: str, repeats: int
) -> dict:
    """Inference throughput of the two prediction stages.

    Features are extracted once up front so the probes time *pure*
    prediction — the quantity the compiled forest optimises and the
    one a serving deployment is provisioned by.  Rows/sec counts
    table lines through line prediction; cells/sec counts non-empty
    cells through cell prediction.
    """
    table = _parse(text)
    line = pipeline.line_classifier
    cells = pipeline.cell_classifier
    inference = line.infer(table)
    positions, features = cells.extract_cells(
        table, inference.probabilities
    )
    line_seconds = _median_seconds(
        lambda: line.predict_proba_from_features(inference.features),
        repeats,
    )
    cell_seconds = _median_seconds(
        lambda: cells.predict_from_features(positions, features),
        repeats,
    )
    return {
        "rows": table.n_rows,
        "cells": len(positions),
        "line_seconds": line_seconds,
        "cell_seconds": cell_seconds,
        "rows_per_second": (
            table.n_rows / line_seconds if line_seconds > 0 else 0.0
        ),
        "cells_per_second": (
            len(positions) / cell_seconds if cell_seconds > 0 else 0.0
        ),
    }


def _cv_results_identical(a: CVResult, b: CVResult) -> bool:
    """Whether two CV runs produced bit-for-bit identical numbers."""
    if not np.array_equal(a.confusion, b.confusion):
        return False
    if a.scores.macro_f1 != b.scores.macro_f1:
        return False
    if a.scores.accuracy != b.scores.accuracy:
        return False
    pairs = zip(a.per_repetition, b.per_repetition)
    return len(a.per_repetition) == len(b.per_repetition) and all(
        x.macro_f1 == y.macro_f1 and x.per_class_f1 == y.per_class_f1
        for x, y in pairs
    )


def _bench_cv(config: BenchConfig, corpus: Corpus) -> dict:
    """Repeated grouped CV, cold vs corpus-cached, with a parity check."""
    from repro.core.strudel import StrudelLineClassifier

    def factory():
        return StrudelLineClassifier(
            n_estimators=config.cv_trees, random_state=config.seed,
            n_jobs=config.n_jobs,
        )

    def run(cache: FeatureCache | None) -> CVResult:
        return cross_validate_lines(
            corpus, factory, n_splits=config.cv_splits,
            n_repeats=config.cv_repeats, seed=config.seed,
            feature_cache=cache,
        )

    start = time.perf_counter()
    uncached = run(None)
    uncached_seconds = time.perf_counter() - start

    cache = FeatureCache(max_entries=2 * max(1, len(corpus.files)))
    start = time.perf_counter()
    cached = run(cache)
    cached_seconds = time.perf_counter() - start

    cache_stats = cache.stats()
    return {
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": uncached_seconds / cached_seconds,
        "byte_identical": _cv_results_identical(uncached, cached),
        "macro_f1": uncached.scores.macro_f1,
        "cache_hits": cache_stats["hits"],
        "cache_misses": cache_stats["misses"],
    }


def _percall_file(
    pipeline: StrudelPipeline, policy: IngestPolicy, item: tuple
) -> tuple:
    """One file through the pipeline, for the pre-change baseline.

    Bound into a :func:`functools.partial` carrying the fitted
    pipeline, so every task submission re-pickles the model — exactly
    the cost profile the persistent-worker engine amortizes away.
    """
    return _run_batch(pipeline, policy, [item])[0]


def _contiguous_batches(items: list[tuple], jobs: int) -> list[list[tuple]]:
    """Size-balanced contiguous micro-batches mirroring the engine's
    sharding plan, so the baseline fans out the same work units."""
    total = sum(len(data) for _, _, data in items)
    budget = max(1, total // max(1, jobs * 4))
    batches: list[list[tuple]] = []
    batch: list[tuple] = []
    spent = 0
    for item in items:
        batch.append(item)
        spent += len(item[2])
        if spent >= budget or len(batch) >= 64:
            batches.append(batch)
            batch, spent = [], 0
    if batch:
        batches.append(batch)
    return batches


def _percall_pool_sweep(
    pipeline: StrudelPipeline,
    policy: IngestPolicy,
    batches: list[list[tuple]],
    jobs: int,
) -> list[tuple]:
    """Sweep via the pre-change pattern: a fresh process pool per
    fan-out, the fitted model pickled into every task."""
    out: list[tuple] = []
    fn = partial(_percall_file, pipeline, policy)
    for batch in batches:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            out.extend(pool.map(fn, batch))
    return out


def _sweep_results_identical(a: list[FileResult], b: list[FileResult]) -> bool:
    """Byte-level parity between two sweeps over the same paths."""
    if len(a) != len(b):
        return False
    return all(
        x.path == y.path
        and x.line_codes.tobytes() == y.line_codes.tobytes()
        and x.cell_positions.tobytes() == y.cell_positions.tobytes()
        and x.cell_codes.tobytes() == y.cell_codes.tobytes()
        for x, y in zip(a, b)
    )


def _bench_corpus_sweep(config: BenchConfig, corpus: Corpus,
                        pipeline: StrudelPipeline) -> dict:
    """Whole-corpus sweep throughput.

    Three measurements over the same materialized corpus:

    * the pre-change per-call-pool baseline (fresh pool per micro-batch,
      model pickled per task) at the parallel jobs level;
    * the persistent-worker engine at ``n_jobs`` in ``{1, jobs}``,
      timed on a *second* sweep so the pool is warm — the steady state
      the engine exists to provide (the cold number is the cache-cold
      pass below, which pays the one-time spawn + broadcast);
    * the on-disk sweep cache, cold pass vs all-hits warm pass.
    """
    jobs = config.n_jobs if config.n_jobs > 1 else 4
    policy = IngestPolicy()
    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        root = Path(tmp)
        paths = materialize_corpus(corpus, root / "files")
        items = [
            (index, str(path), path.read_bytes())
            for index, path in enumerate(paths)
        ]

        batches = _contiguous_batches(items, jobs)
        start = time.perf_counter()
        percall = _percall_pool_sweep(pipeline, policy, batches, jobs)
        percall_seconds = time.perf_counter() - start
        failures = [
            payload for _, payload in percall if isinstance(payload, tuple)
        ]
        if failures:
            raise InvalidParameterError(
                f"per-call baseline sweep failed: {failures[0][1]}"
            )

        engine_results: dict[int, list[FileResult]] = {}
        engine_seconds: dict[int, float] = {}
        for level in sorted({1, jobs}):
            with CorpusEngine(
                pipeline, n_jobs=level, policy=policy
            ) as engine:
                engine.sweep_paths(paths)  # warm the pool + broadcast
                start = time.perf_counter()
                results, report = engine.sweep_paths(paths)
                engine_seconds[level] = time.perf_counter() - start
            if report.skipped:
                first = report.skipped[0]
                raise InvalidParameterError(
                    f"engine sweep skipped {first.path}: {first.reason}"
                )
            engine_results[level] = [result for _, result in results]

        with CorpusEngine(
            pipeline, n_jobs=jobs, policy=policy, cache_dir=root / "cache"
        ) as engine:
            start = time.perf_counter()
            engine.sweep_paths(paths)
            cache_cold_seconds = time.perf_counter() - start
            start = time.perf_counter()
            _, warm_report = engine.sweep_paths(paths)
            cache_warm_seconds = time.perf_counter() - start

        cells = sum(len(r.cell_codes) for r in engine_results[1])
        levels = {
            str(level): {
                "seconds": seconds,
                "files_per_second": len(paths) / seconds,
                "cells_per_second": cells / seconds,
            }
            for level, seconds in engine_seconds.items()
        }
        return {
            "files": len(paths),
            "cells": cells,
            "jobs": jobs,
            "percall_pool_seconds": percall_seconds,
            "sequential_seconds": engine_seconds[1],
            "engine": levels,
            # Headline: warm persistent workers vs the per-call pools
            # the engine replaced, same jobs level, same batch plan.
            "engine_speedup": percall_seconds / engine_seconds[jobs],
            "cache_cold_seconds": cache_cold_seconds,
            "cache_warm_seconds": cache_warm_seconds,
            "cache_speedup": cache_cold_seconds / cache_warm_seconds,
            "cache_hits": warm_report.cache_hits,
            "byte_identical": _sweep_results_identical(
                engine_results[1], engine_results[jobs]
            ),
        }


def _results_feature_identical(a: FileResult, b: FileResult) -> bool:
    """Byte-level parity between two results of *different* sources.

    The adapter parity promise compares a loose file against the same
    bytes classified out of an archive, so the paths legitimately
    differ; only the classified tensors must match.
    """
    return (
        a.line_codes.tobytes() == b.line_codes.tobytes()
        and a.cell_positions.tobytes() == b.cell_positions.tobytes()
        and a.cell_codes.tobytes() == b.cell_codes.tobytes()
    )


def _bench_adapter_sweep(config: BenchConfig, corpus: Corpus,
                         pipeline: StrudelPipeline) -> dict:
    """Lake-sweep throughput through the source-adapter layer.

    The corpus is materialized three times into one lake — loose CSV
    files, the same files zipped into one archive, and tarred into
    another — then swept in one pass: the directory adapter crawls the
    lake into ``(provenance, bytes)`` payloads and the warm engine
    classifies them through ``process_payloads``.  Enumeration and
    classification are timed separately, and the block checks the
    adapter layer's parity promise: a member classified out of an
    archive is byte-identical to the same file classified loose.
    """
    policy = IngestPolicy()
    with tempfile.TemporaryDirectory(prefix="repro-bench-lake-") as tmp:
        root = Path(tmp)
        paths = materialize_corpus(corpus, root / "loose")
        with zipfile.ZipFile(root / "lake.zip", "w") as archive:
            for path in paths:
                archive.writestr(
                    zipfile.ZipInfo(path.name), path.read_bytes()
                )
        with tarfile.open(root / "lake.tar", "w") as archive:
            for path in paths:
                archive.add(path, arcname=path.name)

        adapter = DirectoryAdapter(root, policy)
        start = time.perf_counter()
        payloads = list(adapter.iterate())
        enumerate_seconds = time.perf_counter() - start
        if adapter.skipped:
            name, reason = adapter.skipped[0]
            raise InvalidParameterError(
                f"adapter enumeration skipped {name}: {reason}"
            )

        items = [(p.provenance, p.data) for p in payloads]
        with CorpusEngine(pipeline, n_jobs=1, policy=policy) as engine:
            engine.process_payloads(items)  # warm the pool + broadcast
            start = time.perf_counter()
            results, report = engine.process_payloads(items)
            classify_seconds = time.perf_counter() - start
        if report.skipped:
            first = report.skipped[0]
            raise InvalidParameterError(
                f"adapter sweep skipped {first.path}: {first.reason}"
            )

        # Group the three variants of each member by leaf name: loose
        # provenance is a plain path, archive provenance is
        # ``container!member``.
        by_member: dict[str, dict[str, FileResult]] = {}
        for payload, result in zip(payloads, results):
            container, _, member = payload.provenance.partition("!")
            variant = Path(container).name if member else "loose"
            leaf = member or Path(container).name
            by_member.setdefault(leaf, {})[variant] = result
        byte_identical = all(
            _results_feature_identical(
                variants["loose"], variants[archive_name]
            )
            for variants in by_member.values()
            for archive_name in ("lake.zip", "lake.tar")
        )
        return {
            "sources": len(payloads),
            "files": len(paths),
            "enumerate_seconds": enumerate_seconds,
            "seconds": classify_seconds,
            "sources_per_second": len(payloads) / classify_seconds,
            "byte_identical": byte_identical,
        }


def _bench_service_roundtrip(config: BenchConfig, corpus: Corpus,
                             pipeline: StrudelPipeline) -> dict:
    """Async service round-trip throughput + parity.

    Every corpus file is submitted concurrently through the
    in-process :class:`~repro.serve.client.ServiceClient` against a
    single-worker service, timed submit-to-settle, then drained.  The
    served results must be byte-identical to a direct engine sweep of
    the same files — the serve layer may batch and reorder *work*,
    never *results*.
    """
    policy = IngestPolicy()
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        paths = materialize_corpus(corpus, Path(tmp) / "files")

        async def drive():
            service = ClassificationService(
                pipeline, n_jobs=1, policy=policy
            )
            await service.start()
            client = ServiceClient(service)
            start = time.perf_counter()
            results = await asyncio.gather(
                *(client.classify_path(path) for path in paths)
            )
            seconds = time.perf_counter() - start
            summary = await service.drain()
            return list(results), seconds, summary

        served, seconds, summary = asyncio.run(drive())
        failures = [
            r for r in served if not isinstance(r, FileResult)
        ]
        if failures:
            raise InvalidParameterError(
                f"service round-trip skipped {failures[0].path}: "
                f"{failures[0].reason}"
            )
        with CorpusEngine(pipeline, n_jobs=1, policy=policy) as engine:
            direct, _report = engine.sweep_paths(paths)
        return {
            "files": len(paths),
            "seconds": seconds,
            "files_per_second": len(paths) / seconds,
            "requests": summary["requests"],
            "dead_letters": summary["dead_letters"],
            "byte_identical": _sweep_results_identical(
                served, [result for _, result in direct]
            ),
        }


def run_benchmark(config: BenchConfig | None = None) -> dict:
    """Run the full harness and return the report as a plain dict."""
    config = config or BenchConfig()
    corpus = make_corpus(
        config.corpus, seed=config.seed, scale=config.scale
    )
    text = generated_text(config.rows, seed=config.seed)

    pipeline = StrudelPipeline(
        n_estimators=config.trees, random_state=config.seed,
        n_jobs=config.n_jobs,
    )
    start = time.perf_counter()
    pipeline.fit(corpus.files)
    fit_seconds = time.perf_counter() - start

    # Warm numpy/allocator caches before any timed region.
    _legacy_two_pass(pipeline, text)
    pipeline.analyze(text)

    legacy_seconds = _median_seconds(
        lambda: _legacy_two_pass(pipeline, text), config.repeats
    )
    single_pass_seconds = _median_seconds(
        lambda: pipeline.analyze(text), config.repeats
    )

    cache = FeatureCache(max_entries=64)
    pipeline.set_feature_cache(cache)
    pipeline.analyze(text)  # populate the cache
    cached_seconds = _median_seconds(
        lambda: pipeline.analyze(text), config.repeats
    )
    pipeline.set_feature_cache(None)

    stages = _stage_breakdown(pipeline, text, config.repeats)
    prediction = _bench_prediction(pipeline, text, config.repeats)
    cv = _bench_cv(config, corpus)
    corpus_sweep = _bench_corpus_sweep(config, corpus, pipeline)
    adapter_sweep = _bench_adapter_sweep(config, corpus, pipeline)
    service_roundtrip = _bench_service_roundtrip(
        config, corpus, pipeline
    )

    cache_stats = cache.stats()
    return {
        "schema": BENCH_SCHEMA,
        "config": asdict(config),
        "fit_seconds": fit_seconds,
        "stages": stages,
        "prediction": prediction,
        "analyze": {
            "legacy_two_pass_seconds": legacy_seconds,
            "single_pass_seconds": single_pass_seconds,
            "cached_seconds": cached_seconds,
            # Cold-path gain from extracting line features once.
            "single_pass_speedup": legacy_seconds / single_pass_seconds,
            # Headline: repeated traffic over known content against
            # the pre-PR two-pass baseline.
            "analyze_speedup": legacy_seconds / cached_seconds,
            "cache_hits": cache_stats["hits"],
            "cache_misses": cache_stats["misses"],
        },
        "cv": cv,
        "corpus_sweep": corpus_sweep,
        "adapter_sweep": adapter_sweep,
        "service_roundtrip": service_roundtrip,
    }


#: Config fields that must match for two reports to be comparable —
#: everything that shapes the workload.  ``n_jobs`` is excluded: the
#: worker count is a machine knob, and results never depend on it.
_COMPARABLE_CONFIG_KEYS: tuple[str, ...] = (
    "corpus", "scale", "trees", "rows", "repeats",
    "cv_splits", "cv_repeats", "cv_trees", "seed", "quick",
)

#: Default regression tolerance for :func:`diff_reports`: a timing
#: more than 25% above the baseline fails the diff.
DEFAULT_TOLERANCE = 0.25


def load_report(path: str | Path) -> dict:
    """Read a saved benchmark report, validating its schema tag."""
    report = json.loads(Path(path).read_text(encoding="utf-8"))
    schema = report.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"unsupported benchmark schema {schema!r} in {path} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    return report


def configs_comparable(current: dict, baseline: dict) -> bool:
    """Whether two reports ran the same workload (see
    :data:`_COMPARABLE_CONFIG_KEYS`)."""
    a, b = current.get("config", {}), baseline.get("config", {})
    return all(a.get(key) == b.get(key) for key in _COMPARABLE_CONFIG_KEYS)


def _timing_metrics(report: dict) -> dict[str, float]:
    """Flat ``metric name -> seconds`` view of a report's timings."""
    metrics: dict[str, float] = {"fit_seconds": report["fit_seconds"]}
    for stage, seconds in report["stages"].items():
        metrics[f"stages.{stage}"] = seconds
    analyze = report["analyze"]
    for key in (
        "legacy_two_pass_seconds", "single_pass_seconds", "cached_seconds"
    ):
        metrics[f"analyze.{key}"] = analyze[key]
    cv = report["cv"]
    for key in ("uncached_seconds", "cached_seconds"):
        metrics[f"cv.{key}"] = cv[key]
    prediction = report.get("prediction")
    if prediction is not None:
        metrics["prediction.line_seconds"] = prediction["line_seconds"]
        metrics["prediction.cell_seconds"] = prediction["cell_seconds"]
    sweep = report.get("corpus_sweep")
    if sweep is not None:
        # Only the sequential sweep is diffed: the parallel timings
        # depend on the jobs level, which ``_COMPARABLE_CONFIG_KEYS``
        # deliberately leaves out of the comparability check.
        metrics["corpus_sweep.sequential_seconds"] = (
            sweep["sequential_seconds"]
        )
    lake = report.get("adapter_sweep")
    if lake is not None:
        metrics["adapter_sweep.seconds"] = lake["seconds"]
    roundtrip = report.get("service_roundtrip")
    if roundtrip is not None:
        metrics["service_roundtrip.seconds"] = roundtrip["seconds"]
    return metrics


#: Ratio metrics compared by :func:`diff_reports` alongside the
#: timings.  These are **higher-is-better** (a speedup), so the
#: regression test is inverted: the metric regresses when the current
#: value falls below ``baseline * (1 - tolerance)``.  ``cv.speedup``
#: lives here so a cache that quietly stops paying for itself (the
#: 0.97x episode this guards against) fails the diff instead of
#: rotting in the report.
#: ``corpus_sweep.cache_speedup`` joins it for the same reason: the
#: on-disk sweep cache must keep its warm pass dramatically cheaper
#: than the cold pass, or the content-addressed store has rotted.
_RATIO_METRICS: tuple[str, ...] = (
    "cv.speedup", "corpus_sweep.cache_speedup"
)


def _ratio_metrics(report: dict) -> dict[str, float]:
    """Flat ``metric name -> ratio`` view of a report's speedups.

    Tolerates reports recorded before a ratio existed — the diff
    simply skips metrics absent from either side.
    """
    ratios: dict[str, float] = {}
    speedup = report.get("cv", {}).get("speedup")
    if speedup is not None:
        ratios["cv.speedup"] = speedup
    cache_speedup = report.get("corpus_sweep", {}).get("cache_speedup")
    if cache_speedup is not None:
        ratios["corpus_sweep.cache_speedup"] = cache_speedup
    return ratios


def diff_reports(
    current: dict,
    baseline: dict,
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Metric-by-metric comparison of two comparable reports.

    Returns a dict with one entry per shared timing metric (baseline
    seconds, current seconds, and the ratio ``current/baseline``), the
    list of metrics that regressed beyond ``tolerance``, and the
    tolerance used.  Metrics present in only one report (e.g. a stage
    added after the baseline was recorded) are listed separately and
    never gate.
    """
    if tolerance < 0:
        raise InvalidParameterError("tolerance must be non-negative")
    current_metrics = _timing_metrics(current)
    baseline_metrics = _timing_metrics(baseline)
    shared = [m for m in baseline_metrics if m in current_metrics]
    entries = {}
    regressions = []
    for metric in shared:
        before = baseline_metrics[metric]
        after = current_metrics[metric]
        ratio = after / before if before > 0 else float("inf")
        regressed = bool(after > before * (1.0 + tolerance))
        entries[metric] = {
            "baseline_seconds": before,
            "current_seconds": after,
            "ratio": ratio,
            "regressed": regressed,
        }
        if regressed:
            regressions.append(metric)
    current_ratios = _ratio_metrics(current)
    baseline_ratios = _ratio_metrics(baseline)
    ratio_entries = {}
    for metric in _RATIO_METRICS:
        if metric not in current_ratios or metric not in baseline_ratios:
            continue
        before = baseline_ratios[metric]
        after = current_ratios[metric]
        # Higher is better: regression means the speedup shrank by
        # more than the tolerance, not that it grew.
        regressed = bool(after < before * (1.0 - tolerance))
        ratio_entries[metric] = {
            "baseline_ratio": before,
            "current_ratio": after,
            "regressed": regressed,
        }
        if regressed:
            regressions.append(metric)
    return {
        "tolerance": tolerance,
        "metrics": entries,
        "ratios": ratio_entries,
        "regressions": regressions,
        "only_in_current": sorted(
            m for m in current_metrics if m not in baseline_metrics
        ),
        "only_in_baseline": sorted(
            m for m in baseline_metrics if m not in current_metrics
        ),
    }


def format_diff(diff: dict) -> str:
    """Human-readable per-metric delta table for terminal output."""
    lines = [
        f"baseline comparison (tolerance {diff['tolerance']:.0%}):"
    ]
    for metric, entry in diff["metrics"].items():
        marker = "REGRESSED" if entry["regressed"] else ""
        lines.append(
            f"  {metric:<32} {entry['baseline_seconds']:>8.3f}s ->"
            f" {entry['current_seconds']:>8.3f}s"
            f"  ({entry['ratio']:.2f}x) {marker}".rstrip()
        )
    for metric, entry in diff.get("ratios", {}).items():
        marker = "REGRESSED" if entry["regressed"] else ""
        lines.append(
            f"  {metric:<32} {entry['baseline_ratio']:>8.2f}x ->"
            f" {entry['current_ratio']:>8.2f}x"
            f"  (higher is better) {marker}".rstrip()
        )
    for metric in diff["only_in_current"]:
        lines.append(f"  {metric:<32} (new metric, not gated)")
    for metric in diff["only_in_baseline"]:
        lines.append(f"  {metric:<32} (absent from this run)")
    if diff["regressions"]:
        lines.append(
            f"{len(diff['regressions'])} metric(s) regressed beyond "
            f"tolerance: {', '.join(diff['regressions'])}"
        )
    else:
        lines.append("no regressions beyond tolerance")
    return "\n".join(lines)


def write_report(report: dict, path: str | Path) -> Path:
    """Persist a benchmark report as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def format_summary(report: dict) -> str:
    """Human-readable digest of a report, for terminal output."""
    analyze = report["analyze"]
    cv = report["cv"]
    lines = [
        f"fit: {report['fit_seconds']:.2f}s "
        f"(trees={report['config']['trees']}, "
        f"scale={report['config']['scale']:g})",
        "stages (single analyze of the "
        f"{report['config']['rows']}-row file):",
    ]
    total = sum(report["stages"].values())
    for stage, seconds in report["stages"].items():
        share = seconds / total if total else 0.0
        lines.append(f"  {stage:<20} {seconds:>8.3f}s {share:>6.1%}")
    prediction = report.get("prediction")
    if prediction is not None:
        lines.extend(
            [
                "prediction throughput (features pre-extracted):",
                f"  lines  {prediction['rows']:>6} in "
                f"{prediction['line_seconds']:.4f}s  "
                f"({prediction['rows_per_second']:,.0f} rows/s)",
                f"  cells  {prediction['cells']:>6} in "
                f"{prediction['cell_seconds']:.4f}s  "
                f"({prediction['cells_per_second']:,.0f} cells/s)",
            ]
        )
    lines.extend(
        [
            "analyze:",
            f"  legacy two-pass      {analyze['legacy_two_pass_seconds']:>8.3f}s",
            f"  single-pass          {analyze['single_pass_seconds']:>8.3f}s"
            f"  ({analyze['single_pass_speedup']:.2f}x)",
            f"  single-pass + cache  {analyze['cached_seconds']:>8.3f}s"
            f"  ({analyze['analyze_speedup']:.2f}x)",
            "cv:",
            f"  uncached             {cv['uncached_seconds']:>8.3f}s",
            f"  cached               {cv['cached_seconds']:>8.3f}s"
            f"  ({cv['speedup']:.2f}x)",
            f"  byte-identical       {cv['byte_identical']}",
        ]
    )
    sweep = report.get("corpus_sweep")
    if sweep is not None:
        jobs = sweep["jobs"]
        seq = sweep["engine"]["1"]
        par = sweep["engine"][str(jobs)]
        lines.extend(
            [
                f"corpus sweep ({sweep['files']} files, "
                f"{sweep['cells']} cells):",
                "  per-call pools       "
                f"{sweep['percall_pool_seconds']:>8.3f}s",
                "  engine, 1 worker     "
                f"{seq['seconds']:>8.3f}s"
                f"  ({seq['files_per_second']:,.1f} files/s, "
                f"{seq['cells_per_second']:,.0f} cells/s)",
                f"  engine, {jobs} workers    "
                f"{par['seconds']:>8.3f}s"
                f"  ({par['files_per_second']:,.1f} files/s, "
                f"{par['cells_per_second']:,.0f} cells/s, "
                f"{sweep['engine_speedup']:.2f}x vs per-call)",
                "  sweep cache warm     "
                f"{sweep['cache_warm_seconds']:>8.3f}s"
                f"  ({sweep['cache_speedup']:.2f}x vs cold "
                f"{sweep['cache_cold_seconds']:.3f}s)",
                f"  byte-identical       {sweep['byte_identical']}",
            ]
        )
    lake = report.get("adapter_sweep")
    if lake is not None:
        lines.extend(
            [
                f"adapter lake sweep ({lake['sources']} sources from "
                f"{lake['files']} files, loose + zip + tar):",
                "  enumerate            "
                f"{lake['enumerate_seconds']:>8.3f}s",
                "  classify             "
                f"{lake['seconds']:>8.3f}s"
                f"  ({lake['sources_per_second']:,.1f} sources/s)",
                f"  byte-identical       {lake['byte_identical']}",
            ]
        )
    roundtrip = report.get("service_roundtrip")
    if roundtrip is not None:
        lines.extend(
            [
                f"service round-trip ({roundtrip['files']} files, "
                "in-process async client):",
                "  submit-to-settle     "
                f"{roundtrip['seconds']:>8.3f}s"
                f"  ({roundtrip['files_per_second']:,.1f} files/s, "
                f"{roundtrip['dead_letters']} dead-lettered)",
                f"  byte-identical       {roundtrip['byte_identical']}",
            ]
        )
    return "\n".join(lines)
