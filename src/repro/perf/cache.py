"""Corpus-level feature cache.

Repeated grouped cross-validation re-extracts the same per-file
feature matrices in every fold and repetition, and the paper's own
profiling says that is where the time goes ("most of the time is
spent on creating the feature vectors", Section 6.3.4).  The matrices
only depend on the table contents and the extractor configuration —
never on the fold — so one corpus-level cache makes every fold after
the first a lookup.

Keys are built from two parts:

* a **content hash** of the table (SHA-256 over the raw cell values
  with unambiguous separators), so two structurally identical tables
  share an entry and any edit invalidates it;
* an **extractor configuration key** provided by the caller (the
  extractors expose ``cache_key`` properties), so changing detector
  parameters or feature options can never serve stale matrices.

Values are tuples of numpy arrays (the protocol the Strudel
classifiers use: ``(features,)`` for line matrices,
``(positions, features)`` for cell matrices).  Memory is bounded by
an LRU policy; an optional directory adds on-disk persistence in
``.npz`` format so a cache outlives the process (useful for repeated
benchmark runs over a fixed corpus).

The cache is thread-safe: concurrent ``get_or_compute`` calls may
race to compute the same entry, but both compute identical arrays
(extraction is deterministic), so last-write-wins is harmless.  The
hit/miss/eviction counters are mutated under the same lock and must
be read through :meth:`FeatureCache.stats`, which snapshots them all
under that lock — reading the attributes directly can observe a torn
state mid-update.  Every event is mirrored into the process-local
:mod:`repro.obs` metrics registry (``feature_cache.hits`` /
``feature_cache.misses`` / ``feature_cache.evictions``).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs import get_metrics
from repro.types import Table

#: Byte separators that make the row/cell flattening injective.
_CELL_SEP = b"\x1f"
_ROW_SEP = b"\x1e"

#: What a truncated, torn, or otherwise damaged ``.npz`` raises on
#: load.  Treated as a miss, never an error: a cache file must not be
#: able to poison the process that next reads it.
_CORRUPT_NPZ_ERRORS = (OSError, ValueError, KeyError, EOFError,
                       zipfile.BadZipFile)


def table_content_hash(table: Table) -> str:
    """SHA-256 hex digest of a table's raw cell values.

    Cells are joined with the ASCII unit separator and rows with the
    record separator, so no combination of cell contents can collide
    with a different grid of the same characters.
    """
    digest = hashlib.sha256()
    for row in table.rows():
        for value in row:
            digest.update(value.encode("utf-8", errors="surrogatepass"))
            digest.update(_CELL_SEP)
        digest.update(_ROW_SEP)
    return digest.hexdigest()


def array_hash(array: np.ndarray) -> str:
    """SHA-256 hex digest of an array's dtype, shape and bytes.

    Used to key cell-feature entries by the line-probability matrix
    they were derived from: different upstream line models must never
    share cell features.
    """
    digest = hashlib.sha256()
    contiguous = np.ascontiguousarray(array)
    digest.update(str(contiguous.dtype).encode("ascii"))
    digest.update(str(contiguous.shape).encode("ascii"))
    digest.update(contiguous.tobytes())
    return digest.hexdigest()


class FeatureCache:
    """Bounded LRU cache for per-table feature matrices.

    Parameters
    ----------
    max_entries:
        Maximum number of in-memory entries; the least recently used
        entry is evicted first.  Must be positive.
    directory:
        Optional directory for on-disk persistence.  Entries evicted
        from memory remain loadable from disk; a fresh cache pointed
        at the same directory starts warm.
    """

    def __init__(
        self,
        max_entries: int = 256,
        directory: str | Path | None = None,
    ):
        if max_entries < 1:
            raise InvalidParameterError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self._entries: OrderedDict[str, tuple[np.ndarray, ...]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        # The registry is resolved once: ``get`` sits on the CV hot
        # path, where a per-hit lookup is measurable noise.
        self._metrics = get_metrics()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def make_key(*parts: str) -> str:
        """Join key components unambiguously (``|`` is the separator)."""
        return "|".join(parts)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        """A consistent snapshot of the counters, taken under the lock.

        This is the only supported way to *read* ``hits`` / ``misses``
        / ``evictions`` — concurrent lookups mutate them under the
        lock, so unlocked attribute reads can tear (e.g. a hit counted
        before its entry refresh is visible).
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._entries),
            }

    # ------------------------------------------------------------------
    def get(self, key: str) -> tuple[np.ndarray, ...] | None:
        """The cached value for ``key``, or ``None``.

        A memory hit refreshes the entry's LRU position; a disk hit
        re-admits the entry into memory.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.hits += 1
        if value is not None:
            self._metrics.increment("feature_cache.hits")
            return value
        value = self._load_from_disk(key)
        if value is not None:
            with self._lock:
                self.hits += 1
                self._admit(key, value)
            self._metrics.increment("feature_cache.hits")
            return value
        with self._lock:
            self.misses += 1
        self._metrics.increment("feature_cache.misses")
        return None

    def put(self, key: str, value: tuple[np.ndarray, ...]) -> None:
        """Store ``value`` under ``key``, evicting LRU entries if full."""
        with self._lock:
            self._admit(key, value)
        self._save_to_disk(key, value)

    def get_or_compute(self, key, compute):
        """The cached value for ``key``, computing and storing on miss.

        ``compute`` must be a zero-argument callable returning a tuple
        of numpy arrays; it runs outside the cache lock so concurrent
        extraction can proceed in parallel.
        """
        cached = self.get(key)
        if cached is not None:
            return cached
        value = tuple(compute())
        self.put(key, value)
        return value

    def clear(self) -> None:
        """Drop all in-memory entries (disk files are kept)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def _admit(self, key: str, value: tuple[np.ndarray, ...]) -> None:
        """Insert under the held lock and enforce the memory bound."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        if evicted:
            self.evictions += evicted
            self._metrics.increment("feature_cache.evictions", evicted)

    # ------------------------------------------------------------------
    def _disk_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        name = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{name}.npz"

    def _save_to_disk(self, key: str, value: tuple[np.ndarray, ...]) -> None:
        """Persist atomically: write a temp file, then rename over.

        Concurrent workers may race to persist the same entry; each
        writes its own temp file and the ``os.replace`` is atomic, so
        a reader never observes a half-written archive — a mid-write
        crash leaves only an orphan ``.tmp``, never a corrupt entry.
        """
        path = self._disk_path(key)
        if path is None or path.exists():
            return
        arrays = {f"arr_{i}": array for i, array in enumerate(value)}
        handle = tempfile.NamedTemporaryFile(
            dir=path.parent, prefix=path.stem, suffix=".tmp", delete=False
        )
        try:
            with handle:
                np.savez(handle, **arrays)
            os.replace(handle.name, path)
        except BaseException:
            Path(handle.name).unlink(missing_ok=True)
            raise

    def _load_from_disk(self, key: str) -> tuple[np.ndarray, ...] | None:
        path = self._disk_path(key)
        if path is None or not path.exists():
            return None
        try:
            with np.load(path) as archive:
                return tuple(
                    archive[f"arr_{i}"] for i in range(len(archive.files))
                )
        except _CORRUPT_NPZ_ERRORS:
            # Quarantine by deletion: count it, forget it, recompute.
            path.unlink(missing_ok=True)
            self._metrics.increment("feature_cache.disk_errors")
            return None
