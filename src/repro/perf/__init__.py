"""Performance subsystem: caching, deterministic parallelism, benchmarks.

``repro.perf`` holds the pieces that make the hot paths fast without
changing any result:

* :mod:`repro.perf.cache` — a corpus-level feature cache keyed by
  table content hash plus extractor configuration, with bounded LRU
  memory and optional on-disk persistence;
* :mod:`repro.perf.parallel` — ordered, deterministic fan-out helpers
  (``parallel_map``) used by the random forest and by per-file corpus
  feature extraction;
* :mod:`repro.perf.bench` — the ``repro bench`` harness that times
  fit / analyze / CV stages and emits ``BENCH_pipeline.json`` so the
  perf trajectory is recorded per commit.

The cache and parallel helpers sit *below* ``repro.core`` in the layer
DAG so the classifiers can consume them; the benchmark harness is its
own top layer (it drives the full pipeline end to end).
"""

from repro.perf.cache import FeatureCache, table_content_hash
from repro.perf.parallel import effective_jobs, parallel_map

__all__ = [
    "FeatureCache",
    "effective_jobs",
    "parallel_map",
    "table_content_hash",
]
