"""Persistent process pools: warm workers amortized across calls.

Every ``parallel_map(prefer="processes")`` call used to stand up a
fresh :class:`~concurrent.futures.ProcessPoolExecutor`, fork its
workers, run one batch of tasks and tear the whole thing down again.
For corpus-scale work — a forest fit per CV fold, a sweep over
thousands of files — the pool startup (fork + pipe setup, ~50–100ms on
this container) and the per-task payload pickling dominate the useful
work.  A :class:`WorkerPool` keeps its executor alive between calls so
the fork cost is paid once per process lifetime, and its
``initializer`` hook ships one-time state (a fitted model's compiled
tensors) to each worker at spawn instead of pickling it into every
task.

Determinism contract (inherited from :mod:`repro.perf.parallel`):

* :meth:`WorkerPool.map` submits in input order and collects back into
  input order, so results are identical to the sequential path;
* an exception raised by the work function propagates unchanged and
  the work is never re-run;
* a broken pool (workers killed from outside) raises
  :class:`~concurrent.futures.process.BrokenProcessPool` to the
  caller *and* discards the dead executor, so the next call starts a
  fresh one instead of failing forever.

Lifecycle events are published as metrics (``worker_pool.spawns`` /
``worker_pool.reuses`` / ``worker_pool.broken``) so a deployment can
see whether its pools are actually warm — a spawn count tracking the
call count means the amortization is not happening.

One module-level **shared pool** serves every anonymous
``parallel_map`` fan-out in the process; engines that need a worker
initializer (:mod:`repro.perf.engine`) own private pools.  All pools
register with :func:`shutdown_all_pools`, which runs at interpreter
exit so no forked worker outlives its parent.
"""

from __future__ import annotations

import atexit
import threading
import weakref
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.errors import InvalidParameterError
from repro.obs import get_metrics

T = TypeVar("T")
R = TypeVar("R")

#: Every live WorkerPool, so interpreter exit can reap their workers.
#: Weak references: a pool dropped by its owner must be collectable —
#: its executor's own finalizer handles the workers.  Guarded by
#: ``_REGISTRY_LOCK``: registration races the atexit sweep, and a
#: WeakSet mutating mid-iteration (a pool garbage-collected while
#: :func:`shutdown_all_pools` walks it) raises ``RuntimeError`` at the
#: worst possible moment — interpreter teardown.
_REGISTRY_LOCK = threading.Lock()
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


class WorkerPool:
    """A process pool whose workers stay warm across ``map`` calls.

    Parameters
    ----------
    max_workers:
        Worker process count; must be positive.
    initializer / initargs:
        Optional one-time per-worker setup, run in each worker at
        spawn.  This is the broadcast channel: state passed here is
        pickled **once per worker**, not once per task.

    The executor is created lazily on first use and recreated after a
    :class:`BrokenProcessPool`, so one crashed batch never condemns
    the pool.  Thread-safe; creation and discard happen under a lock.
    """

    def __init__(
        self,
        max_workers: int,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        if max_workers < 1:
            raise InvalidParameterError("max_workers must be >= 1")
        self.max_workers = max_workers
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._lock = threading.Lock()
        self._executor: ProcessPoolExecutor | None = None
        self._metrics = get_metrics()
        with _REGISTRY_LOCK:
            _LIVE_POOLS.add(self)

    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order.

        Work-function exceptions propagate unchanged (remaining queued
        items are cancelled, running ones finish — no item ever runs
        twice).  Pool-infrastructure failures also propagate, but a
        broken executor is discarded first so the next call recovers.
        """
        executor = self._acquire()
        try:
            return list(executor.map(fn, items))
        except BrokenProcessPool:
            self._discard(executor)
            raise

    def submit(self, fn: Callable[..., R], *args) -> "Future[R]":
        """Submit one call; same recovery semantics as :meth:`map`."""
        executor = self._acquire()
        try:
            return executor.submit(fn, *args)
        except BrokenProcessPool:
            self._discard(executor)
            raise

    def discard_broken(self) -> None:
        """Drop the current executor after an out-of-band break.

        For callers that consume :meth:`submit` futures directly and
        see ``BrokenProcessPool`` on ``future.result()`` rather than
        at submission time.
        """
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            self._metrics.increment("worker_pool.broken")
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; the next use spawns a fresh executor."""
        with self._lock:
            executor = self._executor
            self._executor = None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    def _acquire(self) -> ProcessPoolExecutor:
        """The live executor, spawning one if needed (lock held)."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=self._initializer,
                    initargs=self._initargs,
                )
                self._metrics.increment("worker_pool.spawns")
            else:
                self._metrics.increment("worker_pool.reuses")
            return self._executor

    def _discard(self, executor: ProcessPoolExecutor) -> None:
        """Forget ``executor`` after a break (idempotent per executor)."""
        with self._lock:
            if self._executor is not executor:
                return
            self._executor = None
        self._metrics.increment("worker_pool.broken")
        executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# The process-wide shared pool behind ``parallel_map``.

_SHARED_LOCK = threading.Lock()
_SHARED_POOL: WorkerPool | None = None


def shared_pool(max_workers: int) -> WorkerPool:
    """The process-wide pool, grown to at least ``max_workers``.

    A request larger than the current pool replaces it (the old
    workers are released without waiting); a smaller request reuses
    the existing, bigger pool — ordered collection makes the result
    independent of the worker count, and idle workers cost only
    memory.
    """
    global _SHARED_POOL
    with _SHARED_LOCK:
        pool = _SHARED_POOL
        if pool is None or pool.max_workers < max_workers:
            if pool is not None:
                pool.shutdown(wait=False)
            pool = WorkerPool(max_workers)
            _SHARED_POOL = pool
        return pool


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (tests; the next use respawns it)."""
    global _SHARED_POOL
    with _SHARED_LOCK:
        pool = _SHARED_POOL
        _SHARED_POOL = None
    if pool is not None:
        pool.shutdown()


def shutdown_all_pools() -> None:
    """Stop every live pool's workers (registered with ``atexit``).

    Runs at interpreter exit, where nothing can be assumed healthy: a
    pool whose workers already crashed, an executor half-finalized by
    its own atexit hook, a WeakSet entry dying mid-sweep.  The
    registry is snapshotted under its lock and every shutdown failure
    is tolerated — a dead executor is exactly the outcome we wanted,
    and an exception escaping an atexit callback prints a spurious
    traceback over an otherwise clean exit.
    """
    try:
        shutdown_shared_pool()
    except Exception:
        pass
    with _REGISTRY_LOCK:
        pools = list(_LIVE_POOLS)
    for pool in pools:
        try:
            pool.shutdown(wait=False)
        except Exception:
            continue


atexit.register(shutdown_all_pools)
