"""Feature preprocessing: scaling and logarithmic binning.

``LogarithmicBinner`` implements the binning technique of Adelfio &
Samet that the paper applies to the CRF-L baseline ("we applied this
approach with the logarithmic binning technique introduced by the
authors, as this setting was reported to gain the best performance"):
continuous feature values are discretized into exponentially growing
buckets, generalizing the training data for the CRF.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, NotFittedError


class MinMaxScaler:
    """Scale each feature column to [0, 1] based on training extremes."""

    def __init__(self) -> None:
        self._low: np.ndarray | None = None
        self._span: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record column minima and ranges."""
        X = np.asarray(X, dtype=np.float64)
        self._low = X.min(axis=0)
        span = X.max(axis=0) - self._low
        span[span == 0] = 1.0  # constant columns map to 0
        self._span = span
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the fitted scaling, clipping to [0, 1]."""
        if self._low is None:
            raise NotFittedError("MinMaxScaler must be fitted first")
        X = np.asarray(X, dtype=np.float64)
        return np.clip((X - self._low) / self._span, 0.0, 1.0)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)


class LogarithmicBinner:
    """Discretize non-negative values into logarithmic buckets.

    Value ``v`` maps to ``floor(log2(1 + v / scale))``, capped at
    ``n_bins - 1``.  Bucket widths double as values grow, so small
    differences near zero stay distinguishable while large values
    generalize — the property Adelfio & Samet exploit for CRF features.
    """

    def __init__(self, n_bins: int = 8, scale: float = 1.0):
        if n_bins < 2:
            raise InvalidParameterError("n_bins must be >= 2")
        if scale <= 0:
            raise InvalidParameterError("scale must be positive")
        self.n_bins = n_bins
        self.scale = scale

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Bin every entry of ``X`` (negatives clamp to bucket 0)."""
        X = np.asarray(X, dtype=np.float64)
        positive = np.clip(X, 0.0, None)
        bins = np.floor(np.log2(1.0 + positive / self.scale))
        return np.clip(bins, 0, self.n_bins - 1).astype(np.int64)

    def one_hot(self, X: np.ndarray) -> np.ndarray:
        """Binned then one-hot encoded, column-blocked per feature.

        For an input of shape ``(n, d)`` the output has shape
        ``(n, d * n_bins)``.
        """
        binned = self.transform(X)
        if binned.ndim == 1:
            binned = binned[:, None]
        n, d = binned.shape
        out = np.zeros((n, d * self.n_bins), dtype=np.float64)
        for j in range(d):
            out[np.arange(n), j * self.n_bins + binned[:, j]] = 1.0
        return out
