"""Compiled forest inference — the whole forest as flat tensors.

A fitted :class:`~repro.ml.forest.RandomForestClassifier` predicts by
looping over its trees in Python: 40 trees means 40 separate batched
traversals plus 40 column-alignment steps per call.  Each individual
traversal is vectorized, but with ~6 levels per tree the loop still
issues thousands of small numpy kernels per table — prediction became
the pipeline hot path once feature extraction went columnar.

:class:`CompiledForest` removes the loop.  At compile time every
tree's flat node arrays are concatenated into single forest-wide
tensors (``feature`` / ``threshold`` / ``left`` / ``right`` with child
indices rebased to absolute positions, plus per-tree root offsets),
and every node's class-probability row is pre-aligned onto the
forest's *global* class order — the per-call ``class_index`` dict and
per-tree column lists disappear entirely.  Prediction then runs **one**
level-synchronous traversal over the full ``(samples x trees)``
frontier: all sample/tree pairs descend together, and the loop count
is the depth of the deepest tree, not ``n_trees x depth``.

Byte-identity with the legacy path is a hard contract (the parity
suite pins ``.tobytes()`` equality):

* node descent evaluates exactly the legacy comparison
  ``X[row, feature] <= threshold``, so every pair reaches the same
  leaf;
* class alignment *places* each tree's probability rows into the
  global columns (classes absent from a bootstrap hold exact ``+0.0``,
  and adding ``+0.0`` to a non-negative float is bitwise inert), so an
  aligned row-add equals the legacy ``total[:, columns] += proba``;
* accumulation is an explicit Python loop over trees **in tree
  order** — float addition is not associative, and a pairwise
  ``np.sum`` over a tree axis would drift in the last ulp;
* the final division by ``n_trees`` happens last, as in the legacy
  path.

The compiled tensors are also the persistence substrate: saving a
forest stores them directly, and :meth:`CompiledForest.decompile`
reconstructs the exact per-tree estimators from a saved bundle.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.base import check_X
from repro.ml.tree import _NO_FEATURE, DecisionTreeClassifier
from repro.obs import get_metrics, get_tracer


class CompiledForest:
    """A fitted random forest packed into contiguous numpy tensors.

    Parameters
    ----------
    feature, threshold, left, right:
        Concatenated per-node arrays over all trees.  ``feature`` is
        ``-1`` at leaves; ``left``/``right`` hold *absolute* node
        indices into the concatenation (``-1`` at leaves).
    proba:
        ``(n_nodes, n_classes)`` class probabilities for **every**
        node (not only leaves), pre-aligned to ``classes``; columns
        for classes a tree never saw are exactly ``+0.0``.
    roots:
        Index of each tree's root node (trees store their root first,
        so this doubles as the segment-start offsets).
    classes:
        The forest's global class order.
    n_features:
        Width of the feature matrices the forest was fitted on.
    tree_classes, tree_class_offsets:
        The per-tree class arrays, concatenated, with ``n_trees + 1``
        boundary offsets — enough to reconstruct each tree's local
        class order (and thus the original estimators) exactly.
    """

    def __init__(
        self,
        feature: np.ndarray,
        threshold: np.ndarray,
        left: np.ndarray,
        right: np.ndarray,
        proba: np.ndarray,
        roots: np.ndarray,
        classes: np.ndarray,
        n_features: int,
        tree_classes: np.ndarray,
        tree_class_offsets: np.ndarray,
    ):
        n_nodes = len(feature)
        for name, array in (
            ("threshold", threshold), ("left", left), ("right", right),
        ):
            if len(array) != n_nodes:
                raise InvalidParameterError(
                    f"compiled {name} has {len(array)} nodes, "
                    f"expected {n_nodes}"
                )
        if proba.shape != (n_nodes, len(classes)):
            raise InvalidParameterError(
                f"compiled proba shape {proba.shape} does not match "
                f"({n_nodes}, {len(classes)})"
            )
        if len(tree_class_offsets) != len(roots) + 1:
            raise InvalidParameterError(
                "tree_class_offsets must have n_trees + 1 entries"
            )
        self._feature = np.ascontiguousarray(feature, dtype=np.int64)
        self._threshold = np.ascontiguousarray(threshold, dtype=np.float64)
        self._left = np.ascontiguousarray(left, dtype=np.int64)
        self._right = np.ascontiguousarray(right, dtype=np.int64)
        self._proba = np.ascontiguousarray(proba, dtype=np.float64)
        self._roots = np.ascontiguousarray(roots, dtype=np.int64)
        self.classes_ = np.asarray(classes)
        self.n_features_ = int(n_features)
        self._tree_classes = np.asarray(tree_classes)
        self._tree_class_offsets = np.ascontiguousarray(
            tree_class_offsets, dtype=np.int64
        )
        # Derived traversal arrays (rebuilt on load, never stored):
        # leaves self-loop so finished (sample, tree) pairs ride out
        # the remaining iterations untouched, and their feature index
        # is clamped to 0 so the (discarded) gather stays in bounds.
        is_leaf = self._feature == _NO_FEATURE
        node_index = np.arange(n_nodes, dtype=np.int64)
        # The frontier loop is gather-bound, so the node tables use
        # the narrowest dtype that can hold ``2 * n_nodes`` (the child
        # table is indexed by ``2 * node + go_left``): int16 halves
        # the bytes every gather touches and keeps the whole forest in
        # L1/L2 for realistic tree counts.  Oversized forests fall
        # back to int64 — same code path, wider arithmetic.
        if 2 * n_nodes <= np.iinfo(np.int16).max:
            index_dtype = np.int16
        else:
            index_dtype = np.int64
        self._index_dtype = index_dtype
        self._safe_feature = np.where(
            is_leaf, 0, self._feature
        ).astype(index_dtype)
        # One fused child table indexed by ``2 * node + go_left``:
        # replaces the left-gather / right-gather / where triple with
        # a single take per level.
        child = np.empty(2 * n_nodes, dtype=index_dtype)
        child[0::2] = np.where(is_leaf, node_index, self._right)
        child[1::2] = np.where(is_leaf, node_index, self._left)
        self._child = child
        # Samples are traversed in row chunks sized so one chunk of
        # the feature matrix (``rows * n_features`` float64) stays
        # cache-resident while the frontier descends; the bound also
        # guarantees ``rows * n_features`` fits the int16 row-base
        # offsets used alongside the node tables.
        self._chunk_rows = max(32, 16384 // max(self.n_features_, 1))
        rows = self._chunk_rows
        base_dtype = index_dtype
        if rows * self.n_features_ > np.iinfo(np.int16).max:
            base_dtype = np.int64  # very wide matrices: plain offsets
        self._row_base = np.repeat(
            np.arange(rows, dtype=base_dtype)
            * base_dtype(self.n_features_),
            len(roots),
        )
        self._root_tile = np.tile(
            self._roots.astype(index_dtype), rows
        )

    # ------------------------------------------------------------------
    @property
    def n_trees(self) -> int:
        """Number of trees packed into the tensors."""
        return len(self._roots)

    @property
    def n_nodes(self) -> int:
        """Total node count across all trees."""
        return len(self._feature)

    # ------------------------------------------------------------------
    @classmethod
    def from_forest(cls, forest) -> "CompiledForest":
        """Pack a fitted :class:`RandomForestClassifier`.

        Runs under the ``forest_compile`` span; emits the
        ``compiled_forest.compiles`` counter and a
        ``compiled_forest.nodes`` gauge so repeated recompiles (a
        cache-miss symptom) show up in telemetry.
        """
        trees = forest.estimators_
        if trees is None:
            raise InvalidParameterError(
                "cannot compile an unfitted forest"
            )
        classes = forest.classes_
        n_classes = len(classes)
        class_index = {c: i for i, c in enumerate(classes)}
        with get_tracer().span(
            "forest_compile", trees=len(trees)
        ):
            counts = np.array(
                [len(tree._feature) for tree in trees], dtype=np.int64
            )
            offsets = np.concatenate(([0], np.cumsum(counts)))
            roots = offsets[:-1]  # fit() always stores the root first
            feature = np.concatenate([tree._feature for tree in trees])
            threshold = np.concatenate(
                [tree._threshold for tree in trees]
            )
            # Child indices become absolute positions in the
            # concatenation; leaves stay -1.
            left = np.concatenate([
                np.where(tree._left >= 0, tree._left + start, -1)
                for tree, start in zip(trees, roots)
            ])
            right = np.concatenate([
                np.where(tree._right >= 0, tree._right + start, -1)
                for tree, start in zip(trees, roots)
            ])
            proba = np.zeros((int(offsets[-1]), n_classes))
            for tree, start, count in zip(trees, roots, counts):
                columns = np.array(
                    [class_index[c] for c in tree.classes_],
                    dtype=np.intp,
                )
                # Exact value placement: column j of the tree's local
                # proba lands in global column columns[j]; all other
                # columns keep their +0.0 initialisation.
                proba[start:start + count, columns] = tree._proba
            tree_class_offsets = np.concatenate((
                [0],
                np.cumsum([len(tree.classes_) for tree in trees]),
            ))
            tree_classes = np.concatenate(
                [tree.classes_ for tree in trees]
            )
            compiled = cls(
                feature=feature,
                threshold=threshold,
                left=left,
                right=right,
                proba=proba,
                roots=roots,
                classes=classes,
                n_features=forest.n_features_,
                tree_classes=tree_classes,
                tree_class_offsets=tree_class_offsets,
            )
        metrics = get_metrics()
        metrics.increment("compiled_forest.compiles")
        metrics.gauge("compiled_forest.nodes", float(compiled.n_nodes))
        return compiled

    # ------------------------------------------------------------------
    #: Compact the frontier only when at least 3/8 of it sits on a
    #: leaf: compaction is three gathers plus a scatter, so shrinking
    #: too eagerly costs more than the dead entries it removes.
    _COMPACT_NUM, _COMPACT_DEN = 5, 8
    #: Once a chunk's live frontier falls below this, park it and
    #: finish all chunks together in one merged tail loop — deep-path
    #: stragglers are so few that per-chunk iterations on them are
    #: pure kernel-launch overhead.
    _TAIL_SIZE = 1024

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Averaged class probabilities, byte-identical to the legacy
        per-tree loop.

        Every ``(sample, tree)`` pair starts at its tree's root and
        the whole frontier descends one level per iteration; pairs
        that reach a leaf self-loop in place, so the loop runs at most
        ``max(tree depth)`` times regardless of forest size.  The
        frontier is processed in cache-sized row chunks, compacted as
        pairs finish, and the few deep stragglers of all chunks are
        merged into one final tail loop.
        """
        X = check_X(X, self.n_features_)
        n = X.shape[0]
        n_trees = self.n_trees
        leaves = self._traverse(np.ascontiguousarray(X))
        total = np.zeros((n, len(self.classes_)), dtype=np.float64)
        proba = self._proba
        # Sequential tree-order accumulation: float addition is not
        # associative, and the contract is bitwise equality with the
        # legacy one-tree-at-a-time loop.
        for index in range(n_trees):
            total += proba.take(leaves[:, index], axis=0, mode="clip")
        total /= n_trees
        return total

    def _traverse(self, X: np.ndarray) -> np.ndarray:
        """Leaf node index for every ``(sample, tree)`` pair.

        Feature values are gathered through the raveled matrix
        (``row * n_features + feature``) — a flat ``take`` is much
        cheaper than two-dimensional fancy indexing at this call
        rate — and the node comparisons are exactly the legacy
        ``X[row, feature] <= threshold``, so every pair lands on the
        same leaf bit for bit regardless of chunking or compaction.
        All ``take`` calls use ``mode='clip'``: bounds are guaranteed
        by construction and the clip kernel skips the wraparound
        handling of the default mode.
        """
        n = X.shape[0]
        n_trees = self.n_trees
        n_features = self.n_features_
        safe_feature = self._safe_feature
        threshold = self._threshold
        child = self._child
        compact_num, compact_den = self._COMPACT_NUM, self._COMPACT_DEN

        out = np.empty(n * n_trees, dtype=self._index_dtype)
        X_flat = X.reshape(-1)
        # Stragglers parked by the chunk loop: frontier node, global
        # raveled-X row offset, and position in ``out``.
        tail_node: list[np.ndarray] = []
        tail_base: list[np.ndarray] = []
        tail_pos: list[np.ndarray] = []

        chunk = self._chunk_rows
        for start in range(0, n, chunk):
            rows = min(chunk, n - start)
            size = rows * n_trees
            # The per-chunk frontier, sample-major so the per-tree
            # leaf columns come out contiguous after the reshape of
            # ``out``.  ``base`` addresses the chunk's slab of the
            # raveled matrix so offsets stay in the narrow dtype.
            node = self._root_tile[:size].copy()
            base = self._row_base[:size]
            X_chunk = X_flat[start * n_features:
                             (start + rows) * n_features]
            # ``pos`` tracks each live entry's slot in ``out``; it is
            # materialised lazily on the first compaction.
            pos: np.ndarray | None = None
            while True:
                go_left = (
                    X_chunk.take(
                        base + safe_feature.take(node, mode="clip"),
                        mode="clip",
                    )
                    <= threshold.take(node, mode="clip")
                )
                advanced = child.take(2 * node + go_left, mode="clip")
                moved = advanced != node
                live = int(np.count_nonzero(moved))
                if live == 0:
                    if pos is None:
                        out[start * n_trees:
                            start * n_trees + size] = advanced
                    else:
                        out[pos] = advanced
                    break
                if live <= (advanced.size * compact_num) // compact_den:
                    keep = np.nonzero(moved)[0]
                    if pos is None:
                        # First shrink: write the whole chunk (the
                        # finished entries keep these values) and
                        # switch to scattered bookkeeping.
                        offset = start * n_trees
                        out[offset:offset + size] = advanced
                        pos = keep + offset
                    else:
                        out[pos] = advanced
                        pos = pos.take(keep)
                    node = advanced.take(keep)
                    base = base.take(keep)
                    if node.size <= self._TAIL_SIZE:
                        # Park the stragglers; the merged tail loop
                        # finishes them without per-chunk launches.
                        tail_node.append(node)
                        tail_base.append(
                            base.astype(np.int64)
                            + start * n_features
                        )
                        tail_pos.append(pos)
                        break
                else:
                    node = advanced

        if tail_node:
            node = np.concatenate(tail_node)
            base = np.concatenate(tail_base)
            pos = np.concatenate(tail_pos)
            while node.size:
                go_left = (
                    X_flat.take(
                        base + safe_feature.take(node, mode="clip"),
                        mode="clip",
                    )
                    <= threshold.take(node, mode="clip")
                )
                advanced = child.take(2 * node + go_left, mode="clip")
                moved = advanced != node
                live = int(np.count_nonzero(moved))
                if live == 0:
                    out[pos] = advanced
                    break
                if live < advanced.size:
                    out[pos] = advanced
                    keep = np.nonzero(moved)[0]
                    pos = pos.take(keep)
                    node = advanced.take(keep)
                    base = base.take(keep)
                else:
                    node = advanced

        return out.reshape(n, n_trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample under the averaged vote."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    # ------------------------------------------------------------------
    def decompile(self) -> list[DecisionTreeClassifier]:
        """Reconstruct the per-tree estimators, exactly.

        The inverse of :meth:`from_forest`: slices each tree's segment
        back out, rebases child indices to tree-local positions and
        projects the aligned probability rows back onto the tree's own
        class order.  Persistence uses this so a compiled save can
        still hand back a forest with working ``estimators_``.
        """
        bounds = np.concatenate((self._roots, [self.n_nodes]))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        trees: list[DecisionTreeClassifier] = []
        for index in range(self.n_trees):
            start, end = int(bounds[index]), int(bounds[index + 1])
            class_start = int(self._tree_class_offsets[index])
            class_end = int(self._tree_class_offsets[index + 1])
            local_classes = self._tree_classes[class_start:class_end]
            columns = np.array(
                [class_index[c] for c in local_classes], dtype=np.intp
            )
            tree = DecisionTreeClassifier()
            tree._feature = self._feature[start:end].copy()
            tree._threshold = self._threshold[start:end].copy()
            left = self._left[start:end]
            right = self._right[start:end]
            tree._left = np.where(left >= 0, left - start, -1)
            tree._right = np.where(right >= 0, right - start, -1)
            tree._proba = np.ascontiguousarray(
                self._proba[start:end][:, columns]
            )
            tree.classes_ = self._tree_classes[
                class_start:class_end
            ].copy()
            tree.n_features_ = self.n_features_
            trees.append(tree)
        return trees
