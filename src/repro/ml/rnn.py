"""Bidirectional recurrent network for per-position sequence labelling.

This powers the RNN-C baseline (Ghasemi-Gol et al.): each cell of a
line is embedded into a dense content vector, a bidirectional
recurrent layer propagates context along the line, and a softmax head
labels every position.  The original work uses pretrained cell
embeddings plus a recurrent architecture; our from-scratch variant
keeps the architecture (bidirectional recurrence over cell vectors,
trained end-to-end with Adam and BPTT) while the embeddings come from
:mod:`repro.baselines.embeddings`.

Everything is numpy: forward, full backpropagation-through-time, Adam,
and gradient clipping.  Sequences are padded and masked so one batch
is a single set of matrix multiplies per time step.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, NotFittedError
from repro.util.rng import as_generator


def _pad(sequences: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    n = len(sequences)
    t_max = max(len(s) for s in sequences)
    d = sequences[0].shape[1]
    X = np.zeros((n, t_max, d))
    mask = np.zeros((n, t_max), dtype=bool)
    for i, seq in enumerate(sequences):
        X[i, : len(seq)] = seq
        mask[i, : len(seq)] = True
    return X, mask


class _Adam:
    """Adam optimizer state over a dict of parameter arrays."""

    def __init__(self, params: dict[str, np.ndarray], lr: float):
        self.lr = lr
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(self, params: dict[str, np.ndarray],
             grads: dict[str, np.ndarray]) -> None:
        self.t += 1
        for key, grad in grads.items():
            self.m[key] = self.beta1 * self.m[key] + (1 - self.beta1) * grad
            self.v[key] = (
                self.beta2 * self.v[key] + (1 - self.beta2) * grad**2
            )
            m_hat = self.m[key] / (1 - self.beta1**self.t)
            v_hat = self.v[key] / (1 - self.beta2**self.t)
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class SequenceRNNClassifier:
    """Bidirectional Elman RNN with a per-position softmax head.

    Parameters
    ----------
    hidden_size:
        Width of each directional hidden state.
    epochs:
        Training passes over the data.
    learning_rate:
        Adam step size.
    batch_size:
        Sequences per parameter update.
    clip:
        Max gradient L2 norm (BPTT explodes without clipping).
    random_state:
        Seed for initialization and shuffling.
    """

    def __init__(
        self,
        hidden_size: int = 32,
        epochs: int = 15,
        learning_rate: float = 1e-2,
        batch_size: int = 32,
        clip: float = 5.0,
        random_state: int | np.random.Generator | None = None,
    ):
        if hidden_size < 1:
            raise InvalidParameterError("hidden_size must be >= 1")
        if epochs < 1:
            raise InvalidParameterError("epochs must be >= 1")
        self.hidden_size = hidden_size
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.clip = clip
        self.random_state = random_state
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._params: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _init_params(self, d: int, k: int,
                     rng: np.random.Generator) -> dict[str, np.ndarray]:
        h = self.hidden_size

        def glorot(rows: int, cols: int) -> np.ndarray:
            scale = np.sqrt(6.0 / (rows + cols))
            return rng.uniform(-scale, scale, size=(rows, cols))

        return {
            "Wx_f": glorot(d, h), "Wh_f": glorot(h, h), "b_f": np.zeros(h),
            "Wx_b": glorot(d, h), "Wh_b": glorot(h, h), "b_b": np.zeros(h),
            "Wo": glorot(2 * h, k), "bo": np.zeros(k),
        }

    # ------------------------------------------------------------------
    def fit(self, sequences: list[np.ndarray],
            labels: list[np.ndarray]) -> "SequenceRNNClassifier":
        """Train with BPTT + Adam on ``(T_i, d)`` sequences."""
        if not sequences:
            raise ValueError("cannot fit on zero sequences")
        sequences = [np.asarray(s, dtype=np.float64) for s in sequences]
        raw_labels = [np.asarray(l) for l in labels]
        self.classes_ = np.unique(np.concatenate(raw_labels))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        encoded = [
            np.array([class_index[c] for c in lab], dtype=np.int64)
            for lab in raw_labels
        ]
        self.n_features_ = sequences[0].shape[1]
        d, k = self.n_features_, len(self.classes_)

        rng = as_generator(self.random_state)
        params = self._init_params(d, k, rng)
        optimizer = _Adam(params, self.learning_rate)

        order = np.arange(len(sequences))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for start in range(0, len(order), self.batch_size):
                batch = order[start : start + self.batch_size]
                X, mask = _pad([sequences[i] for i in batch])
                y = np.zeros(mask.shape, dtype=np.int64)
                for row, i in enumerate(batch):
                    y[row, : len(encoded[i])] = encoded[i]
                grads = self._loss_and_grads(params, X, mask, y)[1]
                self._clip(grads)
                optimizer.step(params, grads)
        self._params = params
        return self

    def _clip(self, grads: dict[str, np.ndarray]) -> None:
        norm = np.sqrt(sum(float((g**2).sum()) for g in grads.values()))
        if norm > self.clip:
            scale = self.clip / norm
            for g in grads.values():
                g *= scale

    # ------------------------------------------------------------------
    def _forward(self, params: dict[str, np.ndarray], X: np.ndarray,
                 mask: np.ndarray):
        """Forward pass; returns hidden states and logits."""
        n, t_max, _ = X.shape
        h = self.hidden_size
        h_f = np.zeros((n, t_max, h))
        h_b = np.zeros((n, t_max, h))
        prev = np.zeros((n, h))
        for t in range(t_max):
            raw = X[:, t] @ params["Wx_f"] + prev @ params["Wh_f"] + params["b_f"]
            state = np.tanh(raw)
            state = np.where(mask[:, t][:, None], state, prev)
            h_f[:, t] = state
            prev = state
        prev = np.zeros((n, h))
        for t in range(t_max - 1, -1, -1):
            raw = X[:, t] @ params["Wx_b"] + prev @ params["Wh_b"] + params["b_b"]
            state = np.tanh(raw)
            state = np.where(mask[:, t][:, None], state, prev)
            h_b[:, t] = state
            prev = state
        concat = np.concatenate([h_f, h_b], axis=2)  # (N, T, 2H)
        logits = concat @ params["Wo"] + params["bo"]
        return h_f, h_b, concat, logits

    def _loss_and_grads(self, params, X, mask, y):
        n, t_max, _ = X.shape
        h = self.hidden_size
        h_f, h_b, concat, logits = self._forward(params, X, mask)

        shifted = logits - logits.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        proba = exp / exp.sum(axis=2, keepdims=True)
        count = max(int(mask.sum()), 1)

        rows, cols = np.nonzero(mask)
        log_p = np.log(proba[rows, cols, y[rows, cols]] + 1e-12)
        loss = -log_p.sum() / count

        dlogits = proba.copy()
        dlogits[rows, cols, y[rows, cols]] -= 1.0
        dlogits *= mask[:, :, None] / count

        grads = {key: np.zeros_like(value) for key, value in params.items()}
        grads["Wo"] = np.einsum("nth,ntk->hk", concat, dlogits)
        grads["bo"] = dlogits.sum(axis=(0, 1))
        dconcat = dlogits @ params["Wo"].T  # (N, T, 2H)
        dh_f = dconcat[:, :, :h]
        dh_b = dconcat[:, :, h:]

        # BPTT through the forward-direction chain.
        carry = np.zeros((n, h))
        for t in range(t_max - 1, -1, -1):
            dh = dh_f[:, t] + carry
            active = mask[:, t][:, None]
            dtanh = dh * (1.0 - h_f[:, t] ** 2) * active
            prev_state = h_f[:, t - 1] if t > 0 else np.zeros((n, h))
            grads["Wx_f"] += X[:, t].T @ dtanh
            grads["Wh_f"] += prev_state.T @ dtanh
            grads["b_f"] += dtanh.sum(axis=0)
            # Padded steps pass the hidden state through untouched.
            carry = dtanh @ params["Wh_f"].T + dh * (~mask[:, t])[:, None]

        # BPTT through the backward-direction chain.
        carry = np.zeros((n, h))
        for t in range(t_max):
            dh = dh_b[:, t] + carry
            active = mask[:, t][:, None]
            dtanh = dh * (1.0 - h_b[:, t] ** 2) * active
            prev_state = (
                h_b[:, t + 1] if t + 1 < t_max else np.zeros((n, h))
            )
            grads["Wx_b"] += X[:, t].T @ dtanh
            grads["Wh_b"] += prev_state.T @ dtanh
            grads["b_b"] += dtanh.sum(axis=0)
            carry = dtanh @ params["Wh_b"].T + dh * (~mask[:, t])[:, None]

        return loss, grads

    # ------------------------------------------------------------------
    def predict_proba(self, sequences: list[np.ndarray]) -> list[np.ndarray]:
        """Per-position class probabilities for each sequence."""
        if self._params is None:
            raise NotFittedError("SequenceRNNClassifier must be fitted first")
        out: list[np.ndarray] = []
        for seq in sequences:
            seq = np.asarray(seq, dtype=np.float64)
            X, mask = _pad([seq])
            logits = self._forward(self._params, X, mask)[3][0, : len(seq)]
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            out.append(exp / exp.sum(axis=1, keepdims=True))
        return out

    def predict(self, sequences: list[np.ndarray]) -> list[np.ndarray]:
        """Most probable class per position for each sequence."""
        return [
            self.classes_[np.argmax(proba, axis=1)]
            for proba in self.predict_proba(sequences)
        ]
