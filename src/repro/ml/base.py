"""Shared estimator plumbing: validation and the fitted-state contract."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, NotFittedError


def check_X_y(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a feature matrix / label vector pair.

    Ensures ``X`` is a 2-D float array, ``y`` a 1-D integer array, and
    that their first dimensions agree.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise InvalidParameterError(f"X must be 2-dimensional, got shape {X.shape}")
    if y.ndim != 1:
        raise InvalidParameterError(f"y must be 1-dimensional, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise InvalidParameterError(
            f"X has {X.shape[0]} samples but y has {y.shape[0]} labels"
        )
    if X.shape[0] == 0:
        raise InvalidParameterError("cannot fit an estimator on zero samples")
    return X, y.astype(np.int64)


def check_X(X: np.ndarray, n_features: int) -> np.ndarray:
    """Validate a prediction-time feature matrix against the fitted width."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise InvalidParameterError(f"X must be 2-dimensional, got shape {X.shape}")
    if X.shape[1] != n_features:
        raise InvalidParameterError(
            f"X has {X.shape[1]} features; estimator was fitted on "
            f"{n_features}"
        )
    return X


def check_fitted(estimator: object, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``attribute`` exists and is set."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} must be fitted before prediction"
        )


def classes_and_encoded(y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct classes in sorted order and ``y`` re-encoded to 0..K-1."""
    classes, encoded = np.unique(y, return_inverse=True)
    return classes, encoded
