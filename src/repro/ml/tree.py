"""CART decision tree classifier with Gini impurity.

This is the building block of the random forest backbone.  The
implementation favours numpy vectorization in the two hot paths:

* split finding — candidate thresholds for one feature are evaluated
  in a single vectorized pass over sorted values using cumulative
  class counts;
* prediction — the tree is stored in flat arrays and a whole batch of
  samples descends level-by-level with boolean masks instead of a
  Python loop per sample.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.base import check_fitted, check_X, check_X_y
from repro.util.rng import as_generator

_NO_FEATURE = -1


class DecisionTreeClassifier:
    """A CART classification tree.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until purity or the minimum
        sample constraints stop growth.
    min_samples_split:
        Smallest node size still considered for splitting.
    min_samples_leaf:
        Smallest allowed leaf size; splits violating it are discarded.
    max_features:
        Number of features examined per split.  ``None`` uses all;
        ``"sqrt"`` uses ``ceil(sqrt(n_features))`` — the random-forest
        default matching scikit-learn.
    random_state:
        Seed or generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        random_state: int | np.random.Generator | None = None,
    ):
        if min_samples_split < 2:
            raise InvalidParameterError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise InvalidParameterError("min_samples_leaf must be >= 1")
        if max_depth is not None and max_depth < 1:
            raise InvalidParameterError("max_depth must be >= 1 or None")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state

        # Fitted state (flat tree arrays).
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._feature: np.ndarray | None = None
        self._threshold: np.ndarray | None = None
        self._left: np.ndarray | None = None
        self._right: np.ndarray | None = None
        self._proba: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray,
            sample_weight: np.ndarray | None = None) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``.

        ``sample_weight`` supports the forest's bootstrap-by-weights
        optimization: integer weights are equivalent to sample
        repetition without materializing the resampled matrix.
        """
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = len(self.classes_)
        if sample_weight is None:
            sample_weight = np.ones(len(y), dtype=np.float64)
        else:
            sample_weight = np.asarray(sample_weight, dtype=np.float64)
            if sample_weight.shape != y.shape:
                raise InvalidParameterError(
                    "sample_weight must match y in length"
                )

        rng = as_generator(self.random_state)
        n_candidates = self._resolve_max_features(self.n_features_)

        features: list[int] = []
        thresholds: list[float] = []
        lefts: list[int] = []
        rights: list[int] = []
        probas: list[np.ndarray] = []

        # Pre-drop zero-weight samples (not part of this bootstrap).
        active = sample_weight > 0
        indices = np.nonzero(active)[0]

        def node_proba(idx: np.ndarray) -> np.ndarray:
            counts = np.bincount(
                encoded[idx], weights=sample_weight[idx], minlength=n_classes
            )
            total = counts.sum()
            return counts / total if total > 0 else np.full(
                n_classes, 1.0 / n_classes
            )

        def add_leaf(idx: np.ndarray) -> int:
            node = len(features)
            features.append(_NO_FEATURE)
            thresholds.append(0.0)
            lefts.append(-1)
            rights.append(-1)
            probas.append(node_proba(idx))
            return node

        # Iterative depth-first construction with an explicit stack, so
        # deep trees never hit the Python recursion limit.  Each stack
        # entry carries the slot (parent node, side) to patch with the
        # index of the node about to be created.
        stack: list[tuple[np.ndarray, int, int, int]] = [(indices, 0, -1, 0)]
        while stack:
            idx, depth, parent, side = stack.pop()
            weight_here = sample_weight[idx]
            labels_here = encoded[idx]
            total_weight = weight_here.sum()
            counts = np.bincount(
                labels_here, weights=weight_here, minlength=n_classes
            )
            pure = np.count_nonzero(counts) <= 1
            too_deep = self.max_depth is not None and depth >= self.max_depth
            too_small = total_weight < self.min_samples_split

            split = None
            if not (pure or too_deep or too_small or len(idx) < 2):
                split = self._best_split(
                    X, labels_here, weight_here, idx, counts, total_weight,
                    n_candidates, rng,
                )

            if split is None:
                node = add_leaf(idx)
            else:
                feature, threshold, left_mask = split
                node = len(features)
                features.append(feature)
                thresholds.append(threshold)
                lefts.append(-1)
                rights.append(-1)
                probas.append(node_proba(idx))
                # Push right first so the left subtree is built first,
                # preserving the depth-first order of the recursion.
                stack.append((idx[~left_mask], depth + 1, node, 1))
                stack.append((idx[left_mask], depth + 1, node, 0))

            if parent >= 0:
                if side == 0:
                    lefts[parent] = node
                else:
                    rights[parent] = node

        self._feature = np.asarray(features, dtype=np.int64)
        self._threshold = np.asarray(thresholds, dtype=np.float64)
        self._left = np.asarray(lefts, dtype=np.int64)
        self._right = np.asarray(rights, dtype=np.int64)
        self._proba = np.vstack(probas)
        return self

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.ceil(np.sqrt(n_features))))
        if isinstance(self.max_features, int) and self.max_features >= 1:
            return min(self.max_features, n_features)
        raise InvalidParameterError(
            f"invalid max_features: {self.max_features!r}"
        )

    def _best_split(
        self,
        X: np.ndarray,
        labels: np.ndarray,
        weights: np.ndarray,
        idx: np.ndarray,
        counts: np.ndarray,
        total_weight: float,
        n_candidates: int,
        rng: np.random.Generator,
    ) -> tuple[int, float, np.ndarray] | None:
        """Best ``(feature, threshold, left_mask)`` or ``None``.

        Evaluates the weighted Gini impurity of every distinct-value
        boundary for each candidate feature in one vectorized pass.
        """
        n_features = X.shape[1]
        if n_candidates >= n_features:
            candidates = np.arange(n_features)
        else:
            candidates = rng.choice(n_features, size=n_candidates,
                                    replace=False)

        best_score = np.inf
        best: tuple[int, float, np.ndarray] | None = None
        n_classes = len(counts)

        for feature in candidates:
            values = X[idx, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            sorted_labels = labels[order]
            sorted_weights = weights[order]

            # Cumulative per-class weight to the left of each boundary.
            one_hot = np.zeros((len(idx), n_classes), dtype=np.float64)
            one_hot[np.arange(len(idx)), sorted_labels] = sorted_weights
            left_counts = np.cumsum(one_hot, axis=0)[:-1]
            left_weight = np.cumsum(sorted_weights)[:-1]
            right_counts = counts[None, :] - left_counts
            right_weight = total_weight - left_weight

            # Only boundaries between distinct values are valid splits.
            valid = sorted_values[1:] != sorted_values[:-1]
            # Enforce min_samples_leaf by raw sample count on each side.
            positions = np.arange(1, len(idx))
            valid &= positions >= self.min_samples_leaf
            valid &= (len(idx) - positions) >= self.min_samples_leaf
            if not np.any(valid):
                continue

            with np.errstate(divide="ignore", invalid="ignore"):
                gini_left = 1.0 - np.sum(
                    (left_counts / left_weight[:, None]) ** 2, axis=1
                )
                gini_right = 1.0 - np.sum(
                    (right_counts / right_weight[:, None]) ** 2, axis=1
                )
            score = (
                left_weight * gini_left + right_weight * gini_right
            ) / total_weight
            score[~valid] = np.inf
            pos = int(np.argmin(score))
            if score[pos] < best_score:
                threshold = 0.5 * (sorted_values[pos] + sorted_values[pos + 1])
                left_mask = values <= threshold
                # Degenerate threshold from float averaging: skip.
                if not left_mask.any() or left_mask.all():
                    continue
                best_score = float(score[pos])
                best = (int(feature), float(threshold), left_mask)
        return best

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probability estimates (leaf class frequencies)."""
        check_fitted(self, "_proba")
        X = check_X(X, self.n_features_)
        node = np.zeros(X.shape[0], dtype=np.int64)
        while True:
            feature = self._feature[node]
            internal = feature != _NO_FEATURE
            if not internal.any():
                break
            rows = np.nonzero(internal)[0]
            f = feature[rows]
            go_left = X[rows, f] <= self._threshold[node[rows]]
            node[rows] = np.where(
                go_left, self._left[node[rows]], self._right[node[rows]]
            )
        return self._proba[node]

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-based (Gini) feature importances, summing to 1.

        Each internal node contributes its weighted impurity decrease
        to the feature it splits on; the vector is normalized.  The
        paper prefers *permutation* importance for its analysis (it
        does not favour high-cardinality features), but the impurity
        variant is the standard quick diagnostic and is exposed for
        parity with scikit-learn.
        """
        check_fitted(self, "_proba")
        importances = np.zeros(self.n_features_)
        weights = self._node_weights()
        for node in range(self.node_count):
            feature = self._feature[node]
            if feature == _NO_FEATURE:
                continue
            left, right = self._left[node], self._right[node]

            def gini(index: int) -> float:
                return 1.0 - float((self._proba[index] ** 2).sum())

            decrease = weights[node] * gini(node) - (
                weights[left] * gini(left) + weights[right] * gini(right)
            )
            importances[feature] += max(decrease, 0.0)
        total = importances.sum()
        if total > 0:
            importances /= total
        return importances

    def _node_weights(self) -> np.ndarray:
        """Fraction of training weight reaching each node.

        Reconstructed top-down from the stored class probabilities:
        the root holds weight 1; each child's share is inferred from
        the mixture identity p_parent = w_l * p_left + w_r * p_right,
        solved by least squares on the probability vectors.
        """
        weights = np.zeros(self.node_count)
        weights[0] = 1.0
        for node in range(self.node_count):
            left, right = self._left[node], self._right[node]
            if left < 0:
                continue
            p = self._proba[node]
            pl, pr = self._proba[left], self._proba[right]
            difference = pl - pr
            denominator = float(difference @ difference)
            if denominator > 0:
                share_left = float((p - pr) @ difference) / denominator
            else:
                share_left = 0.5
            share_left = min(max(share_left, 0.0), 1.0)
            weights[left] = weights[node] * share_left
            weights[right] = weights[node] * (1.0 - share_left)
        return weights

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        check_fitted(self, "_proba")
        return len(self._feature)

    @property
    def depth(self) -> int:
        """Depth of the fitted tree (a lone leaf has depth 0)."""
        check_fitted(self, "_proba")
        depths = np.zeros(self.node_count, dtype=np.int64)
        for node in range(self.node_count):
            for child in (self._left[node], self._right[node]):
                if child >= 0:
                    depths[child] = depths[node] + 1
        return int(depths.max())
