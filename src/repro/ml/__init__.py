"""A from-scratch machine-learning library on numpy/scipy.

The paper implements Strudel and its baselines on scikit-learn; that
library is not available in this environment, so this package provides
the equivalent estimators:

* :class:`~repro.ml.tree.DecisionTreeClassifier` — CART with Gini
  impurity.
* :class:`~repro.ml.forest.RandomForestClassifier` — bagged CART trees
  with sqrt-feature subsampling and probability voting (the paper's
  backbone, used with sklearn-like defaults).
* :class:`~repro.ml.naive_bayes.GaussianNaiveBayes`,
  :class:`~repro.ml.knn.KNeighborsClassifier`,
  :class:`~repro.ml.svm.LinearSVM` — the alternative classifiers the
  paper tested before settling on the random forest.
* :class:`~repro.ml.crf.LinearChainCRF` — the conditional random field
  behind the CRF-L baseline.
* :class:`~repro.ml.rnn.SequenceRNNClassifier` — the recurrent network
  behind the RNN-C baseline.

plus metrics, grouped/repeated cross-validation and permutation
feature importance.
"""

from repro.ml.compiled import CompiledForest
from repro.ml.crf import LinearChainCRF
from repro.ml.forest import RandomForestClassifier
from repro.ml.importance import permutation_importance
from repro.ml.knn import KNeighborsClassifier
from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_per_class,
    macro_f1,
)
from repro.ml.model_selection import GroupKFold, RepeatedGroupKFold
from repro.ml.naive_bayes import GaussianNaiveBayes
from repro.ml.preprocessing import LogarithmicBinner, MinMaxScaler
from repro.ml.rnn import SequenceRNNClassifier
from repro.ml.svm import LinearSVM
from repro.ml.tree import DecisionTreeClassifier

__all__ = [
    "CompiledForest",
    "DecisionTreeClassifier",
    "GaussianNaiveBayes",
    "GroupKFold",
    "KNeighborsClassifier",
    "LinearChainCRF",
    "LinearSVM",
    "LogarithmicBinner",
    "MinMaxScaler",
    "RandomForestClassifier",
    "RepeatedGroupKFold",
    "SequenceRNNClassifier",
    "accuracy_score",
    "confusion_matrix",
    "f1_per_class",
    "macro_f1",
    "permutation_importance",
]
