"""Gaussian Naive Bayes — one of the rejected backbone candidates.

The paper reports having "tested several classification algorithms for
Strudel, including Naïve Bayes, KNN, SVM, and random forest" before
settling on the forest; this estimator reproduces that comparison in
the classifier-choice ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import check_fitted, check_X, check_X_y


class GaussianNaiveBayes:
    """Naive Bayes with per-class Gaussian feature likelihoods.

    ``var_smoothing`` adds a fraction of the largest feature variance
    to every variance, keeping degenerate (constant) features from
    producing infinite log-likelihoods.
    """

    def __init__(self, var_smoothing: float = 1e-9):
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._theta: np.ndarray | None = None
        self._var: np.ndarray | None = None
        self._log_prior: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        """Estimate per-class feature means, variances and priors."""
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = len(self.classes_)

        theta = np.zeros((n_classes, X.shape[1]))
        var = np.zeros((n_classes, X.shape[1]))
        prior = np.zeros(n_classes)
        for k in range(n_classes):
            rows = X[encoded == k]
            theta[k] = rows.mean(axis=0)
            var[k] = rows.var(axis=0)
            prior[k] = len(rows) / len(X)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        self._theta = theta
        self._var = var + epsilon
        self._log_prior = np.log(prior)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_likelihood = -0.5 * (
            np.log(2.0 * np.pi * self._var[None, :, :])
            + (X[:, None, :] - self._theta[None, :, :]) ** 2
            / self._var[None, :, :]
        ).sum(axis=2)
        return log_likelihood + self._log_prior[None, :]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Posterior class probabilities."""
        check_fitted(self, "_theta")
        X = check_X(X, self.n_features_)
        joint = self._joint_log_likelihood(X)
        joint -= joint.max(axis=1, keepdims=True)
        proba = np.exp(joint)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Maximum-a-posteriori class per sample."""
        check_fitted(self, "_theta")
        X = check_X(X, self.n_features_)
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]
