"""Grouped and repeated cross-validation.

The paper evaluates with 10-fold cross-validation where "all elements
from a single file appear in either the training or the test set", and
repeats the whole procedure ten times to reduce fold-split bias.  The
splitters here operate on *group* labels (file names), not on element
indices, so that guarantee holds by construction.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import InvalidParameterError
from repro.obs import get_metrics
from repro.perf.cache import FeatureCache
from repro.util.rng import as_generator


@runtime_checkable
class SupportsFeatureCache(Protocol):
    """An estimator that can reuse a corpus-level feature cache.

    Repeated grouped CV refits a fresh model per fold, but the per-file
    feature matrices it extracts depend only on the file contents and
    the extractor configuration — attaching one shared
    :class:`~repro.perf.cache.FeatureCache` across folds makes every
    extraction after the first a lookup (the Strudel classifiers
    implement this protocol).
    """

    def set_feature_cache(self, cache: FeatureCache | None) -> None: ...


def attach_feature_cache(model: object, cache: FeatureCache) -> bool:
    """Attach ``cache`` to ``model`` if it supports feature caching.

    Returns whether the model accepted the cache; estimators without
    per-file feature extraction (CRF-L, Pytheas-L, RNN-C, …) are left
    untouched so the evaluation runners stay algorithm-agnostic.
    """
    if isinstance(model, SupportsFeatureCache):
        model.set_feature_cache(cache)
        get_metrics().increment("cv.feature_cache_attached")
        return True
    return False


class GroupKFold:
    """K-fold splitter over distinct groups.

    Groups are shuffled with the provided seed and dealt round-robin
    into ``n_splits`` folds, so folds are balanced in group count.
    Yields ``(train_groups, test_groups)`` sets.
    """

    def __init__(self, n_splits: int = 10,
                 random_state: int | np.random.Generator | None = None):
        if n_splits < 2:
            raise InvalidParameterError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(
        self, groups: Sequence[Hashable]
    ) -> Iterator[tuple[set[Hashable], set[Hashable]]]:
        """Yield ``(train, test)`` group-name sets for each fold."""
        unique = sorted(set(groups), key=str)
        if len(unique) < self.n_splits:
            raise InvalidParameterError(
                f"{len(unique)} groups cannot fill {self.n_splits} folds"
            )
        rng = as_generator(self.random_state)
        order = list(unique)
        rng.shuffle(order)
        folds: list[list[Hashable]] = [[] for _ in range(self.n_splits)]
        for i, group in enumerate(order):
            folds[i % self.n_splits].append(group)
        for i in range(self.n_splits):
            test = set(folds[i])
            train = set(order) - test
            yield train, test


class RepeatedGroupKFold:
    """``n_repeats`` independent :class:`GroupKFold` passes.

    Each repetition reshuffles the groups with a fresh child seed, so
    the union of folds differs between repetitions while remaining
    reproducible from the top-level seed.
    """

    def __init__(
        self,
        n_splits: int = 10,
        n_repeats: int = 10,
        random_state: int | np.random.Generator | None = None,
    ):
        if n_repeats < 1:
            raise InvalidParameterError("n_repeats must be >= 1")
        self.n_splits = n_splits
        self.n_repeats = n_repeats
        self.random_state = random_state

    def split(
        self, groups: Sequence[Hashable]
    ) -> Iterator[tuple[int, set[Hashable], set[Hashable]]]:
        """Yield ``(repetition, train, test)`` triples."""
        rng = as_generator(self.random_state)
        for repetition in range(self.n_repeats):
            seed = int(rng.integers(0, 2**63 - 1))
            fold = GroupKFold(n_splits=self.n_splits, random_state=seed)
            for train, test in fold.split(groups):
                yield repetition, train, test


def train_test_group_split(
    groups: Sequence[Hashable],
    test_fraction: float = 0.2,
    random_state: int | np.random.Generator | None = None,
) -> tuple[set[Hashable], set[Hashable]]:
    """Single random split of groups into train and test sets."""
    if not 0.0 < test_fraction < 1.0:
        raise InvalidParameterError("test_fraction must be in (0, 1)")
    unique = sorted(set(groups), key=str)
    if len(unique) < 2:
        raise InvalidParameterError("need at least two groups to split")
    rng = as_generator(random_state)
    order = list(unique)
    rng.shuffle(order)
    n_test = max(1, int(round(len(order) * test_fraction)))
    n_test = min(n_test, len(order) - 1)
    return set(order[n_test:]), set(order[:n_test])
