"""Permutation feature importance.

Section 6.3.5 of the paper uses permutation importance — chosen because
"it does not favor high cardinality features" — on one-vs-rest models
to measure per-class feature influence.  This module implements the
generic primitive; the one-vs-rest orchestration lives in
:mod:`repro.eval.experiments`.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.metrics import accuracy_score
from repro.util.rng import as_generator


class _Predictor(Protocol):
    def predict(self, X: np.ndarray) -> np.ndarray: ...


def permutation_importance(
    model: _Predictor,
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    scorer: Callable[[Sequence, Sequence], float] = accuracy_score,
    random_state: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Mean score drop when each feature column is shuffled.

    For every feature, the column is permuted ``n_repeats`` times (the
    paper repeats five times and averages) and the drop relative to the
    baseline score is averaged.  Returns an array of length
    ``n_features``; larger values mean the model leans harder on that
    feature.
    """
    if n_repeats < 1:
        raise InvalidParameterError("n_repeats must be >= 1")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    rng = as_generator(random_state)

    baseline = scorer(y, model.predict(X))
    n_features = X.shape[1]
    importances = np.zeros(n_features)
    for feature in range(n_features):
        drops = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, feature] = rng.permutation(shuffled[:, feature])
            drops.append(baseline - scorer(y, model.predict(shuffled)))
        importances[feature] = float(np.mean(drops))
    return importances


def normalize_importances(importances: np.ndarray) -> np.ndarray:
    """Clamp negatives to zero and scale to sum 1 (for stacked bars).

    Figure 4 presents importances as 100% stacked bars; negative drops
    (noise) are treated as zero influence.  An all-zero vector maps to
    the uniform distribution so the bar is still drawable.
    """
    clipped = np.clip(importances, 0.0, None)
    total = clipped.sum()
    if total == 0:
        return np.full_like(clipped, 1.0 / len(clipped))
    return clipped / total
