"""Linear SVM trained by SGD on the hinge loss, one-vs-rest.

Completes the backbone comparison (Naive Bayes / kNN / SVM / random
forest) from Section 6.1.2.  ``predict_proba`` returns a softmax over
the decision margins so the estimator can slot into the same
probability-consuming pipeline as the forest.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.base import check_fitted, check_X, check_X_y
from repro.util.rng import as_generator


class LinearSVM:
    """One-vs-rest linear SVM with L2 regularization.

    Parameters
    ----------
    alpha:
        L2 regularization strength.
    epochs:
        Passes over the training data.
    learning_rate:
        Base step size; decays as ``lr / (1 + t * alpha)``.
    random_state:
        Seed for shuffling between epochs.
    """

    def __init__(
        self,
        alpha: float = 1e-4,
        epochs: int = 20,
        learning_rate: float = 0.1,
        random_state: int | np.random.Generator | None = None,
    ):
        if epochs < 1:
            raise InvalidParameterError("epochs must be >= 1")
        if alpha < 0:
            raise InvalidParameterError("alpha must be non-negative")
        self.alpha = alpha
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.random_state = random_state
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._weights: np.ndarray | None = None
        self._bias: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        """Train one binary hinge-loss classifier per class."""
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        n_classes = len(self.classes_)
        n, d = X.shape

        rng = as_generator(self.random_state)
        weights = np.zeros((n_classes, d))
        bias = np.zeros(n_classes)
        targets = np.where(
            encoded[:, None] == np.arange(n_classes)[None, :], 1.0, -1.0
        )

        step_count = 0
        for _ in range(self.epochs):
            order = rng.permutation(n)
            # Mini-batches keep the update vectorized across classes.
            for start in range(0, n, 256):
                batch = order[start : start + 256]
                xb = X[batch]
                tb = targets[batch]
                step_count += 1
                lr = self.learning_rate / (1.0 + step_count * self.alpha)
                margins = tb * (xb @ weights.T + bias[None, :])
                violating = (margins < 1.0).astype(np.float64)
                grad_w = (
                    -((violating * tb).T @ xb) / len(batch)
                    + self.alpha * weights
                )
                grad_b = -(violating * tb).mean(axis=0)
                weights -= lr * grad_w
                bias -= lr * grad_b

        self._weights = weights
        self._bias = bias
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw per-class margins."""
        check_fitted(self, "_weights")
        X = check_X(X, self.n_features_)
        return X @ self._weights.T + self._bias[None, :]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax over decision margins (a calibration convenience)."""
        scores = self.decision_function(X)
        scores -= scores.max(axis=1, keepdims=True)
        proba = np.exp(scores)
        proba /= proba.sum(axis=1, keepdims=True)
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Class with the largest margin."""
        scores = self.decision_function(X)
        return self.classes_[np.argmax(scores, axis=1)]
