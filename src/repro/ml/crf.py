"""Linear-chain conditional random field for sequence labelling.

The CRF-L baseline (Adelfio & Samet) labels the *sequence of lines* of
a file jointly, exploiting the top-to-bottom organization the paper
highlights (metadata, then header, then data, then notes).  This module
provides the general-purpose model:

* log-linear emission potentials over dense, real-valued per-position
  feature vectors;
* learned start and transition potentials;
* exact maximum-likelihood training with L-BFGS (scipy) on the
  conditional log-likelihood, with L2 regularization;
* exact Viterbi decoding.

Forward-backward and the gradient are computed *batched over
sequences* (padded to the longest sequence with masking), so training
cost is a handful of numpy kernels per L-BFGS iteration rather than a
Python loop per line.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp

from repro.errors import InvalidParameterError, NotFittedError


def _pad_sequences(
    sequences: list[np.ndarray], labels: list[np.ndarray] | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Pad variable-length sequences into ``(N, T, d)`` plus a mask."""
    n = len(sequences)
    t_max = max(len(s) for s in sequences)
    d = sequences[0].shape[1]
    X = np.zeros((n, t_max, d), dtype=np.float64)
    mask = np.zeros((n, t_max), dtype=bool)
    y = np.zeros((n, t_max), dtype=np.int64) if labels is not None else None
    for i, seq in enumerate(sequences):
        length = len(seq)
        X[i, :length] = seq
        mask[i, :length] = True
        if labels is not None:
            y[i, :length] = labels[i]
    return X, mask, y


class LinearChainCRF:
    """A first-order linear-chain CRF with dense emission features.

    Parameters
    ----------
    l2:
        L2 regularization weight on all parameters.
    max_iter:
        L-BFGS iteration budget.
    tol:
        L-BFGS convergence tolerance.
    """

    def __init__(self, l2: float = 1e-2, max_iter: int = 100,
                 tol: float = 1e-5):
        if l2 < 0:
            raise InvalidParameterError("l2 must be non-negative")
        if max_iter < 1:
            raise InvalidParameterError("max_iter must be >= 1")
        self.l2 = l2
        self.max_iter = max_iter
        self.tol = tol

        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._W: np.ndarray | None = None  # (K, d) emission weights
        self._b: np.ndarray | None = None  # (K,) emission bias
        self._start: np.ndarray | None = None  # (K,)
        self._trans: np.ndarray | None = None  # (K, K)

    # ------------------------------------------------------------------
    # Parameter (un)flattening
    # ------------------------------------------------------------------
    def _unpack(self, theta: np.ndarray, k: int, d: int):
        offset = 0
        W = theta[offset : offset + k * d].reshape(k, d)
        offset += k * d
        b = theta[offset : offset + k]
        offset += k
        start = theta[offset : offset + k]
        offset += k
        trans = theta[offset : offset + k * k].reshape(k, k)
        return W, b, start, trans

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def fit(
        self,
        sequences: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> "LinearChainCRF":
        """Fit on a list of ``(T_i, d)`` feature arrays and label arrays."""
        if not sequences:
            raise ValueError("cannot fit a CRF on zero sequences")
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels differ in length")
        sequences = [np.asarray(s, dtype=np.float64) for s in sequences]
        raw_labels = [np.asarray(l) for l in labels]
        for seq, lab in zip(sequences, raw_labels):
            if len(seq) != len(lab):
                raise ValueError("sequence/label length mismatch")
            if len(seq) == 0:
                raise ValueError("empty sequence")

        self.classes_ = np.unique(np.concatenate(raw_labels))
        class_index = {c: i for i, c in enumerate(self.classes_)}
        encoded = [
            np.array([class_index[c] for c in lab], dtype=np.int64)
            for lab in raw_labels
        ]
        self.n_features_ = sequences[0].shape[1]
        k, d = len(self.classes_), self.n_features_

        X, mask, y = _pad_sequences(sequences, encoded)
        lengths = mask.sum(axis=1)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            W, b, start, trans = self._unpack(theta, k, d)
            nll, grads = self._nll_and_grads(X, mask, y, lengths, W, b,
                                             start, trans)
            gW, gb, gstart, gtrans = grads
            nll += 0.5 * self.l2 * float(theta @ theta)
            grad = np.concatenate(
                [gW.ravel(), gb, gstart, gtrans.ravel()]
            ) + self.l2 * theta
            return nll, grad

        theta0 = np.zeros(k * d + k + k + k * k)
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "ftol": self.tol},
        )
        W, b, start, trans = self._unpack(result.x, k, d)
        self._W, self._b, self._start, self._trans = W, b, start, trans
        return self

    def _nll_and_grads(self, X, mask, y, lengths, W, b, start, trans):
        """Negative log-likelihood and gradients, batched over sequences."""
        n, t_max, d = X.shape
        k = W.shape[0]
        emissions = X @ W.T + b[None, None, :]  # (N, T, K)

        # ---------------- forward ----------------
        alphas = np.empty((n, t_max, k))
        alphas[:, 0] = start[None, :] + emissions[:, 0]
        for t in range(1, t_max):
            candidate = (
                logsumexp(
                    alphas[:, t - 1][:, :, None] + trans[None, :, :], axis=1
                )
                + emissions[:, t]
            )
            # Padded steps carry the previous alpha forward unchanged.
            alphas[:, t] = np.where(mask[:, t][:, None], candidate,
                                    alphas[:, t - 1])
        log_z = logsumexp(alphas[np.arange(n), lengths - 1], axis=1)  # (N,)

        # ---------------- backward ----------------
        betas = np.zeros((n, t_max, k))
        # beta at each sequence's final step is 0; we fill right-to-left.
        for t in range(t_max - 2, -1, -1):
            candidate = logsumexp(
                trans[None, :, :]
                + (emissions[:, t + 1] + betas[:, t + 1])[:, None, :],
                axis=2,
            )
            # Only positions with a real successor update; the final
            # position of each sequence keeps beta = 0.
            has_successor = mask[:, t + 1]
            betas[:, t] = np.where(has_successor[:, None], candidate,
                                   betas[:, t])

        # ---------------- marginals ----------------
        log_marginal = alphas + betas - log_z[:, None, None]
        marginal = np.exp(log_marginal) * mask[:, :, None]  # (N, T, K)

        # Pairwise marginals xi[t] for transitions t-1 -> t.
        pair_mask = mask[:, 1:] & mask[:, :-1]  # (N, T-1)
        if t_max > 1:
            log_xi = (
                alphas[:, :-1, :, None]
                + trans[None, None, :, :]
                + (emissions[:, 1:] + betas[:, 1:])[:, :, None, :]
                - log_z[:, None, None, None]
            )
            xi = np.exp(log_xi) * pair_mask[:, :, None, None]
        else:
            xi = np.zeros((n, 0, k, k))

        # ---------------- empirical counts ----------------
        one_hot = np.zeros((n, t_max, k))
        flat_idx = np.nonzero(mask)
        one_hot[flat_idx[0], flat_idx[1], y[flat_idx]] = 1.0

        # Log-likelihood of the gold paths.
        gold_emission = (emissions * one_hot).sum(axis=(1, 2))
        gold_start = start[y[:, 0]]
        if t_max > 1:
            gold_trans = (
                trans[y[:, :-1], y[:, 1:]] * pair_mask
            ).sum(axis=1)
        else:
            gold_trans = np.zeros(n)
        log_likelihood = (gold_emission + gold_start + gold_trans
                          - log_z).sum()

        # ---------------- gradients (expected - empirical) ----------------
        delta = marginal - one_hot  # (N, T, K)
        gW = np.einsum("ntk,ntd->kd", delta, X)
        gb = delta.sum(axis=(0, 1))
        gstart = marginal[:, 0].sum(axis=0) - one_hot[:, 0].sum(axis=0)
        if t_max > 1:
            emp_trans = np.zeros((k, k))
            np.add.at(
                emp_trans,
                (y[:, :-1][pair_mask], y[:, 1:][pair_mask]),
                1.0,
            )
            gtrans = xi.sum(axis=(0, 1)) - emp_trans
        else:
            gtrans = np.zeros((k, k))

        return -log_likelihood, (gW, gb, gstart, gtrans)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def _require_fitted(self) -> None:
        if self._W is None:
            raise NotFittedError("LinearChainCRF must be fitted first")

    def predict(self, sequences: list[np.ndarray]) -> list[np.ndarray]:
        """Viterbi decoding: the most probable label path per sequence."""
        self._require_fitted()
        return [self._viterbi(np.asarray(s, dtype=np.float64))
                for s in sequences]

    def _viterbi(self, seq: np.ndarray) -> np.ndarray:
        emissions = seq @ self._W.T + self._b[None, :]  # (T, K)
        t_len, k = emissions.shape
        score = self._start + emissions[0]
        backpointers = np.zeros((t_len, k), dtype=np.int64)
        for t in range(1, t_len):
            candidate = score[:, None] + self._trans
            backpointers[t] = np.argmax(candidate, axis=0)
            score = candidate[backpointers[t], np.arange(k)] + emissions[t]
        path = np.zeros(t_len, dtype=np.int64)
        path[-1] = int(np.argmax(score))
        for t in range(t_len - 1, 0, -1):
            path[t - 1] = backpointers[t, path[t]]
        return self.classes_[path]

    def predict_marginals(self, sequences: list[np.ndarray]) -> list[np.ndarray]:
        """Per-position posterior marginals ``P(y_t = k | x)``."""
        self._require_fitted()
        out: list[np.ndarray] = []
        for seq in sequences:
            seq = np.asarray(seq, dtype=np.float64)
            X, mask, _ = _pad_sequences([seq], None)
            lengths = mask.sum(axis=1)
            emissions = X @ self._W.T + self._b[None, None, :]
            n, t_max, k = emissions.shape
            alphas = np.empty((n, t_max, k))
            alphas[:, 0] = self._start[None, :] + emissions[:, 0]
            for t in range(1, t_max):
                alphas[:, t] = (
                    logsumexp(
                        alphas[:, t - 1][:, :, None] + self._trans[None],
                        axis=1,
                    )
                    + emissions[:, t]
                )
            log_z = logsumexp(alphas[0, lengths[0] - 1])
            betas = np.zeros((n, t_max, k))
            for t in range(t_max - 2, -1, -1):
                betas[:, t] = logsumexp(
                    self._trans[None]
                    + (emissions[:, t + 1] + betas[:, t + 1])[:, None, :],
                    axis=2,
                )
            marginal = np.exp(alphas[0] + betas[0] - log_z)
            marginal /= marginal.sum(axis=1, keepdims=True)
            out.append(marginal)
        return out
