"""k-nearest-neighbours classifier (brute force, Euclidean).

Part of the classifier-choice ablation (Section 6.1.2 of the paper).
Distance computation is blocked so memory stays bounded on large
feature matrices.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.base import check_fitted, check_X, check_X_y


class KNeighborsClassifier:
    """Majority vote among the ``n_neighbors`` closest training samples."""

    def __init__(self, n_neighbors: int = 5, block_size: int = 1024):
        if n_neighbors < 1:
            raise InvalidParameterError("n_neighbors must be >= 1")
        if block_size < 1:
            raise InvalidParameterError("block_size must be >= 1")
        self.n_neighbors = n_neighbors
        self.block_size = block_size
        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNeighborsClassifier":
        """Memorize the training set."""
        X, y = check_X_y(X, y)
        self.classes_, encoded = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self._X = X
        self._y = encoded
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Neighbourhood class frequencies per query sample."""
        check_fitted(self, "_X")
        X = check_X(X, self.n_features_)
        k = min(self.n_neighbors, len(self._X))
        n_classes = len(self.classes_)
        proba = np.zeros((X.shape[0], n_classes))
        train_sq = np.einsum("ij,ij->i", self._X, self._X)
        for start in range(0, X.shape[0], self.block_size):
            block = X[start : start + self.block_size]
            distances = (
                train_sq[None, :]
                - 2.0 * block @ self._X.T
                + np.einsum("ij,ij->i", block, block)[:, None]
            )
            neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            votes = self._y[neighbour_idx]
            for row, vote_row in enumerate(votes):
                counts = np.bincount(vote_row, minlength=n_classes)
                proba[start + row] = counts / k
        return proba

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority class among the nearest neighbours."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]
