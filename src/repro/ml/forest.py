"""Random forest classifier — the Strudel backbone.

Bagged CART trees with sqrt-feature subsampling and probability
averaging.  Defaults mirror scikit-learn's
``RandomForestClassifier`` (100 trees, Gini, bootstrap, sqrt
features), which is what the paper means by "the default settings in
the scikit-learn library".

Bootstrapping is implemented through integer sample weights
(multinomial draw) instead of materializing resampled matrices, which
keeps fitting memory-flat for wide cell-feature matrices.

Tree fitting is embarrassingly parallel: every tree draws its
bootstrap and its feature subsamples from an independent child stream
derived up front via :func:`repro.util.rng.spawn`, so ``n_jobs > 1``
fans the fit out over a pool while producing byte-identical trees,
predictions and importances — the streams, the per-tree work, and the
order in which results are folded back (tree index order) are all
independent of the schedule.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.errors import InvalidParameterError
from repro.ml.base import check_fitted, check_X, check_X_y
from repro.ml.compiled import CompiledForest
from repro.ml.tree import DecisionTreeClassifier
from repro.perf.parallel import effective_jobs, parallel_map
from repro.util.rng import as_generator, spawn


def _bootstrap_weights(
    stream: np.random.Generator, n: int, bootstrap: bool
) -> np.ndarray:
    """Per-sample integer weights for one tree's training view."""
    if not bootstrap:
        return np.ones(n, dtype=np.float64)
    # Multinomial counts are distributed exactly like the histogram
    # of n draws with replacement.
    weights = stream.multinomial(n, np.full(n, 1.0 / n)).astype(
        np.float64
    )
    if not weights.any():  # pragma: no cover - probability 0
        weights = np.ones(n)
    return weights


def _fit_tree_batch(
    X: np.ndarray,
    y: np.ndarray,
    tree_params: dict,
    bootstrap: bool,
    batch: list[tuple[int, np.random.Generator]],
) -> list[tuple[int, DecisionTreeClassifier, np.ndarray]]:
    """Fit one batch of ``(index, stream)`` trees.

    Module-level so a process pool can ship it; each stream is an
    independent child generator, so batching is purely a transport
    optimization (fewer pickles of ``X``/``y``) with no effect on the
    fitted trees.
    """
    fitted: list[tuple[int, DecisionTreeClassifier, np.ndarray]] = []
    for index, stream in batch:
        weights = _bootstrap_weights(stream, X.shape[0], bootstrap)
        tree = DecisionTreeClassifier(
            random_state=stream, **tree_params
        )
        tree.fit(X, y, sample_weight=weights)
        fitted.append((index, tree, weights))
    return fitted


class RandomForestClassifier:
    """An ensemble of CART trees trained on bootstrap samples.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed through to every tree.
    max_features:
        Features considered per split; default ``"sqrt"``.
    bootstrap:
        Whether each tree sees a bootstrap resample of the data.
    random_state:
        Seed for reproducible bootstraps and feature subsampling.
    n_jobs:
        Worker count for tree fitting (``None``/``1`` sequential,
        ``0``/negative for all cores).  Any value produces
        byte-identical forests for a fixed seed.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        bootstrap: bool = True,
        oob_score: bool = False,
        random_state: int | np.random.Generator | None = None,
        n_jobs: int | None = 1,
    ):
        if n_estimators < 1:
            raise InvalidParameterError("n_estimators must be >= 1")
        if oob_score and not bootstrap:
            raise InvalidParameterError(
                "oob_score requires bootstrap sampling"
            )
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.oob_score = oob_score
        self.random_state = random_state
        self.n_jobs = n_jobs

        self.classes_: np.ndarray | None = None
        self.n_features_: int | None = None
        self.estimators_: list[DecisionTreeClassifier] | None = None
        self.oob_score_: float | None = None
        self.oob_decision_function_: np.ndarray | None = None
        # Derived, memoized per fit: the packed inference tensors and
        # the per-tree global-class column arrays (alignment computed
        # once instead of per predict_proba call).
        self._compiled: CompiledForest | None = None
        self._tree_columns: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _fit_all_trees(
        self, X: np.ndarray, y: np.ndarray
    ) -> list[tuple[int, DecisionTreeClassifier, np.ndarray]]:
        """All ``(index, tree, weights)`` triples, in tree-index order.

        The per-tree streams are derived identically whatever the
        worker count; parallel batches are re-sorted on index so every
        downstream fold (OOB votes, importances) sees the sequential
        order.
        """
        rng = as_generator(self.random_state)
        streams = spawn(rng, self.n_estimators)
        indexed = list(enumerate(streams))
        tree_params = {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
        }
        jobs = effective_jobs(self.n_jobs, self.n_estimators)
        if jobs <= 1:
            return _fit_tree_batch(
                X, y, tree_params, self.bootstrap, indexed
            )
        # Contiguous batches, one per worker, amortize shipping X/y.
        bounds = np.linspace(0, len(indexed), jobs + 1).astype(int)
        batches = [
            indexed[bounds[k]:bounds[k + 1]]
            for k in range(jobs)
            if bounds[k] < bounds[k + 1]
        ]
        worker = partial(
            _fit_tree_batch, X, y, tree_params, self.bootstrap
        )
        results = parallel_map(
            worker, batches, n_jobs=jobs, prefer="processes"
        )
        flat = [triple for batch in results for triple in batch]
        flat.sort(key=lambda triple: triple[0])
        return flat

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap resamples of ``(X, y)``."""
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self.n_features_ = X.shape[1]

        n = X.shape[0]
        n_classes = len(self.classes_)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        oob_votes = (
            np.zeros((n, n_classes)) if self.oob_score else None
        )
        fitted = self._fit_all_trees(X, y)
        self.estimators_ = [tree for _, tree, _ in fitted]
        self._compiled = None
        self._tree_columns = [
            np.array(
                [class_index[c] for c in tree.classes_], dtype=np.intp
            )
            for tree in self.estimators_
        ]
        if oob_votes is not None:
            for index, tree, weights in fitted:
                held_out = weights == 0
                if held_out.any():
                    proba = tree.predict_proba(X[held_out])
                    columns = self._tree_columns[index]
                    oob_votes[np.ix_(held_out, columns)] += proba

        if oob_votes is not None:
            voted = oob_votes.sum(axis=1) > 0
            decision = np.full((n, n_classes), np.nan)
            decision[voted] = (
                oob_votes[voted] / oob_votes[voted].sum(axis=1,
                                                        keepdims=True)
            )
            self.oob_decision_function_ = decision
            if voted.any():
                predictions = self.classes_[
                    np.argmax(oob_votes[voted], axis=1)
                ]
                self.oob_score_ = float(
                    (predictions == y[voted]).mean()
                )
            else:  # pragma: no cover - needs degenerate bootstrap
                self.oob_score_ = 0.0
        return self

    # ------------------------------------------------------------------
    def _aligned_columns(self) -> list[np.ndarray]:
        """Per-tree global-class column arrays, computed once.

        ``fit`` and the persistence loader populate these eagerly;
        the lazy branch covers forests assembled by hand (tests,
        decompiled bundles).
        """
        if self._tree_columns is None:
            class_index = {c: i for i, c in enumerate(self.classes_)}
            self._tree_columns = [
                np.array(
                    [class_index[c] for c in tree.classes_],
                    dtype=np.intp,
                )
                for tree in self.estimators_
            ]
        return self._tree_columns

    def compile(self) -> CompiledForest:
        """The forest packed into flat inference tensors, memoized.

        Compilation happens at most once per fit/load; ``fit``
        invalidates the cache.
        """
        check_fitted(self, "estimators_")
        if self._compiled is None:
            self._compiled = CompiledForest.from_forest(self)
        return self._compiled

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average of the per-tree class probability estimates.

        Probabilities are aligned onto the forest's global class order
        even when an individual bootstrap missed a rare class.
        Delegates to the compiled tensors (one traversal over the
        whole ``samples x trees`` frontier); output is byte-identical
        to :meth:`legacy_predict_proba`, which the parity suite pins.
        """
        check_fitted(self, "estimators_")
        return self.compile().predict_proba(X)

    def legacy_predict_proba(self, X: np.ndarray) -> np.ndarray:
        """The per-tree Python-loop prediction path.

        Kept as the parity reference for the compiled traversal: one
        batched descent per tree, aligned onto the global class order
        through the precomputed column arrays and accumulated in tree
        order.
        """
        check_fitted(self, "estimators_")
        X = check_X(X, self.n_features_)
        total = np.zeros(
            (X.shape[0], len(self.classes_)), dtype=np.float64
        )
        for tree, columns in zip(
            self.estimators_, self._aligned_columns()
        ):
            total[:, columns] += tree.predict_proba(X)
        total /= len(self.estimators_)
        return total

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per sample under the averaged vote."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean impurity-based importance across the trees."""
        check_fitted(self, "estimators_")
        stacked = np.vstack(
            [tree.feature_importances_ for tree in self.estimators_]
        )
        return stacked.mean(axis=0)
