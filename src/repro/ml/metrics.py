"""Classification metrics used throughout the evaluation.

The paper reports per-class F1, accuracy and the macro-average F1
("which does not weigh the average score with the support of
individual classes"), plus confusion matrices normalized by the number
of instances per actual class.  These functions implement exactly
those quantities.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.errors import InvalidParameterError


def _align(y_true: Sequence, y_pred: Sequence) -> tuple[list, list]:
    y_true = list(y_true)
    y_pred = list(y_pred)
    if len(y_true) != len(y_pred):
        raise InvalidParameterError(
            f"y_true has {len(y_true)} items, y_pred has {len(y_pred)}"
        )
    return y_true, y_pred


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _align(y_true, y_pred)
    if not y_true:
        return 0.0
    hits = sum(1 for t, p in zip(y_true, y_pred) if t == p)
    return hits / len(y_true)


def f1_per_class(
    y_true: Sequence,
    y_pred: Sequence,
    labels: Sequence[Hashable] | None = None,
) -> dict[Hashable, float]:
    """Per-class F1 scores.

    ``labels`` fixes the classes reported (and their order); by default
    every class present in either vector is included.  A class with no
    true and no predicted instances scores 0.0, following the common
    "zero division → 0" convention.
    """
    y_true, y_pred = _align(y_true, y_pred)
    if labels is None:
        labels = sorted(set(y_true) | set(y_pred), key=str)
    scores: dict[Hashable, float] = {}
    for label in labels:
        tp = sum(1 for t, p in zip(y_true, y_pred) if t == label and p == label)
        fp = sum(1 for t, p in zip(y_true, y_pred) if t != label and p == label)
        fn = sum(1 for t, p in zip(y_true, y_pred) if t == label and p != label)
        denominator = 2 * tp + fp + fn
        scores[label] = (2 * tp / denominator) if denominator else 0.0
    return scores


def macro_f1(
    y_true: Sequence,
    y_pred: Sequence,
    labels: Sequence[Hashable] | None = None,
) -> float:
    """Unweighted mean of the per-class F1 scores."""
    scores = f1_per_class(y_true, y_pred, labels=labels)
    if not scores:
        return 0.0
    return sum(scores.values()) / len(scores)


def confusion_matrix(
    y_true: Sequence,
    y_pred: Sequence,
    labels: Sequence[Hashable],
    normalize: bool = False,
) -> np.ndarray:
    """Confusion matrix ``M[i, j]`` = count of true ``labels[i]``
    predicted as ``labels[j]``.

    With ``normalize=True`` each row is divided by the number of true
    instances of its class (rows of absent classes stay all-zero),
    matching Figure 3 of the paper.
    """
    y_true, y_pred = _align(y_true, y_pred)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.float64)
    for t, p in zip(y_true, y_pred):
        if t in index and p in index:
            matrix[index[t], index[p]] += 1.0
    if normalize:
        row_sums = matrix.sum(axis=1, keepdims=True)
        with np.errstate(invalid="ignore", divide="ignore"):
            matrix = np.where(row_sums > 0, matrix / row_sums, 0.0)
    return matrix


def support_per_class(
    y_true: Sequence, labels: Sequence[Hashable]
) -> dict[Hashable, int]:
    """Number of true instances per class."""
    y_true = list(y_true)
    return {label: sum(1 for t in y_true if t == label) for label in labels}
