"""Model persistence without pickle.

Trained Strudel models are cheap to retrain but a downstream user
shipping a classifier wants a stable, auditable on-disk format.  This
module serializes the random-forest family to a directory containing
a JSON manifest plus one compressed ``.npz`` with all arrays — no
arbitrary code execution on load, unlike pickle.

Supported objects:

* :class:`~repro.ml.tree.DecisionTreeClassifier`
* :class:`~repro.ml.forest.RandomForestClassifier`
* :class:`~repro.core.strudel.StrudelLineClassifier`
* :class:`~repro.core.strudel.StrudelCellClassifier`
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.cell_features import CellFeatureExtractor
from repro.core.derived import DerivedDetector
from repro.core.line_features import LineFeatureExtractor
from repro.core.strudel import StrudelCellClassifier, StrudelLineClassifier
from repro.errors import NotFittedError, ReproError
from repro.io.ingest import IngestPolicy, decode_path
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier

FORMAT_VERSION = 1

#: Manifests are UTF-8 JSON we wrote ourselves: tolerate a BOM (some
#: transports add one) but reject undecodable bytes outright rather
#: than repairing a model description.
_MANIFEST_POLICY = IngestPolicy.strict_policy()


class PersistenceError(ReproError):
    """Raised when a model directory is missing or malformed."""


# ----------------------------------------------------------------------
# Trees
# ----------------------------------------------------------------------
def _tree_arrays(tree: DecisionTreeClassifier, prefix: str) -> dict:
    if tree._proba is None:
        raise NotFittedError("cannot save an unfitted tree")
    return {
        f"{prefix}feature": tree._feature,
        f"{prefix}threshold": tree._threshold,
        f"{prefix}left": tree._left,
        f"{prefix}right": tree._right,
        f"{prefix}proba": tree._proba,
        f"{prefix}classes": tree.classes_,
    }


def _tree_from_arrays(arrays: dict, prefix: str,
                      n_features: int) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier()
    tree._feature = arrays[f"{prefix}feature"]
    tree._threshold = arrays[f"{prefix}threshold"]
    tree._left = arrays[f"{prefix}left"]
    tree._right = arrays[f"{prefix}right"]
    tree._proba = arrays[f"{prefix}proba"]
    tree.classes_ = arrays[f"{prefix}classes"]
    tree.n_features_ = n_features
    return tree


# ----------------------------------------------------------------------
# Forests
# ----------------------------------------------------------------------
def save_forest(forest: RandomForestClassifier, directory: str | Path) -> None:
    """Write a fitted forest as ``manifest.json`` + ``arrays.npz``."""
    if forest.estimators_ is None:
        raise NotFittedError("cannot save an unfitted forest")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict = {"classes": forest.classes_}
    for index, tree in enumerate(forest.estimators_):
        arrays.update(_tree_arrays(tree, prefix=f"tree{index}_"))
    np.savez_compressed(directory / "arrays.npz", **arrays)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "random_forest",
        "n_estimators": len(forest.estimators_),
        "n_features": forest.n_features_,
        "params": {
            "max_depth": forest.max_depth,
            "min_samples_split": forest.min_samples_split,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_features": forest.max_features,
            "bootstrap": forest.bootstrap,
        },
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def _read_manifest(directory: Path, expected_kind: str) -> dict:
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise PersistenceError(f"no manifest.json in {directory}")
    # decode_path, not read_text(): manifests written on another
    # machine may carry a BOM, and the platform-default codec of a
    # non-UTF-8 locale must never decide how JSON is read.
    text, _ = decode_path(manifest_path, _MANIFEST_POLICY)
    try:
        manifest = json.loads(text)
    except ValueError as exc:
        raise PersistenceError(
            f"malformed manifest.json in {directory}: {exc}"
        ) from exc
    if manifest.get("format_version") != FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')}"
        )
    if manifest.get("kind") != expected_kind:
        raise PersistenceError(
            f"expected a {expected_kind} model, found "
            f"{manifest.get('kind')!r}"
        )
    return manifest


def load_forest(directory: str | Path) -> RandomForestClassifier:
    """Load a forest saved by :func:`save_forest`."""
    directory = Path(directory)
    manifest = _read_manifest(directory, "random_forest")
    arrays = dict(np.load(directory / "arrays.npz", allow_pickle=False))
    params = manifest["params"]
    max_features = params["max_features"]
    forest = RandomForestClassifier(
        n_estimators=manifest["n_estimators"],
        max_depth=params["max_depth"],
        min_samples_split=params["min_samples_split"],
        min_samples_leaf=params["min_samples_leaf"],
        max_features=max_features,
        bootstrap=params["bootstrap"],
    )
    forest.classes_ = arrays["classes"]
    forest.n_features_ = manifest["n_features"]
    forest.estimators_ = [
        _tree_from_arrays(arrays, f"tree{index}_", manifest["n_features"])
        for index in range(manifest["n_estimators"])
    ]
    return forest


# ----------------------------------------------------------------------
# Strudel classifiers
# ----------------------------------------------------------------------
def _detector_config(detector: DerivedDetector) -> dict:
    return {
        "delta": detector.delta,
        "coverage": detector.coverage,
        "functions": list(detector.functions),
        "anchor_mode": detector.anchor_mode,
        "relative": detector.relative,
    }


def _detector_from_config(config: dict) -> DerivedDetector:
    return DerivedDetector(
        delta=config["delta"],
        coverage=config["coverage"],
        functions=tuple(config["functions"]),
        anchor_mode=config["anchor_mode"],
        relative=config["relative"],
    )


def save_line_classifier(
    model: StrudelLineClassifier, directory: str | Path
) -> None:
    """Persist a fitted Strudel-L model."""
    if model._model is None:
        raise NotFittedError("cannot save an unfitted line classifier")
    if not isinstance(model._model, RandomForestClassifier):
        raise PersistenceError(
            "only random-forest-backed classifiers can be persisted"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_forest(model._model, directory / "forest")
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "strudel_line",
        "feature_subset": (
            list(model.feature_subset) if model.feature_subset else None
        ),
        "include_global_features": model.extractor.include_global_features,
        "detector": _detector_config(model.extractor.detector),
        "columns": model._columns.tolist(),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def load_line_classifier(directory: str | Path) -> StrudelLineClassifier:
    """Load a Strudel-L model saved by :func:`save_line_classifier`."""
    directory = Path(directory)
    manifest = _read_manifest(directory, "strudel_line")
    extractor = LineFeatureExtractor(
        detector=_detector_from_config(manifest["detector"]),
        include_global_features=manifest["include_global_features"],
    )
    subset = manifest["feature_subset"]
    model = StrudelLineClassifier(
        extractor=extractor,
        feature_subset=tuple(subset) if subset else None,
    )
    model._model = load_forest(directory / "forest")
    model._columns = np.asarray(manifest["columns"], dtype=np.int64)
    return model


def save_cell_classifier(
    model: StrudelCellClassifier, directory: str | Path
) -> None:
    """Persist a fitted Strudel-C model (including its Strudel-L)."""
    if model._model is None:
        raise NotFittedError("cannot save an unfitted cell classifier")
    if not isinstance(model._model, RandomForestClassifier):
        raise PersistenceError(
            "only random-forest-backed classifiers can be persisted"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_line_classifier(model.line_classifier, directory / "line")
    save_forest(model._model, directory / "forest")
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "strudel_cell",
        "feature_subset": (
            list(model.feature_subset) if model.feature_subset else None
        ),
        "detector": _detector_config(model.extractor.detector),
        "columns": model._columns.tolist(),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def load_cell_classifier(directory: str | Path) -> StrudelCellClassifier:
    """Load a Strudel-C model saved by :func:`save_cell_classifier`."""
    directory = Path(directory)
    manifest = _read_manifest(directory, "strudel_cell")
    line_model = load_line_classifier(directory / "line")
    subset = manifest["feature_subset"]
    model = StrudelCellClassifier(
        line_classifier=line_model,
        extractor=CellFeatureExtractor(
            detector=_detector_from_config(manifest["detector"])
        ),
        feature_subset=tuple(subset) if subset else None,
    )
    model._model = load_forest(directory / "forest")
    model._columns = np.asarray(manifest["columns"], dtype=np.int64)
    return model
