"""Model persistence without pickle.

Trained Strudel models are cheap to retrain but a downstream user
shipping a classifier wants a stable, auditable on-disk format.  This
module serializes the random-forest family to a directory containing
a JSON manifest plus one compressed ``.npz`` with all arrays — no
arbitrary code execution on load, unlike pickle.

Since format version 2 the stored arrays are the forest's *compiled*
inference tensors (:class:`~repro.ml.compiled.CompiledForest`), so a
loaded model predicts through the packed fast path immediately;
version-1 bundles (one array set per tree) still load and compile
lazily on first predict.

Supported objects:

* :class:`~repro.ml.tree.DecisionTreeClassifier`
* :class:`~repro.ml.forest.RandomForestClassifier`
* :class:`~repro.core.strudel.StrudelLineClassifier`
* :class:`~repro.core.strudel.StrudelCellClassifier`
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.cell_features import CellFeatureExtractor
from repro.core.derived import DerivedDetector
from repro.core.line_features import LineFeatureExtractor
from repro.core.strudel import StrudelCellClassifier, StrudelLineClassifier
from repro.errors import NotFittedError, ReproError
from repro.io.ingest import IngestPolicy, decode_path
from repro.ml.compiled import CompiledForest
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier

#: Version 2 stores the forest as its *compiled* tensors (one array
#: set for the whole forest, probabilities pre-aligned to the global
#: class order) instead of per-tree ``tree{i}_*`` arrays — a load is
#: then predict-ready without a compile pass.  Version-1 bundles are
#: still read (and recompiled on first predict).
FORMAT_VERSION = 2

_SUPPORTED_VERSIONS = frozenset({1, FORMAT_VERSION})

#: Manifests are UTF-8 JSON we wrote ourselves: tolerate a BOM (some
#: transports add one) but reject undecodable bytes outright rather
#: than repairing a model description.
_MANIFEST_POLICY = IngestPolicy.strict_policy()


class PersistenceError(ReproError):
    """Raised when a model directory is missing or malformed."""


# ----------------------------------------------------------------------
# Trees
# ----------------------------------------------------------------------
def _tree_from_arrays(arrays: dict, prefix: str,
                      n_features: int) -> DecisionTreeClassifier:
    tree = DecisionTreeClassifier()
    tree._feature = arrays[f"{prefix}feature"]
    tree._threshold = arrays[f"{prefix}threshold"]
    tree._left = arrays[f"{prefix}left"]
    tree._right = arrays[f"{prefix}right"]
    tree._proba = arrays[f"{prefix}proba"]
    tree.classes_ = arrays[f"{prefix}classes"]
    tree.n_features_ = n_features
    return tree


# ----------------------------------------------------------------------
# Forests
# ----------------------------------------------------------------------
def save_forest(forest: RandomForestClassifier, directory: str | Path) -> None:
    """Write a fitted forest as ``manifest.json`` + ``arrays.npz``.

    The arrays are the compiled inference tensors: nine forest-wide
    arrays whatever the tree count, instead of six arrays per tree.
    """
    if forest.estimators_ is None:
        raise NotFittedError("cannot save an unfitted forest")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    compiled = forest.compile()
    arrays: dict = {
        "classes": compiled.classes_,
        "feature": compiled._feature,
        "threshold": compiled._threshold,
        "left": compiled._left,
        "right": compiled._right,
        "proba": compiled._proba,
        "roots": compiled._roots,
        "tree_classes": compiled._tree_classes,
        "tree_class_offsets": compiled._tree_class_offsets,
    }
    np.savez_compressed(directory / "arrays.npz", **arrays)
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "random_forest",
        "n_estimators": len(forest.estimators_),
        "n_features": forest.n_features_,
        "params": {
            "max_depth": forest.max_depth,
            "min_samples_split": forest.min_samples_split,
            "min_samples_leaf": forest.min_samples_leaf,
            "max_features": forest.max_features,
            "bootstrap": forest.bootstrap,
        },
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def _read_manifest(directory: Path, expected_kind: str) -> dict:
    manifest_path = directory / "manifest.json"
    if not manifest_path.exists():
        raise PersistenceError(f"no manifest.json in {directory}")
    # decode_path, not read_text(): manifests written on another
    # machine may carry a BOM, and the platform-default codec of a
    # non-UTF-8 locale must never decide how JSON is read.
    text, _ = decode_path(manifest_path, _MANIFEST_POLICY)
    try:
        manifest = json.loads(text)
    except ValueError as exc:
        raise PersistenceError(
            f"malformed manifest.json in {directory}: {exc}"
        ) from exc
    if manifest.get("format_version") not in _SUPPORTED_VERSIONS:
        raise PersistenceError(
            f"unsupported format version {manifest.get('format_version')}"
        )
    if manifest.get("kind") != expected_kind:
        raise PersistenceError(
            f"expected a {expected_kind} model, found "
            f"{manifest.get('kind')!r}"
        )
    return manifest


def load_forest(directory: str | Path) -> RandomForestClassifier:
    """Load a forest saved by :func:`save_forest`.

    Version-2 bundles hand their tensors straight to
    :class:`CompiledForest` (the loaded model is predict-ready, no
    compile pass) and reconstruct ``estimators_`` by decompiling them;
    version-1 bundles read the per-tree arrays and compile lazily on
    first predict.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory, "random_forest")
    arrays = dict(np.load(directory / "arrays.npz", allow_pickle=False))
    params = manifest["params"]
    max_features = params["max_features"]
    forest = RandomForestClassifier(
        n_estimators=manifest["n_estimators"],
        max_depth=params["max_depth"],
        min_samples_split=params["min_samples_split"],
        min_samples_leaf=params["min_samples_leaf"],
        max_features=max_features,
        bootstrap=params["bootstrap"],
    )
    forest.classes_ = arrays["classes"]
    forest.n_features_ = manifest["n_features"]
    if manifest["format_version"] >= 2:
        try:
            compiled = CompiledForest(
                feature=arrays["feature"],
                threshold=arrays["threshold"],
                left=arrays["left"],
                right=arrays["right"],
                proba=arrays["proba"],
                roots=arrays["roots"],
                classes=arrays["classes"],
                n_features=manifest["n_features"],
                tree_classes=arrays["tree_classes"],
                tree_class_offsets=arrays["tree_class_offsets"],
            )
        except KeyError as exc:
            raise PersistenceError(
                f"version-2 bundle in {directory} is missing the "
                f"compiled array {exc}"
            ) from exc
        if compiled.n_trees != manifest["n_estimators"]:
            raise PersistenceError(
                f"manifest declares {manifest['n_estimators']} trees "
                f"but the tensors pack {compiled.n_trees}"
            )
        forest._compiled = compiled
        forest.estimators_ = compiled.decompile()
    else:
        forest.estimators_ = [
            _tree_from_arrays(
                arrays, f"tree{index}_", manifest["n_features"]
            )
            for index in range(manifest["n_estimators"])
        ]
    forest._aligned_columns()  # populate eagerly, as fit() does
    return forest


# ----------------------------------------------------------------------
# Strudel classifiers
# ----------------------------------------------------------------------
def _detector_config(detector: DerivedDetector) -> dict:
    return {
        "delta": detector.delta,
        "coverage": detector.coverage,
        "functions": list(detector.functions),
        "anchor_mode": detector.anchor_mode,
        "relative": detector.relative,
    }


def _detector_from_config(config: dict) -> DerivedDetector:
    return DerivedDetector(
        delta=config["delta"],
        coverage=config["coverage"],
        functions=tuple(config["functions"]),
        anchor_mode=config["anchor_mode"],
        relative=config["relative"],
    )


def save_line_classifier(
    model: StrudelLineClassifier, directory: str | Path
) -> None:
    """Persist a fitted Strudel-L model."""
    if model._model is None:
        raise NotFittedError("cannot save an unfitted line classifier")
    if not isinstance(model._model, RandomForestClassifier):
        raise PersistenceError(
            "only random-forest-backed classifiers can be persisted"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_forest(model._model, directory / "forest")
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "strudel_line",
        "feature_subset": (
            list(model.feature_subset) if model.feature_subset else None
        ),
        "include_global_features": model.extractor.include_global_features,
        "detector": _detector_config(model.extractor.detector),
        "columns": model._columns.tolist(),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def load_line_classifier(directory: str | Path) -> StrudelLineClassifier:
    """Load a Strudel-L model saved by :func:`save_line_classifier`."""
    directory = Path(directory)
    manifest = _read_manifest(directory, "strudel_line")
    extractor = LineFeatureExtractor(
        detector=_detector_from_config(manifest["detector"]),
        include_global_features=manifest["include_global_features"],
    )
    subset = manifest["feature_subset"]
    model = StrudelLineClassifier(
        extractor=extractor,
        feature_subset=tuple(subset) if subset else None,
    )
    model._model = load_forest(directory / "forest")
    model._columns = np.asarray(manifest["columns"], dtype=np.int64)
    return model


def save_cell_classifier(
    model: StrudelCellClassifier, directory: str | Path
) -> None:
    """Persist a fitted Strudel-C model (including its Strudel-L)."""
    if model._model is None:
        raise NotFittedError("cannot save an unfitted cell classifier")
    if not isinstance(model._model, RandomForestClassifier):
        raise PersistenceError(
            "only random-forest-backed classifiers can be persisted"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_line_classifier(model.line_classifier, directory / "line")
    save_forest(model._model, directory / "forest")
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "strudel_cell",
        "feature_subset": (
            list(model.feature_subset) if model.feature_subset else None
        ),
        "detector": _detector_config(model.extractor.detector),
        "columns": model._columns.tolist(),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=1), encoding="utf-8"
    )


def load_cell_classifier(directory: str | Path) -> StrudelCellClassifier:
    """Load a Strudel-C model saved by :func:`save_cell_classifier`."""
    directory = Path(directory)
    manifest = _read_manifest(directory, "strudel_cell")
    line_model = load_line_classifier(directory / "line")
    subset = manifest["feature_subset"]
    model = StrudelCellClassifier(
        line_classifier=line_model,
        extractor=CellFeatureExtractor(
            detector=_detector_from_config(manifest["detector"])
        ),
        feature_subset=tuple(subset) if subset else None,
    )
    model._model = load_forest(directory / "forest")
    model._columns = np.asarray(manifest["columns"], dtype=np.int64)
    return model
