"""The ``repro-serve/1`` wire protocol: newline-delimited JSON.

One JSON object per line, in both directions.  Requests carry a
caller-chosen ``id`` that the response echoes, so a client may
pipeline many requests over one connection and match answers out of
band.  Payloads are either a server-visible ``path`` or raw bytes as
``data_b64`` (standard base64) — exactly one of the two.

Request shape::

    {"id": "r1", "op": "classify", "path": "/data/a.csv"}
    {"id": "r2", "op": "classify", "data_b64": "YSxi...", "name": "b"}
    {"id": "r3", "op": "ping"}
    {"id": "r4", "op": "stats"}

Response shape::

    {"id": "r1", "ok": true, "result": {...}}          # see below
    {"id": "r2", "ok": false, "stage": "classify",
     "reason": "...", "dead_letter": "<payload sha256>"}

A classification result is the JSON rendering of a
:class:`~repro.perf.engine.FileResult`: the detected dialect, the
table shape, per-line classes, and the non-empty cell classes as
``[row, col, class]`` triples.  :func:`result_from_payload` rebuilds
the exact ``FileResult`` arrays (same dtypes, same order), so served
results can be compared byte-for-byte against direct pipeline calls —
the parity contract the engine already pins for sweeps extends across
the wire.

Protocol violations (undecodable JSON, a missing id, an unknown op, a
payload that is neither path nor valid base64) raise
:class:`~repro.errors.ProtocolError`; the service answers them with a
structured failure instead of dropping the connection.
"""

from __future__ import annotations

import base64
import binascii
import json
from pathlib import Path

import numpy as np

from repro.dialect.dialect import Dialect
from repro.errors import ProtocolError
from repro.perf.engine import CLASS_CODES, FileResult
from repro.types import CellClass

#: Wire protocol identifier, echoed in the service banner.
PROTOCOL_SCHEMA = "repro-serve/1"

#: Upper bound on one request line (base64 payload included).  The
#: asyncio stream reader enforces it, so one runaway line cannot
#: balloon the server's memory.
MAX_LINE_BYTES = 32 * 1024 * 1024

#: The operations a request may name.
OPERATIONS = ("classify", "ping", "stats")


class ServeRequest:
    """One decoded request: id, operation, and payload source.

    Frozen by convention (the service never mutates requests);
    ``path`` and ``data`` are mutually exclusive, enforced at decode
    time.
    """

    __slots__ = ("id", "op", "path", "data", "name")

    def __init__(
        self,
        id: str,
        op: str,
        path: str | None = None,
        data: bytes | None = None,
        name: str | None = None,
    ):
        self.id = id
        self.op = op
        self.path = path
        self.data = data
        self.name = name

    @property
    def display_name(self) -> str:
        """What to call this payload in results and dead letters."""
        if self.name:
            return self.name
        if self.path:
            return self.path
        return f"<bytes:{self.id}>"


def decode_request(line: bytes | str) -> ServeRequest:
    """Parse one request line, raising :class:`ProtocolError` on any
    violation of the shape documented above."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request line is not UTF-8: {exc}")
    try:
        obj = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    request_id = obj.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request id must be a non-empty string")
    op = obj.get("op", "classify")
    if op not in OPERATIONS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPERATIONS)})"
        )
    path = obj.get("path")
    encoded = obj.get("data_b64")
    data: bytes | None = None
    if op == "classify":
        if (path is None) == (encoded is None):
            raise ProtocolError(
                "classify needs exactly one of 'path' or 'data_b64'"
            )
        if path is not None and not isinstance(path, str):
            raise ProtocolError("'path' must be a string")
        if encoded is not None:
            if not isinstance(encoded, str):
                raise ProtocolError("'data_b64' must be a string")
            try:
                data = base64.b64decode(encoded, validate=True)
            except (binascii.Error, ValueError) as exc:
                raise ProtocolError(f"'data_b64' is not base64: {exc}")
    name = obj.get("name")
    if name is not None and not isinstance(name, str):
        raise ProtocolError("'name' must be a string")
    return ServeRequest(
        id=request_id, op=op, path=path, data=data, name=name
    )


def encode_request(
    request_id: str,
    op: str = "classify",
    path: str | Path | None = None,
    data: bytes | None = None,
    name: str | None = None,
) -> bytes:
    """Render one request as a wire line (trailing newline included)."""
    obj: dict = {"id": request_id, "op": op}
    if path is not None:
        obj["path"] = str(path)
    if data is not None:
        obj["data_b64"] = base64.b64encode(data).decode("ascii")
    if name is not None:
        obj["name"] = name
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


# ----------------------------------------------------------------------
# Results across the wire
# ----------------------------------------------------------------------
def result_payload(result: FileResult) -> dict:
    """A :class:`FileResult` as a JSON-ready dict (deterministic:
    cells stay in the engine's sorted position order)."""
    return {
        "path": str(result.path),
        "n_rows": result.n_rows,
        "n_cols": result.n_cols,
        "dialect": {
            "delimiter": result.dialect.delimiter,
            "quotechar": result.dialect.quotechar,
            "escapechar": result.dialect.escapechar,
        },
        "line_classes": [cls.value for cls in result.line_classes()],
        "cells": [
            [int(row), int(col), cls.value]
            for (row, col), cls in sorted(
                result.cell_classes().items()
            )
        ],
    }


def result_from_payload(payload: dict) -> FileResult:
    """Rebuild the exact :class:`FileResult` arrays from a payload.

    Inverse of :func:`result_payload` down to array dtypes, so
    ``.tobytes()`` parity checks work across a serve round-trip.
    """
    dialect = payload["dialect"]
    cells = payload["cells"]
    return FileResult(
        path=Path(payload["path"]),
        dialect=Dialect(
            delimiter=dialect["delimiter"],
            quotechar=dialect["quotechar"],
            escapechar=dialect["escapechar"],
        ),
        n_rows=int(payload["n_rows"]),
        n_cols=int(payload["n_cols"]),
        line_codes=np.array(
            [
                CLASS_CODES[CellClass(value)]
                for value in payload["line_classes"]
            ],
            dtype=np.int8,
        ),
        cell_positions=np.array(
            [[row, col] for row, col, _ in cells], dtype=np.int64
        ).reshape(len(cells), 2),
        cell_codes=np.array(
            [CLASS_CODES[CellClass(value)] for _, _, value in cells],
            dtype=np.int8,
        ),
    )


def success_response(request_id: str, result: FileResult) -> dict:
    """The response object for a classified payload."""
    return {
        "id": request_id,
        "ok": True,
        "result": result_payload(result),
    }


def failure_response(
    request_id: str,
    stage: str,
    reason: str,
    dead_letter: str | None = None,
) -> dict:
    """The response object for a failed request; ``dead_letter`` is
    the payload hash of the DLQ record, when one was written."""
    obj: dict = {
        "id": request_id,
        "ok": False,
        "stage": stage,
        "reason": reason,
    }
    if dead_letter is not None:
        obj["dead_letter"] = dead_letter
    return obj


def encode_response(obj: dict) -> bytes:
    """Render one response as a wire line."""
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


def decode_response(line: bytes | str) -> dict:
    """Parse one response line (client side)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8")
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ProtocolError("response must be a JSON object")
    return obj
