"""``repro.serve`` — the long-lived classification service.

The production shell over the batch substrate: an asyncio front end
(:class:`ClassificationService`, the ``repro-serve/1`` wire protocol)
feeding a standing :class:`~repro.perf.engine.CorpusEngine`, with a
durable, replayable :class:`DeadLetterQueue` so no failure is ever
silent.  See ``docs/serving.md``.
"""

from repro.serve.client import ServiceClient, TcpServiceClient, connect
from repro.serve.dlq import (
    DLQ_SCHEMA,
    DeadLetter,
    DeadLetterQueue,
    ReplayReport,
    replay_dead_letters,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_SCHEMA,
    ServeRequest,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    failure_response,
    result_from_payload,
    result_payload,
    success_response,
)
from repro.serve.service import ClassificationService, run_service

__all__ = [
    "DLQ_SCHEMA",
    "MAX_LINE_BYTES",
    "PROTOCOL_SCHEMA",
    "ClassificationService",
    "DeadLetter",
    "DeadLetterQueue",
    "ReplayReport",
    "ServeRequest",
    "ServiceClient",
    "TcpServiceClient",
    "connect",
    "decode_request",
    "decode_response",
    "encode_request",
    "encode_response",
    "failure_response",
    "replay_dead_letters",
    "result_from_payload",
    "result_payload",
    "run_service",
    "success_response",
]
