"""The long-lived classification service around a standing engine.

:class:`ClassificationService` is the asyncio shell the ROADMAP's
million-user story needs: one fitted pipeline, one warm
:class:`~repro.perf.engine.CorpusEngine`, and a bounded submission
queue in front of it.  Requests (file paths or raw bytes) arrive
through the in-process API (:meth:`submit_path` /
:meth:`submit_bytes`) or the TCP front end
(``asyncio.start_server`` + the ``repro-serve/1`` protocol), are
coalesced into micro-batches by a single batcher coroutine, and run
through the engine in an executor thread so the event loop never
blocks on classification.

Flow control is explicit end to end: the submission queue is a
``asyncio.Queue(maxsize=queue_size)``, so ``await``-ing a submit *is*
the backpressure — a TCP connection stops reading its socket while
the queue is full, pushing the pressure back to the client's kernel
buffers.

Failure routing mirrors the engine's: nothing raises out of a
request.  A payload that cannot be read, ingested, or classified
resolves to a :class:`~repro.perf.engine.SkipEntry` and — when the
service has a :class:`~repro.serve.dlq.DeadLetterQueue` — lands
durably in it for later ``repro dlq replay``.

Lifecycle: :meth:`start` brings the batcher (and optionally the TCP
listener) up; :meth:`drain` is the graceful shutdown — stop
accepting, flush everything in flight, release the engine's workers —
and returns the final counts.  :func:`run_service` wires drain to
SIGINT/SIGTERM for the CLI.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from pathlib import Path

from repro.errors import ProtocolError, ReproError, ServeError
from repro.io.adapters import read_source
from repro.io.ingest import IngestPolicy
from repro.obs import get_metrics, get_tracer
from repro.perf.engine import CorpusEngine, FileResult, SkipEntry
from repro.serve.dlq import DeadLetter, DeadLetterQueue
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ServeRequest,
    decode_request,
    encode_response,
    failure_response,
    success_response,
)


class _Pending:
    """One queued request: its payload source and its waiter."""

    __slots__ = ("request_id", "name", "path", "data", "future")

    def __init__(
        self,
        request_id: str,
        name: str,
        path: str | None,
        data: bytes | None,
        future: "asyncio.Future",
    ):
        self.request_id = request_id
        self.name = name
        self.path = path
        self.data = data
        self.future = future


class ClassificationService:
    """A standing classification service over one fitted pipeline.

    Parameters
    ----------
    pipeline:
        A **fitted** :class:`~repro.core.strudel.StrudelPipeline`.
    n_jobs:
        Engine worker processes (``1`` = classify inline in the
        executor thread; still fully async at the front).
    policy:
        Ingest policy applied to every payload.
    sweep_cache:
        Optional directory for the engine's content-addressed result
        cache — a re-served payload never reaches a worker.
    dlq:
        Optional :class:`DeadLetterQueue`; every failure is recorded
        in it durably.  Without one, failures still resolve to
        :class:`SkipEntry` but leave no durable trace.
    queue_size:
        Submission queue bound (the backpressure knob); must be >= 1.
    batch_files:
        Most payloads the batcher coalesces into one engine call.
    """

    def __init__(
        self,
        pipeline,
        n_jobs: int | None = 1,
        policy: IngestPolicy | None = None,
        sweep_cache: str | Path | None = None,
        dlq: DeadLetterQueue | None = None,
        queue_size: int = 256,
        batch_files: int = 32,
    ):
        if queue_size < 1:
            raise ServeError("queue_size must be >= 1")
        if batch_files < 1:
            raise ServeError("batch_files must be >= 1")
        self._policy = policy or IngestPolicy()
        self._engine = CorpusEngine(
            pipeline, n_jobs=n_jobs, policy=self._policy,
            cache_dir=sweep_cache,
        )
        self.dlq = dlq
        self._queue_size = queue_size
        self._batch_files = batch_files
        self._queue: "asyncio.Queue[_Pending] | None" = None
        self._batcher: "asyncio.Task | None" = None
        self._server: "asyncio.base_events.Server | None" = None
        self._accepting = False
        self._drained = False
        self._metrics = get_metrics()
        # Request bookkeeping: mutated only on the event-loop thread,
        # so plain ints suffice (no lock).
        self._requests = 0
        self._results = 0
        self._dead_letters = 0
        self._inflight = 0
        self._local_ids = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self, host: str | None = None, port: int | None = None
    ) -> None:
        """Bring the service up (idempotence is an error: a service
        object runs exactly one lifecycle).  With ``host``/``port``
        the TCP front end listens too; without them the service is
        in-process only."""
        if self._queue is not None:
            raise ServeError("service already started")
        if self._drained:
            raise ServeError("service already drained; build a new one")
        self._queue = asyncio.Queue(maxsize=self._queue_size)
        self._batcher = asyncio.create_task(self._batch_loop())
        if host is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, host, port,
                limit=MAX_LINE_BYTES,
            )
        self._accepting = True

    @property
    def port(self) -> int | None:
        """The bound TCP port (resolves ``port=0`` requests)."""
        if self._server is None or not self._server.sockets:
            return None
        return self._server.sockets[0].getsockname()[1]

    async def drain(self) -> dict:
        """Graceful shutdown: stop accepting, flush every queued
        request, stop the TCP listener and the engine's workers.
        Returns the final counts (the CLI prints them on exit)."""
        tracer = get_tracer()
        with tracer.span("serve.drain", inflight=self._inflight):
            self._accepting = False
            if self._server is not None:
                self._server.close()
            if self._queue is not None:
                await self._queue.join()
            if self._batcher is not None:
                self._batcher.cancel()
                try:
                    await self._batcher
                except asyncio.CancelledError:
                    pass
                self._batcher = None
            if self._server is not None:
                try:
                    await self._server.wait_closed()
                except asyncio.CancelledError:  # pragma: no cover
                    pass
                self._server = None
            self._engine.close()
            self._drained = True
        return self.stats()

    def stats(self) -> dict:
        """The service's live counters, as one JSON-ready dict."""
        return {
            "requests": self._requests,
            "results": self._results,
            "dead_letters": self._dead_letters,
            "inflight": self._inflight,
            "accepting": self._accepting,
        }

    # ------------------------------------------------------------------
    # In-process API
    # ------------------------------------------------------------------
    async def submit_path(
        self, path: str | Path, request_id: str | None = None
    ) -> "FileResult | SkipEntry":
        """Classify a file by path; resolves when its batch does."""
        outcome, _record = await self._submit(
            request_id=request_id, path=str(path), data=None, name=None
        )
        return outcome

    async def submit_bytes(
        self,
        data: bytes,
        name: str = "<bytes>",
        request_id: str | None = None,
    ) -> "FileResult | SkipEntry":
        """Classify raw bytes; ``name`` labels results and records."""
        outcome, _record = await self._submit(
            request_id=request_id, path=None, data=data, name=name
        )
        return outcome

    async def _submit(
        self,
        request_id: str | None,
        path: str | None,
        data: bytes | None,
        name: str | None,
    ) -> "tuple[FileResult | SkipEntry, DeadLetter | None]":
        """Enqueue one payload and await its outcome."""
        future = await self._enqueue(request_id, path, data, name)
        return await future

    async def _enqueue(
        self,
        request_id: str | None,
        path: str | None,
        data: bytes | None,
        name: str | None,
    ) -> "asyncio.Future":
        """Admission control: reject when not accepting, count the
        request, and apply queue backpressure (the ``put`` blocks)."""
        if not self._accepting or self._queue is None:
            raise ServeError(
                "service is not accepting requests (draining or "
                "never started)"
            )
        if request_id is None:
            self._local_ids += 1
            request_id = f"local-{self._local_ids}"
        self._requests += 1
        self._inflight += 1
        self._metrics.increment("serve.requests")
        self._metrics.gauge("serve.inflight", self._inflight)
        future: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        item = _Pending(
            request_id=request_id,
            name=name or path or f"<bytes:{request_id}>",
            path=path,
            data=data,
            future=future,
        )
        await self._queue.put(item)
        return future

    # ------------------------------------------------------------------
    # The batcher
    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        """Coalesce queued requests into engine-sized batches.

        One batch per wakeup: whatever is already waiting (up to
        ``batch_files``), never an artificial delay — latency under
        light load, batching under heavy load.
        """
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self._batch_files:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            await self._process_batch(batch)

    async def _process_batch(self, batch: "list[_Pending]") -> None:
        """Run one batch through the engine (off-loop) and settle
        every waiter; drain accounting happens in ``finally`` so a
        crashed batch can never wedge ``queue.join()``."""
        loop = asyncio.get_running_loop()
        try:
            settled = await loop.run_in_executor(
                None, self._work, batch
            )
            for item, (outcome, payload) in zip(batch, settled):
                record = None
                if isinstance(outcome, FileResult):
                    self._results += 1
                    self._metrics.increment("serve.results")
                else:
                    self._dead_letters += 1
                    if self.dlq is not None:
                        # DeadLetterQueue.append owns the
                        # serve.dead_letters metric increment.
                        record = self.dlq.append(
                            request_id=item.request_id,
                            source=item.name,
                            stage=outcome.stage,
                            reason=outcome.reason,
                            payload=payload,
                        )
                    else:
                        self._metrics.increment("serve.dead_letters")
                if not item.future.cancelled():
                    item.future.set_result((outcome, record))
        except (asyncio.CancelledError, Exception) as exc:
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(
                        ServeError(
                            f"batch failed before settling: "
                            f"{type(exc).__name__}: {exc}"
                        )
                    )
            if isinstance(exc, asyncio.CancelledError):
                raise
        finally:
            for item in batch:
                self._inflight -= 1
                self._queue.task_done()
            self._metrics.gauge("serve.inflight", self._inflight)

    def _work(
        self, batch: "list[_Pending]"
    ) -> "list[tuple[FileResult | SkipEntry, bytes | None]]":
        """The synchronous half, run in an executor thread: read path
        payloads, push everything through the engine, align the
        outcomes.  Returns ``(outcome, payload_bytes)`` per item —
        the bytes ride along so failures can be dead-lettered with
        their payload (``None`` when the bytes never materialized)."""
        tracer = get_tracer()
        with tracer.span("serve.batch", n_files=len(batch)):
            prepared: "list[SkipEntry | tuple[str, bytes]]" = []
            for item in batch:
                if item.data is not None:
                    prepared.append((item.name, item.data))
                    continue
                try:
                    # Path payloads resolve through the adapter
                    # layer, so a provenance locator a sweep reported
                    # (``archive.zip!member.csv``) is classifiable
                    # over the wire exactly like a loose path.
                    data = read_source(
                        item.path or "", policy=self._policy
                    )
                except (OSError, ReproError) as exc:
                    prepared.append(
                        SkipEntry(
                            Path(item.path or ""),
                            "read",
                            f"{type(exc).__name__}: {exc}",
                        )
                    )
                    continue
                prepared.append((item.name, data))
            work = [
                entry for entry in prepared if isinstance(entry, tuple)
            ]
            results, _report = self._engine.process_payloads(work)
            outcomes = iter(results)
            settled: "list[tuple[FileResult | SkipEntry, bytes | None]]"
            settled = []
            for entry in prepared:
                if isinstance(entry, tuple):
                    settled.append((next(outcomes), entry[1]))
                else:
                    settled.append((entry, None))
            return settled

    # ------------------------------------------------------------------
    # The TCP front end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ) -> None:
        """One client connection: read request lines, answer each
        with one response line.  Requests pipeline — a slow classify
        never blocks a later ping — but the submit itself applies
        queue backpressure before the next line is read."""
        write_lock = asyncio.Lock()
        replies: "set[asyncio.Task]" = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError, ValueError
                ) as exc:
                    await self._respond(
                        writer, write_lock,
                        failure_response(
                            "?", "protocol",
                            f"request line too long: {exc}",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._handle_line(
                    line, writer, write_lock, replies
                )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if replies:
                await asyncio.gather(*replies, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        replies: "set[asyncio.Task]",
    ) -> None:
        """Decode and dispatch one request line."""
        try:
            request = decode_request(line)
        except ProtocolError as exc:
            # A malformed line is a failure like any other: it is
            # dead-lettered (the raw line is the payload) and answered
            # in-line, never allowed to drop the connection.
            record = None
            self._dead_letters += 1
            if self.dlq is None:
                self._metrics.increment("serve.dead_letters")
            else:
                record = self.dlq.append(
                    request_id="?",
                    source="<wire>",
                    stage="protocol",
                    reason=str(exc),
                    payload=bytes(line),
                )
            await self._respond(
                writer, write_lock,
                failure_response(
                    "?", "protocol", str(exc),
                    dead_letter=(
                        record.payload_sha256 if record else None
                    ),
                ),
            )
            return
        if request.op == "ping":
            await self._respond(
                writer, write_lock,
                {"id": request.id, "ok": True, "result": "pong"},
            )
            return
        if request.op == "stats":
            await self._respond(
                writer, write_lock,
                {"id": request.id, "ok": True, "result": self.stats()},
            )
            return
        try:
            future = await self._enqueue(
                request.id, request.path, request.data, request.name
            )
        except ServeError as exc:
            await self._respond(
                writer, write_lock,
                failure_response(request.id, "rejected", str(exc)),
            )
            return
        task = asyncio.create_task(
            self._reply(request, future, writer, write_lock)
        )
        replies.add(task)
        task.add_done_callback(replies.discard)

    async def _reply(
        self,
        request: ServeRequest,
        future: "asyncio.Future",
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
    ) -> None:
        """Await one classify outcome and write its response line."""
        try:
            outcome, record = await future
        except ServeError as exc:
            await self._respond(
                writer, write_lock,
                failure_response(request.id, "rejected", str(exc)),
            )
            return
        if isinstance(outcome, FileResult):
            response = success_response(request.id, outcome)
        else:
            response = failure_response(
                request.id, outcome.stage, outcome.reason,
                dead_letter=(
                    record.payload_sha256 if record is not None
                    else None
                ),
            )
        await self._respond(writer, write_lock, response)

    @staticmethod
    async def _respond(
        writer: "asyncio.StreamWriter",
        write_lock: "asyncio.Lock",
        response: dict,
    ) -> None:
        """Write one response line (lock: lines must not interleave)."""
        async with write_lock:
            try:
                writer.write(encode_response(response))
                await writer.drain()
            except (ConnectionError, OSError):
                pass


# ----------------------------------------------------------------------
# The CLI runner
# ----------------------------------------------------------------------
def run_service(
    service: ClassificationService,
    host: str = "127.0.0.1",
    port: int = 0,
    out=None,
) -> dict:
    """Serve until SIGINT/SIGTERM, then drain; returns the summary.

    This is the whole ``repro serve`` runtime: the event loop lives
    inside this call, and a signal turns into a graceful drain (stop
    accepting, flush in-flight work, shut the worker pool down), so
    Ctrl-C under load exits 0 with every accepted request answered.
    """
    out = out or sys.stdout
    return asyncio.run(_serve_until_signal(service, host, port, out))


async def _serve_until_signal(
    service: ClassificationService, host: str, port: int, out
) -> dict:
    await service.start(host=host, port=port)
    print(
        f"repro serve: listening on {host}:{service.port} "
        f"(Ctrl-C to drain)",
        file=out,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            continue  # non-unix event loops: drain via KeyboardInterrupt
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
    return await service.drain()
