"""A durable, replayable dead-letter queue for the serve front end.

Every failure the service observes — an ingest rejection, a pipeline
exception in a worker, a worker crash, an unreadable path, a protocol
violation — becomes one NDJSON record (schema ``repro-dlq/1``) in
``<dir>/records.ndjson``, with the offending payload bytes parked
content-addressed under ``<dir>/payloads/<sha256>.bin``.  Nothing is
ever lost silently: an operator can ``repro dlq list`` the failures,
fix the cause (a too-strict policy, a crashed worker, a missing
file), and ``repro dlq replay`` the queue back through the engine.

Record shape::

    {"schema": "repro-dlq/1", "request_id": "r7", "source": "b.csv",
     "stage": "classify", "reason": "...", "payload_sha256": "ab12...",
     "timestamp": "2026-08-08T12:00:00+00:00", "replays": 0}

``timestamp`` comes from an injectable ``clock`` callable (defaulting
to UTC ``datetime.now``), so tests pin byte-exact records; the repo's
determinism rules stay intact.  Replay rewrites ``records.ndjson``
atomically (temp file + ``os.replace``): recovered records disappear,
still-dead records keep their place with ``replays`` bumped and the
fresh failure reason, and payload files no record references anymore
are pruned.  A corrupt line in the records file is skipped, never
fatal — the queue must stay readable after a crash mid-append.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.obs import get_metrics, get_tracer
from repro.perf.engine import CorpusEngine, FileResult

#: Dead-letter record schema identifier, written into every record.
DLQ_SCHEMA = "repro-dlq/1"

#: The record fields, in canonical order (documentation + validation).
RECORD_FIELDS = (
    "schema", "request_id", "source", "stage", "reason",
    "payload_sha256", "timestamp", "replays",
)


def _utc_timestamp() -> str:
    """The default clock: an ISO-8601 UTC wall timestamp."""
    return datetime.now(timezone.utc).isoformat()


@dataclass(frozen=True)
class DeadLetter:
    """One failed payload: where it came from, how it failed, and
    where its bytes are parked (``payload_sha256`` is ``None`` only
    for ``read``-stage failures, whose bytes never arrived)."""

    request_id: str
    source: str
    stage: str
    reason: str
    payload_sha256: str | None
    timestamp: str
    replays: int = 0

    def as_dict(self) -> dict:
        """The record as written to ``records.ndjson``."""
        return {
            "schema": DLQ_SCHEMA,
            "request_id": self.request_id,
            "source": self.source,
            "stage": self.stage,
            "reason": self.reason,
            "payload_sha256": self.payload_sha256,
            "timestamp": self.timestamp,
            "replays": self.replays,
        }

    @staticmethod
    def from_dict(obj: dict) -> "DeadLetter | None":
        """A record from one parsed NDJSON line; ``None`` if the line
        is not a well-formed ``repro-dlq/1`` record."""
        if not isinstance(obj, dict):
            return None
        if obj.get("schema") != DLQ_SCHEMA:
            return None
        request_id = obj.get("request_id")
        source = obj.get("source")
        stage = obj.get("stage")
        reason = obj.get("reason")
        sha = obj.get("payload_sha256")
        if not all(
            isinstance(value, str)
            for value in (request_id, source, stage, reason)
        ):
            return None
        if sha is not None and not isinstance(sha, str):
            return None
        timestamp = obj.get("timestamp")
        replays = obj.get("replays", 0)
        return DeadLetter(
            request_id=request_id,
            source=source,
            stage=stage,
            reason=reason,
            payload_sha256=sha,
            timestamp=timestamp if isinstance(timestamp, str) else "",
            replays=replays if isinstance(replays, int) else 0,
        )


class DeadLetterQueue:
    """The on-disk queue: an append-only NDJSON journal plus a
    content-addressed payload store.

    Parameters
    ----------
    directory:
        Queue root; created lazily on first append.
    clock:
        Zero-argument callable returning the timestamp string for new
        records.  Injectable for deterministic tests; defaults to UTC
        ``datetime.now().isoformat()``.
    """

    def __init__(
        self,
        directory: str | Path,
        clock: Callable[[], str] | None = None,
    ):
        self.directory = Path(directory)
        self._records_path = self.directory / "records.ndjson"
        self._payload_dir = self.directory / "payloads"
        self._clock = clock or _utc_timestamp
        self._metrics = get_metrics()

    def now(self) -> str:
        """A timestamp from the queue's clock (replay re-stamps with
        it so bumped records stay consistent with appended ones)."""
        return self._clock()

    # ------------------------------------------------------------------
    def append(
        self,
        request_id: str,
        source: str,
        stage: str,
        reason: str,
        payload: bytes | None = None,
    ) -> DeadLetter:
        """Record one failure durably; returns the written record.

        The payload (when the bytes exist) is stored under its sha256
        before the journal line is appended, so a record on disk
        always points at a payload that is also on disk.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        sha: str | None = None
        if payload is not None:
            sha = hashlib.sha256(payload).hexdigest()
            self._payload_dir.mkdir(parents=True, exist_ok=True)
            payload_path = self._payload_dir / f"{sha}.bin"
            if not payload_path.exists():
                payload_path.write_bytes(payload)
        record = DeadLetter(
            request_id=request_id,
            source=source,
            stage=stage,
            reason=reason,
            payload_sha256=sha,
            timestamp=self._clock(),
        )
        with open(
            self._records_path, "a", encoding="utf-8", newline="\n"
        ) as handle:
            handle.write(
                json.dumps(record.as_dict(), sort_keys=True) + "\n"
            )
        self._metrics.increment("serve.dead_letters")
        return record

    def records(self) -> list[DeadLetter]:
        """Every well-formed record, in journal order; corrupt lines
        (a crash mid-append, a stray edit) are skipped."""
        try:
            text = self._records_path.read_text(encoding="utf-8")
        except OSError:
            return []
        out: list[DeadLetter] = []
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            record = DeadLetter.from_dict(obj)
            if record is not None:
                out.append(record)
        return out

    def payload(self, record: DeadLetter) -> bytes | None:
        """The parked bytes for a record, or ``None`` if it has no
        payload (``read`` failures) or the file is gone."""
        if record.payload_sha256 is None:
            return None
        try:
            return (
                self._payload_dir / f"{record.payload_sha256}.bin"
            ).read_bytes()
        except OSError:
            return None

    def replace(self, records: Sequence[DeadLetter]) -> None:
        """Atomically rewrite the journal to exactly ``records`` and
        prune payload files nothing references anymore."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix="records.", suffix=".tmp"
        )
        try:
            with os.fdopen(
                fd, "w", encoding="utf-8", newline="\n"
            ) as handle:
                for record in records:
                    handle.write(
                        json.dumps(record.as_dict(), sort_keys=True)
                        + "\n"
                    )
            os.replace(temp_name, self._records_path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        self._prune_payloads(records)

    def purge(self) -> int:
        """Drop every record and payload; returns the record count."""
        count = len(self.records())
        self.replace([])
        return count

    def __len__(self) -> int:
        return len(self.records())

    # ------------------------------------------------------------------
    def _prune_payloads(self, records: Iterable[DeadLetter]) -> None:
        """Remove payload files no surviving record points at."""
        live = {
            record.payload_sha256
            for record in records
            if record.payload_sha256 is not None
        }
        if not self._payload_dir.is_dir():
            return
        for path in sorted(self._payload_dir.glob("*.bin")):
            if path.stem not in live:
                try:
                    path.unlink()
                except OSError:
                    continue


@dataclass
class ReplayReport:
    """What one replay pass did with the queue."""

    total: int = 0
    replayed: int = 0
    recovered: int = 0
    still_dead: int = 0
    unreplayable: int = 0

    def summary(self) -> str:
        """One human line, for the CLI."""
        return (
            f"replayed {self.replayed}/{self.total} dead letters: "
            f"{self.recovered} recovered, {self.still_dead} still "
            f"dead, {self.unreplayable} unreplayable"
        )


def replay_dead_letters(
    queue: DeadLetterQueue, engine: CorpusEngine
) -> ReplayReport:
    """Push every dead letter back through ``engine`` and settle the
    queue: recovered records are removed, still-dead records stay with
    ``replays`` bumped and the fresh failure reason, records whose
    bytes cannot be materialized (no payload file *and* the source
    path is unreadable) are kept untouched as unreplayable.

    This is deliberately the same substrate the live service uses
    (:meth:`CorpusEngine.process_payloads`), so "it recovers on
    replay" means "the service would accept it now".
    """
    tracer = get_tracer()
    metrics = get_metrics()
    with tracer.span("serve.replay", n_records=len(queue)):
        records = queue.records()
        report = ReplayReport(total=len(records))
        # outcome per record: None = unreplayable (kept untouched)
        outcomes: list[DeadLetter | None] = [None] * len(records)
        items: list[tuple[int, bytes]] = []
        for index, record in enumerate(records):
            if record.stage == "protocol":
                # The payload is a raw wire line, not CSV bytes; only
                # the client can re-send it correctly formed.
                report.unreplayable += 1
                continue
            data = queue.payload(record)
            if data is None:
                # read-stage failures park no payload; the source
                # path may have become readable since.
                try:
                    data = Path(record.source).read_bytes()
                except OSError:
                    report.unreplayable += 1
                    continue
            items.append((index, data))
        results, _sweep = engine.process_payloads(
            [(records[index].source, data) for index, data in items]
        )
        recovered: set[int] = set()
        for (index, _data), outcome in zip(items, results):
            report.replayed += 1
            metrics.increment("serve.replays")
            if isinstance(outcome, FileResult):
                report.recovered += 1
                recovered.add(index)
            else:
                report.still_dead += 1
                outcomes[index] = replace(
                    records[index],
                    stage=outcome.stage,
                    reason=outcome.reason,
                    timestamp=queue.now(),
                    replays=records[index].replays + 1,
                )
        keep = [
            outcomes[index] or record
            for index, record in enumerate(records)
            if index not in recovered
        ]
        queue.replace(keep)
    return report
