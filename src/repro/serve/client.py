"""Clients for the classification service.

Two shapes, one protocol:

* :class:`ServiceClient` wraps an in-process
  :class:`~repro.serve.service.ClassificationService` — no sockets,
  no serialization, results arrive as live
  :class:`~repro.perf.engine.FileResult` objects.  This is what the
  benchmark's ``service_roundtrip`` block and embedding applications
  use.
* :func:`connect` opens a TCP connection speaking ``repro-serve/1``
  and returns a :class:`TcpServiceClient` whose classify calls return
  decoded response dicts (use
  :func:`~repro.serve.protocol.result_from_payload` to rebuild the
  arrays).  This is what the tests and the CI smoke job drive the
  served process with.
"""

from __future__ import annotations

import asyncio
import itertools
from pathlib import Path

from repro.perf.engine import FileResult, SkipEntry
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_response,
    encode_request,
)
from repro.serve.service import ClassificationService


class ServiceClient:
    """In-process client: the service API, without the wire."""

    def __init__(self, service: ClassificationService):
        self._service = service

    async def classify_path(
        self, path: str | Path
    ) -> "FileResult | SkipEntry":
        """Classify a file the service can read from disk."""
        return await self._service.submit_path(path)

    async def classify_bytes(
        self, data: bytes, name: str = "<bytes>"
    ) -> "FileResult | SkipEntry":
        """Classify raw bytes under a display name."""
        return await self._service.submit_bytes(data, name=name)

    def stats(self) -> dict:
        """The service's live counters."""
        return self._service.stats()


class TcpServiceClient:
    """A ``repro-serve/1`` connection with sequential request ids.

    One outstanding request per call — callers wanting pipelining can
    hold several clients or drive :meth:`request` from parallel
    tasks on separate connections.  Close with :meth:`close`.
    """

    def __init__(
        self,
        reader: "asyncio.StreamReader",
        writer: "asyncio.StreamWriter",
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)

    async def request(self, line: bytes) -> dict:
        """Send one raw request line and read one response line."""
        self._writer.write(line)
        await self._writer.drain()
        response = await self._reader.readline()
        if not response:
            raise ConnectionError("server closed the connection")
        return decode_response(response)

    async def classify_path(self, path: str | Path) -> dict:
        """Classify a server-visible path; returns the response dict."""
        return await self.request(
            encode_request(self._next_id(), path=path)
        )

    async def classify_bytes(
        self, data: bytes, name: str | None = None
    ) -> dict:
        """Ship raw bytes for classification."""
        return await self.request(
            encode_request(self._next_id(), data=data, name=name)
        )

    async def ping(self) -> dict:
        """Liveness check."""
        return await self.request(
            encode_request(self._next_id(), op="ping")
        )

    async def stats(self) -> dict:
        """The server's live counters."""
        return await self.request(
            encode_request(self._next_id(), op="stats")
        )

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    def _next_id(self) -> str:
        return f"c{next(self._ids)}"


async def connect(host: str, port: int) -> TcpServiceClient:
    """Open a TCP client to a running ``repro serve`` process."""
    reader, writer = await asyncio.open_connection(
        host, port, limit=MAX_LINE_BYTES
    )
    return TcpServiceClient(reader, writer)
