"""Dialect-aware CSV tokenizer.

This is a from-scratch implementation of RFC-4180 parsing generalized
to arbitrary dialects: any single-character delimiter, an optional
quote character, and an optional escape character.  It is the single
code path used both by the dialect detector (which must parse the same
text under many candidate dialects) and by the user-facing reader.

The grammar implemented here:

* Records are separated by ``\\n``, ``\\r\\n`` or ``\\r``.
* Fields are separated by the dialect delimiter.
* A field may be quoted: it then starts and ends with the quote
  character, may contain delimiters and newlines, and represents an
  embedded quote either as a doubled quote (RFC 4180) or as an escaped
  quote when an escape character is configured.
* Outside quotes, an escape character makes the following character
  literal.

Malformed input (e.g. an unterminated quote) is handled leniently —
the remainder of the text becomes part of the current field — because
dialect detection must be able to score *wrong* dialects without
raising.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dialect.dialect import Dialect


@dataclass(frozen=True)
class ParseOutcome:
    """Records plus the lenient-recovery facts of one parse.

    The tokenizer never raises on malformed input (dialect detection
    must be able to score *wrong* dialects), but downstream policy —
    the strict/lenient knob of :mod:`repro.io.ingest` — needs to know
    when lenience actually fired.  ``unterminated_quote`` is true when
    the text ended inside a quoted field and the remainder was folded
    into the current field; ``dangling_escape`` is true when the final
    character was a configured escape character, which has nothing to
    escape and is kept literal.
    """

    records: list[list[str]]
    unterminated_quote: bool = False
    dangling_escape: bool = False


def split_record(line: str, dialect: Dialect) -> list[str]:
    """Split a single record (no embedded newlines) into fields."""
    records = parse_csv_text(line, dialect)
    if not records:
        return [""]
    return records[0]


def parse_csv_text(text: str, dialect: Dialect) -> list[list[str]]:
    """Parse ``text`` into records of fields under ``dialect``.

    Returns a list of records; each record is a list of raw field
    strings with quotes and escapes resolved.  The trailing newline of
    the text does not produce an extra empty record.
    """
    return parse_csv_outcome(text, dialect).records


def parse_csv_outcome(text: str, dialect: Dialect) -> ParseOutcome:
    """Like :func:`parse_csv_text`, also reporting recovery facts."""
    delimiter = dialect.delimiter
    quote = dialect.quotechar or ""
    escape = dialect.escapechar or ""

    records: list[list[str]] = []
    fields: list[str] = []
    current: list[str] = []
    in_quotes = False
    dangling_escape = False
    i = 0
    n = len(text)

    def end_field() -> None:
        fields.append("".join(current))
        current.clear()

    def end_record() -> None:
        end_field()
        records.append(list(fields))
        fields.clear()

    while i < n:
        ch = text[i]
        if in_quotes:
            if escape and ch == escape and i + 1 < n:
                current.append(text[i + 1])
                i += 2
                continue
            if quote and ch == quote:
                if i + 1 < n and text[i + 1] == quote:
                    # RFC 4180 doubled quote inside a quoted field.
                    current.append(quote)
                    i += 2
                    continue
                in_quotes = False
                i += 1
                continue
            current.append(ch)
            i += 1
            continue

        if escape and ch == escape and i + 1 < n:
            current.append(text[i + 1])
            i += 2
            continue
        if quote and ch == quote and not current:
            # A quote opens a quoted field only at field start.
            in_quotes = True
            i += 1
            continue
        if delimiter and ch == delimiter:
            end_field()
            i += 1
            continue
        if ch == "\r":
            end_record()
            if i + 1 < n and text[i + 1] == "\n":
                i += 2
            else:
                i += 1
            continue
        if ch == "\n":
            end_record()
            i += 1
            continue
        if escape and ch == escape and i + 1 >= n:
            # An escape character with nothing after it escapes
            # nothing; it stays literal, which the outcome records.
            dangling_escape = True
        current.append(ch)
        i += 1

    if current or fields or (n > 0 and text[-1] not in "\r\n"):
        end_record()
    return ParseOutcome(
        records,
        unterminated_quote=in_quotes,
        dangling_escape=dangling_escape,
    )
