"""Plain-text emission and parse-ability filtering (Section 6.1.1).

The paper crawled Mendeley plain-text files, ran dialect detection,
and kept only the 62 of 100 files whose *table region* parsed
correctly under the detected dialect ("a file is parse-able if the
dialect for the table region ... is correct").

This module reproduces that acquisition pipeline over generated
corpora: each annotated file is serialized under a randomly drawn
exotic dialect, the detector runs on the raw text, and the file
survives only if the detected dialect reconstructs the table region's
shape.  The result is a corpus of genuinely dialect-stressed files
plus the acquisition statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dialect.detector import DialectDetector
from repro.dialect.dialect import Dialect
from repro.io.writer import write_csv_text
from repro.parsing import parse_csv_text
from repro.types import AnnotatedFile, CellClass, Corpus
from repro.util.rng import as_generator

#: Dialects a plain-text corpus may arrive in; weighted toward the
#: conventional ones but including awkward space/colon variants.
EMISSION_DIALECTS: tuple[Dialect, ...] = (
    Dialect.standard(),
    Dialect(delimiter=";"),
    Dialect(delimiter="\t", quotechar=""),
    Dialect(delimiter="|", quotechar="'"),
    Dialect(delimiter=" ", quotechar='"'),
    Dialect(delimiter=":", quotechar=""),
)


@dataclass
class AcquisitionReport:
    """Outcome of the plain-text acquisition pipeline."""

    total: int
    parseable: int
    per_dialect: dict[str, tuple[int, int]]

    @property
    def parseable_rate(self) -> float:
        """Share of files that survived filtering (paper: 62/100)."""
        return self.parseable / self.total if self.total else 0.0


def _table_region_rows(annotated: AnnotatedFile) -> list[int]:
    """Indices of lines in the table region (header/group/data/derived),
    matching the paper's definition of parse-ability."""
    region = {
        CellClass.HEADER, CellClass.GROUP, CellClass.DATA,
        CellClass.DERIVED,
    }
    return [
        i
        for i, label in enumerate(annotated.line_labels)
        if label in region
    ]


def is_parseable(
    annotated: AnnotatedFile,
    emitted: Dialect,
    detector: DialectDetector,
) -> bool:
    """Whether the detected dialect reconstructs the table region.

    The file is serialized under ``emitted``; detection runs on the raw
    text; the parse under the detected dialect must reproduce the cell
    boundaries of every table-region line.
    """
    text = write_csv_text(annotated.table.rows(), emitted)
    if not text.strip():
        return False
    detected = detector.detect(text)
    rows = parse_csv_text(text, detected)
    original = list(annotated.table.rows())
    if len(rows) != len(original):
        return False
    width = annotated.table.n_cols
    for i in _table_region_rows(annotated):
        parsed = rows[i] + [""] * (width - len(rows[i]))
        if parsed[:width] != original[i]:
            return False
    return True


def acquire_plain_text_corpus(
    corpus: Corpus,
    seed: int | np.random.Generator | None = 0,
    detector: DialectDetector | None = None,
) -> tuple[Corpus, AcquisitionReport]:
    """Run the paper's acquisition pipeline over ``corpus``.

    Every file is assigned a random emission dialect; only files whose
    table region survives detection+parsing are kept.  Returns the
    surviving corpus (original annotations, since the table parses
    identically) and the acquisition report.
    """
    rng = as_generator(seed)
    detector = detector or DialectDetector()
    kept: list[AnnotatedFile] = []
    per_dialect: dict[str, list[int]] = {}
    for annotated in corpus:
        dialect = EMISSION_DIALECTS[
            int(rng.integers(0, len(EMISSION_DIALECTS)))
        ]
        key = repr(dialect.delimiter)
        bucket = per_dialect.setdefault(key, [0, 0])
        bucket[1] += 1
        if is_parseable(annotated, dialect, detector):
            bucket[0] += 1
            kept.append(annotated)
    report = AcquisitionReport(
        total=len(corpus),
        parseable=len(kept),
        per_dialect={
            key: (ok, total) for key, (ok, total) in per_dialect.items()
        },
    )
    return Corpus(name=f"{corpus.name}-parseable", files=kept), report
