"""Word banks for the synthetic corpus generators.

Three loose *domains* mirror the paper's dataset sources: an
administrative/statistical domain (SAUS, CIUS, GovUK), a business
domain (DeEx) and a scientific domain (Mendeley).  Troy draws from a
fourth, deliberately different bank to stay out-of-domain.
"""

from __future__ import annotations

import numpy as np

TITLE_TEMPLATES: dict[str, list[str]] = {
    "admin": [
        "Table {num}. {topic} in the United States, {year}",
        "{topic} by {dimension}, {year}",
        "Statistical Report: {topic} ({year})",
        "Annual Summary of {topic}, by {dimension}",
        "{topic} — Offenses Known to Authorities, {year}",
    ],
    "business": [
        "Quarterly {topic} Overview {year}",
        "{topic} Performance by {dimension}",
        "Consolidated {topic} Statement, FY{year}",
        "Internal Report — {topic} ({dimension})",
    ],
    "science": [
        "Experiment {num}: {topic} measurements",
        "Dataset: {topic} sampled by {dimension}",
        "Raw readings — {topic} trial {num}",
        "{topic} observations, {dimension} series",
    ],
    "foreign": [
        "Tabelle {num}: {topic} nach {dimension}",
        "National accounts: {topic}, {year}",
        "{topic} census digest {year}",
    ],
}

TOPICS: dict[str, list[str]] = {
    "admin": [
        "Crime Rates", "Population Estimates", "Drug Seizures",
        "Household Income", "School Enrollment", "Traffic Violations",
        "Public Expenditure", "Employment Figures", "Housing Permits",
    ],
    "business": [
        "Revenue", "Operating Costs", "Inventory", "Headcount",
        "Sales Volume", "Net Margin", "Capital Expenditure",
    ],
    "science": [
        "Temperature", "Conductivity", "Absorbance", "Cell Counts",
        "Reaction Yield", "Particle Velocity", "pH Levels",
    ],
    "foreign": [
        "Agricultural Output", "Energy Consumption", "Trade Balance",
        "Fertility Rates", "Water Quality",
    ],
}

DIMENSIONS: dict[str, list[str]] = {
    "admin": ["State", "Region", "Agency", "County", "Age Group", "Year"],
    "business": ["Division", "Quarter", "Product Line", "Branch", "Segment"],
    "science": ["Sample", "Batch", "Site", "Replicate", "Condition"],
    "foreign": ["Province", "Sector", "District", "Cohort"],
}

COLUMN_NAMES: dict[str, list[str]] = {
    "admin": [
        "Violent crime", "Property crime", "Burglary", "Larceny",
        "Robbery", "Arrests", "Population", "Rate per 100,000",
        "Officers", "Clearances", "Incidents", "Murder",
    ],
    "business": [
        "Q1", "Q2", "Q3", "Q4", "Revenue", "Costs", "Units",
        "Margin %", "Forecast", "Actual", "Variance", "Budget",
    ],
    "science": [
        "Run 1", "Run 2", "Run 3", "Mean value", "Std dev",
        "Reading", "Baseline", "Corrected", "Error", "Signal",
    ],
    "foreign": [
        "Output", "Index", "Share", "Change", "Level", "Per capita",
        "Density", "Volume",
    ],
}

KEY_NAMES: dict[str, list[str]] = {
    "admin": [
        "Alabama", "Alaska", "Arizona", "Arkansas", "California",
        "Colorado", "Connecticut", "Delaware", "Florida", "Georgia",
        "Hawaii", "Idaho", "Illinois", "Indiana", "Iowa", "Kansas",
        "Kentucky", "Louisiana", "Maine", "Maryland",
    ],
    "business": [
        "North Division", "South Division", "East Division",
        "West Division", "Online", "Retail", "Wholesale", "Licensing",
        "Hardware", "Software", "Services", "Consulting",
    ],
    "science": [
        "Sample A", "Sample B", "Sample C", "Sample D", "Control",
        "Trial 1", "Trial 2", "Trial 3", "Site North", "Site South",
        "Replicate I", "Replicate II",
    ],
    "foreign": [
        "Bavaria", "Saxony", "Hesse", "Bremen", "Hamburg", "Berlin",
        "Tyrol", "Styria", "Geneva", "Vaud", "Ticino", "Zug",
    ],
}

GROUP_NAMES: dict[str, list[str]] = {
    "admin": [
        "Northeast", "Midwest", "South", "West", "Federal agencies",
        "State agencies", "Urban areas", "Rural areas",
        "Sale/Manufacturing:", "Possession:",
    ],
    "business": [
        "Americas", "EMEA", "APAC", "Core products:", "New ventures:",
        "Continuing operations", "Discontinued operations",
    ],
    "science": [
        "Treatment group", "Control group", "Batch 2019", "Batch 2020",
        "High dosage:", "Low dosage:",
    ],
    "foreign": [
        "Western provinces", "Eastern provinces", "Coastal",
        "Inland", "Metropolitan",
    ],
}

NOTE_TEMPLATES: list[str] = [
    "Note: {detail}",
    "1 {detail}",
    "2 {detail}",
    "* {detail}",
    "Source: {source}",
    "NOTE: Because of rounding, figures may not add to totals.",
    "Data are preliminary and subject to revision.",
]

NOTE_DETAILS: list[str] = [
    "Figures exclude jurisdictions that did not report.",
    "Values are expressed in thousands unless stated otherwise.",
    "Estimates are based on a stratified sample survey.",
    "Columns may not sum due to independent rounding.",
    "Data for 2019 were revised in the current edition.",
    "Counts reflect calendar-year reporting periods.",
]

NOTE_SOURCES: list[str] = [
    "U.S. Department of Justice, Federal Bureau of Investigation.",
    "National Statistics Office, annual digest.",
    "Company internal ledger, unaudited.",
    "Laboratory information management system export.",
]

METADATA_EXTRAS: list[str] = [
    "All figures in thousands",
    "Prepared by the statistics unit",
    "Release date: March {year}",
    "Coverage: national",
    "Revision 2",
]

#: Instrument/configuration parameters for science-domain metadata —
#: emitted as ``name,value,unit`` triples whose numeric middle cell
#: makes the metadata look like data (the Mendeley hard case).
CONFIG_PARAMS: list[tuple[str, tuple[float, float], str]] = [
    ("sampling_rate", (10, 5000), "Hz"),
    ("temperature", (15, 40), "C"),
    ("voltage", (1, 24), "V"),
    ("exposure", (5, 500), "ms"),
    ("dilution", (1, 100), "x"),
    ("flow_rate", (0.1, 9.9), "mL/min"),
    ("pressure", (90, 110), "kPa"),
    ("replicates", (2, 12), ""),
]

TOTAL_WORDS_ANCHORED: list[str] = [
    "Total", "Total:", "TOTAL", "Grand Total", "Average", "All items",
    "Sum", "Mean",
]

#: Leading words for derived lines *without* an aggregation keyword —
#: these reproduce the paper's unanchored derived lines that Algorithm 2
#: cannot anchor (its dominant error source).
TOTAL_WORDS_UNANCHORED: list[str] = [
    "Combined", "Overall", "Both sexes", "United States", "Everything",
    "Net", "Aggregate",
]


def pick(rng: np.random.Generator, items: list[str]) -> str:
    """Uniformly choose one element of ``items``."""
    return items[int(rng.integers(0, len(items)))]


def make_title(rng: np.random.Generator, domain: str, num: int) -> str:
    """A plausible table title for ``domain``."""
    template = pick(rng, TITLE_TEMPLATES[domain])
    return template.format(
        num=num,
        topic=pick(rng, TOPICS[domain]),
        dimension=pick(rng, DIMENSIONS[domain]),
        year=int(rng.integers(1995, 2021)),
    )


def make_note(rng: np.random.Generator) -> str:
    """A plausible footnote line."""
    template = pick(rng, NOTE_TEMPLATES)
    return template.format(
        detail=pick(rng, NOTE_DETAILS), source=pick(rng, NOTE_SOURCES)
    )


def make_config_metadata(rng: np.random.Generator) -> list[str]:
    """A ``name,value,unit`` configuration metadata line."""
    name, (low, high), unit = CONFIG_PARAMS[
        int(rng.integers(0, len(CONFIG_PARAMS)))
    ]
    if float(high) <= 20:
        value = f"{rng.uniform(low, high):.1f}"
    else:
        value = str(int(rng.integers(int(low), int(high))))
    return [name, value, unit]


def make_metadata_extra(rng: np.random.Generator) -> str:
    """A secondary metadata line below the title."""
    return pick(rng, METADATA_EXTRAS).format(
        year=int(rng.integers(1995, 2021))
    )
