"""Corpus personalities mirroring the paper's six datasets.

Each builder samples :class:`~repro.datagen.spec.FileSpec` instances
from the ranges of its :class:`~repro.datagen.spec.CorpusSpec` and
reproduces the structural phenomena the paper describes:

* **GovUK** — heterogeneous government spreadsheets, large files,
  occasional stacked tables.
* **SAUS** — statistical-abstract tables with many *unanchored*
  derived lines (the paper: "the dataset has many unanchored derived
  cells"), simple headers.
* **CIUS** — highly templated: a small number of table templates is
  reused across files ("reports from different years on the same
  themes with the same templates"), derived cells often lacking
  keywords at the cell level.
* **DeEx** — heterogeneous business spreadsheets: stacked tables,
  numeric headers, tabular notes, multi-level group columns — the
  hardest dataset.
* **Mendeley** — huge, data-dominated plain-text files with the
  "delimiter dilemma" tearing metadata/notes across cells; used for
  out-of-distribution testing only.
* **Troy** — small out-of-domain statistical tables with mostly
  keyword-less derived lines (the paper measures derived F1 of 0.070
  on it).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datagen.filegen import generate_file
from repro.datagen.spec import CorpusSpec, FileSpec, TableSpec
from repro.errors import GenerationError
from repro.types import Corpus
from repro.util.rng import as_generator


def _uniform_int(rng: np.random.Generator, bounds: tuple[int, int]) -> int:
    low, high = bounds
    return int(rng.integers(low, high + 1))


def _sample_table_spec(
    spec: CorpusSpec, rng: np.random.Generator
) -> TableSpec:
    return TableSpec(
        n_numeric_cols=_uniform_int(rng, spec.numeric_cols),
        n_groups=_uniform_int(rng, spec.groups),
        rows_per_group=_uniform_int(rng, spec.rows_per_group),
        header_rows=_uniform_int(rng, spec.header_rows),
        numeric_headers=rng.random() < spec.numeric_header_rate,
        group_subtotals=rng.random() < spec.subtotal_rate,
        grand_total=rng.random() < spec.grand_total_rate,
        derived_column=rng.random() < spec.derived_column_rate,
        anchored_total_words=rng.random() < spec.anchored_total_rate,
        plain_key_totals=rng.random() < spec.plain_key_total_rate,
        subtotals_on_top=rng.random() < spec.subtotal_top_rate,
        group_column=rng.random() < spec.group_column_rate,
        blank_after_header=rng.random() < spec.blank_after_header_rate,
        blank_between_groups=rng.random() < spec.blank_between_groups_rate,
        missing_value_rate=spec.missing_value_rate,
        float_values=rng.random() < spec.float_value_rate,
    )


def _sample_file_spec(
    spec: CorpusSpec,
    rng: np.random.Generator,
    templates: list[list[TableSpec]] | None,
) -> FileSpec:
    if templates is not None:
        # Templated corpora (CIUS): pick one of a few fixed layouts;
        # only the numbers differ between files.
        tables = list(templates[int(rng.integers(0, len(templates)))])
    else:
        n_tables = _uniform_int(rng, spec.tables_per_file)
        tables = [_sample_table_spec(spec, rng) for _ in range(n_tables)]
    return FileSpec(
        domain=spec.domain,
        n_tables=len(tables),
        metadata_lines=_uniform_int(rng, spec.metadata_lines),
        notes_lines=_uniform_int(rng, spec.notes_lines),
        notes_as_table=rng.random() < spec.notes_as_table_rate,
        notes_multicell=rng.random() < spec.multicell_notes_rate,
        metadata_as_table=rng.random() < spec.metadata_table_rate,
        notes_right_of_table=rng.random() < spec.side_notes_rate,
        metadata_split_cells=rng.random() < spec.metadata_split_rate,
        blank_between_sections=1,
        tables=tables,
    )


def _build(
    spec: CorpusSpec,
    seed: int | np.random.Generator | None,
    scale: float,
) -> Corpus:
    if scale <= 0:
        raise GenerationError("scale must be positive")
    rng = as_generator(seed)
    templates: list[list[TableSpec]] | None = None
    if spec.template_count:
        templates = [
            [_sample_table_spec(spec, rng)]
            for _ in range(spec.template_count)
        ]
    files = []
    for index in range(spec.scaled_files(scale)):
        file_spec = _sample_file_spec(spec, rng, templates)
        files.append(
            generate_file(file_spec, rng, name=f"{spec.name}_{index:04d}")
        )
    return Corpus(name=spec.name, files=files)


# ----------------------------------------------------------------------
# Personalities
# ----------------------------------------------------------------------
GOVUK_SPEC = CorpusSpec(
    name="govuk",
    domain="admin",
    n_files=226,
    tables_per_file=(1, 3),
    numeric_cols=(4, 10),
    groups=(1, 4),
    rows_per_group=(8, 30),
    metadata_lines=(1, 4),
    notes_lines=(1, 4),
    header_rows=(1, 2),
    numeric_header_rate=0.25,
    anchored_total_rate=0.75,
    plain_key_total_rate=0.5,
    subtotal_top_rate=0.25,
    group_column_rate=0.2,
    metadata_table_rate=0.15,
    multicell_notes_rate=0.2,
    metadata_split_rate=0.1,
    subtotal_rate=0.6,
    grand_total_rate=0.8,
    derived_column_rate=0.15,
    notes_as_table_rate=0.1,
    side_notes_rate=0.1,
    blank_after_header_rate=0.3,
    blank_between_groups_rate=0.35,
    float_value_rate=0.35,
)

SAUS_SPEC = CorpusSpec(
    name="saus",
    domain="admin",
    n_files=223,
    tables_per_file=(1, 1),
    numeric_cols=(4, 9),
    groups=(1, 3),
    rows_per_group=(3, 8),
    metadata_lines=(1, 3),
    notes_lines=(1, 4),
    header_rows=(1, 2),
    numeric_header_rate=0.3,
    # SAUS: "many unanchored derived cells".
    anchored_total_rate=0.45,
    plain_key_total_rate=0.7,
    subtotal_top_rate=0.3,
    group_column_rate=0.1,
    metadata_table_rate=0.1,
    multicell_notes_rate=0.2,
    subtotal_rate=0.6,
    grand_total_rate=0.85,
    derived_column_rate=0.2,
    blank_after_header_rate=0.25,
    blank_between_groups_rate=0.2,
    float_value_rate=0.4,
)

CIUS_SPEC = CorpusSpec(
    name="cius",
    domain="admin",
    n_files=269,
    tables_per_file=(1, 1),
    numeric_cols=(5, 9),
    groups=(2, 4),
    rows_per_group=(5, 12),
    metadata_lines=(2, 3),
    notes_lines=(1, 3),
    header_rows=(1, 2),
    numeric_header_rate=0.15,
    # CIUS derived cells often lack keywords ("a number of files share
    # a fixed table schema that uses no keywords to indicate derived").
    anchored_total_rate=0.35,
    plain_key_total_rate=0.6,
    subtotal_top_rate=0.15,
    group_column_rate=0.1,
    subtotal_rate=0.75,
    grand_total_rate=0.9,
    derived_column_rate=0.1,
    blank_after_header_rate=0.15,
    blank_between_groups_rate=0.15,
    float_value_rate=0.2,
    # Templated: few layouts shared by all files.
    template_count=6,
)

DEEX_SPEC = CorpusSpec(
    name="deex",
    domain="business",
    n_files=444,
    tables_per_file=(1, 4),
    numeric_cols=(3, 8),
    groups=(0, 4),
    rows_per_group=(4, 15),
    metadata_lines=(0, 5),
    notes_lines=(0, 5),
    header_rows=(0, 2),
    numeric_header_rate=0.4,
    anchored_total_rate=0.6,
    plain_key_total_rate=0.6,
    subtotal_top_rate=0.35,
    group_column_rate=0.4,
    metadata_table_rate=0.3,
    multicell_notes_rate=0.3,
    metadata_split_rate=0.2,
    subtotal_rate=0.55,
    grand_total_rate=0.7,
    derived_column_rate=0.25,
    notes_as_table_rate=0.35,
    side_notes_rate=0.25,
    blank_after_header_rate=0.4,
    blank_between_groups_rate=0.45,
    missing_value_rate=0.06,
    float_value_rate=0.5,
)

MENDELEY_SPEC = CorpusSpec(
    name="mendeley",
    domain="science",
    n_files=62,
    tables_per_file=(1, 2),
    numeric_cols=(3, 8),
    groups=(0, 1),
    # Data-dominated: very long flat tables.
    rows_per_group=(120, 600),
    metadata_lines=(1, 3),
    notes_lines=(0, 2),
    header_rows=(0, 1),
    numeric_header_rate=0.2,
    anchored_total_rate=0.3,
    subtotal_rate=0.05,
    grand_total_rate=0.15,
    derived_column_rate=0.05,
    # The delimiter dilemma tears metadata text across cells.
    metadata_split_rate=0.8,
    multicell_notes_rate=0.8,
    blank_after_header_rate=0.1,
    blank_between_groups_rate=0.0,
    missing_value_rate=0.05,
    float_value_rate=0.8,
)

TROY_SPEC = CorpusSpec(
    name="troy",
    domain="foreign",
    n_files=200,
    tables_per_file=(1, 1),
    numeric_cols=(2, 5),
    groups=(0, 2),
    rows_per_group=(3, 8),
    metadata_lines=(1, 2),
    notes_lines=(1, 3),
    header_rows=(1, 2),
    numeric_header_rate=0.3,
    # Troy: "most of the derived cells lay in the lines that do not
    # contain any derived keyword" — derived F1 collapses to 0.07.
    anchored_total_rate=0.1,
    plain_key_total_rate=0.8,
    subtotal_top_rate=0.3,
    group_column_rate=0.25,
    subtotal_rate=0.5,
    grand_total_rate=0.8,
    derived_column_rate=0.1,
    blank_after_header_rate=0.2,
    blank_between_groups_rate=0.25,
    float_value_rate=0.3,
)


def make_govuk(seed: int | np.random.Generator | None = 0,
               scale: float = 1.0) -> Corpus:
    """The GovUK personality (heterogeneous government spreadsheets)."""
    return _build(GOVUK_SPEC, seed, scale)


def make_saus(seed: int | np.random.Generator | None = 1,
              scale: float = 1.0) -> Corpus:
    """The SAUS personality (unanchored derived lines)."""
    return _build(SAUS_SPEC, seed, scale)


def make_cius(seed: int | np.random.Generator | None = 2,
              scale: float = 1.0) -> Corpus:
    """The CIUS personality (templated crime reports)."""
    return _build(CIUS_SPEC, seed, scale)


def make_deex(seed: int | np.random.Generator | None = 3,
              scale: float = 1.0) -> Corpus:
    """The DeEx personality (hard heterogeneous business sheets)."""
    return _build(DEEX_SPEC, seed, scale)


def make_mendeley(seed: int | np.random.Generator | None = 4,
                  scale: float = 1.0) -> Corpus:
    """The Mendeley personality (huge data-dominated plain text)."""
    return _build(MENDELEY_SPEC, seed, scale)


def make_troy(seed: int | np.random.Generator | None = 5,
              scale: float = 1.0) -> Corpus:
    """The Troy personality (small out-of-domain tables)."""
    return _build(TROY_SPEC, seed, scale)


CORPUS_BUILDERS: dict[str, Callable[..., Corpus]] = {
    "govuk": make_govuk,
    "saus": make_saus,
    "cius": make_cius,
    "deex": make_deex,
    "mendeley": make_mendeley,
    "troy": make_troy,
}


def make_corpus(name: str, seed: int | np.random.Generator | None = None,
                scale: float = 1.0) -> Corpus:
    """Build the corpus personality called ``name``."""
    try:
        builder = CORPUS_BUILDERS[name]
    except KeyError:
        raise GenerationError(
            f"unknown corpus {name!r}; choose from "
            f"{sorted(CORPUS_BUILDERS)}"
        ) from None
    if seed is None:
        return builder(scale=scale)
    return builder(seed=seed, scale=scale)
