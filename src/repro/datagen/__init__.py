"""Synthetic verbose-CSV corpora with exact ground truth.

The paper evaluates on six annotated corpora (GovUK, SAUS, CIUS, DeEx,
Mendeley, Troy) that are not available offline.  This package
generates synthetic corpora with one *personality* per paper dataset:
each personality reproduces the structural phenomena the paper
describes for that dataset (templated CIUS files, heterogeneous DeEx
layouts with stacked tables and tabular notes, SAUS's unanchored
derived lines, Mendeley's huge data-dominated plain-text files with
delimiter clashes, Troy's out-of-domain layouts), so every feature
and classifier code path is exercised and the paper's *relative*
results are preserved.

Because the files are generated, the line and cell ground truth is
exact by construction — no annotation noise.
"""

from repro.datagen.corpora import (
    CORPUS_BUILDERS,
    make_cius,
    make_corpus,
    make_deex,
    make_govuk,
    make_mendeley,
    make_saus,
    make_troy,
)
from repro.datagen.filegen import FileBuilder, generate_file
from repro.datagen.spec import CorpusSpec, FileSpec, TableSpec

__all__ = [
    "CORPUS_BUILDERS",
    "CorpusSpec",
    "FileBuilder",
    "FileSpec",
    "TableSpec",
    "generate_file",
    "make_cius",
    "make_corpus",
    "make_deex",
    "make_govuk",
    "make_mendeley",
    "make_saus",
    "make_troy",
]
