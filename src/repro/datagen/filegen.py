"""File-level generation: composing tables, metadata and notes.

:class:`FileBuilder` accumulates labelled rows and produces a
rectangular :class:`~repro.types.AnnotatedFile`;
:func:`generate_table_block` emits one table (headers, groups, data,
derived lines, derived column) with exact cell labels; and
:func:`generate_file` composes a whole verbose CSV file from a
:class:`~repro.datagen.spec.FileSpec`.
"""

from __future__ import annotations

import numpy as np

from repro.datagen import vocab
from repro.errors import GenerationError
from repro.datagen.spec import FileSpec, TableSpec
from repro.datagen.values import draw_values, format_value
from repro.types import AnnotatedFile, CellClass, Table


class FileBuilder:
    """Accumulates labelled rows; pads to rectangular shape on build."""

    def __init__(self) -> None:
        self._rows: list[list[str]] = []
        self._cell_labels: list[list[CellClass]] = []
        self._line_labels: list[CellClass] = []

    def add_row(
        self,
        values: list[str],
        cell_classes: list[CellClass],
        line_class: CellClass,
    ) -> None:
        """Append one labelled line.

        Label hygiene is enforced here: empty cells always carry the
        ``EMPTY`` label regardless of what the caller passed.
        """
        if len(values) != len(cell_classes):
            raise GenerationError("values and cell_classes differ in length")
        cleaned = [
            CellClass.EMPTY if not value.strip() else label
            for value, label in zip(values, cell_classes)
        ]
        self._rows.append(list(values))
        self._cell_labels.append(cleaned)
        self._line_labels.append(line_class)

    def add_empty_row(self) -> None:
        """Append a fully empty visual separator line."""
        self._rows.append([""])
        self._cell_labels.append([CellClass.EMPTY])
        self._line_labels.append(CellClass.EMPTY)

    def add_empty_rows(self, count: int) -> None:
        """Append ``count`` empty lines."""
        for _ in range(count):
            self.add_empty_row()

    def attach_right(
        self, row_index: int, value: str, cell_class: CellClass
    ) -> None:
        """Attach a cell to the right of an existing line.

        Used for side content such as notes placed to the right of a
        table: an empty spacer cell is inserted before the value, and
        the line's class label is left unchanged (the attached cell
        keeps its own class — the paper's diversity-degree mechanism).
        """
        if not 0 <= row_index < len(self._rows):
            raise IndexError(f"no line {row_index} to attach to")
        self._rows[row_index].extend(["", value])
        self._cell_labels[row_index].extend(
            [CellClass.EMPTY,
             cell_class if value.strip() else CellClass.EMPTY]
        )

    @property
    def n_rows(self) -> int:
        """Lines added so far."""
        return len(self._rows)

    def build(self, name: str) -> AnnotatedFile:
        """Pad all rows to the widest line and assemble the file."""
        width = max((len(r) for r in self._rows), default=1)
        rows = [r + [""] * (width - len(r)) for r in self._rows]
        labels = [
            l + [CellClass.EMPTY] * (width - len(l))
            for l in self._cell_labels
        ]
        return AnnotatedFile(
            name=name,
            table=Table(rows),
            line_labels=list(self._line_labels),
            cell_labels=labels,
        )


# ----------------------------------------------------------------------
# Table blocks
# ----------------------------------------------------------------------
def _header_rows(
    builder: FileBuilder,
    spec: TableSpec,
    domain: str,
    rng: np.random.Generator,
    total_cols: int,
    lead_cols: int,
) -> None:
    names = vocab.COLUMN_NAMES[domain]
    if spec.header_rows >= 2:
        # A spanning super-header occupying only its top-left cell.
        spanning = [""] * total_cols
        spanning[lead_cols] = vocab.pick(rng, vocab.TOPICS[domain])
        builder.add_row(
            spanning,
            [CellClass.HEADER] * total_cols,
            CellClass.HEADER,
        )
    if spec.header_rows >= 1:
        header = [""] * total_cols
        # The key column header is often left blank in real files.
        if rng.random() < 0.5:
            header[lead_cols - 1] = vocab.pick(rng, vocab.DIMENSIONS[domain])
        n_value_cols = total_cols - lead_cols
        if spec.numeric_headers:
            start_year = int(rng.integers(1990, 2016))
            labels = [str(start_year + k) for k in range(n_value_cols)]
        else:
            labels = [vocab.pick(rng, names) for _ in range(n_value_cols)]
        header[lead_cols:] = labels
        if spec.derived_column:
            header[-1] = "Total"
        builder.add_row(
            header, [CellClass.HEADER] * total_cols, CellClass.HEADER
        )


def _format_row(
    key: str,
    values: np.ndarray,
    missing: np.ndarray,
    spec: TableSpec,
    key_class: CellClass,
    value_class: CellClass,
    line_class: CellClass,
) -> tuple[list[str], list[CellClass], CellClass]:
    """Format one table line; missing cells are emitted empty.

    When the spec asks for a derived column, its value is the sum of
    the *visible* cells (missing count as zero), so the generated
    aggregate is consistent with what a reader — or Algorithm 2 —
    can recompute from the file.
    """
    cells = [key]
    classes = [key_class]
    for value, hide in zip(values, missing):
        if hide:
            cells.append("")
            classes.append(CellClass.EMPTY)
        else:
            cells.append(
                format_value(value, spec.float_values,
                             spec.thousands_separators)
            )
            classes.append(value_class)
    if spec.derived_column:
        visible_sum = float(values[~missing].sum())
        cells.append(
            format_value(visible_sum, spec.float_values,
                         spec.thousands_separators)
        )
        classes.append(CellClass.DERIVED)
    return cells, classes, line_class


def generate_table_block(
    builder: FileBuilder,
    spec: TableSpec,
    domain: str,
    rng: np.random.Generator,
) -> None:
    """Emit one table into ``builder`` with exact labels.

    The table consists of optional header lines, ``n_groups`` group
    sections (group line *or* a leading group column, data rows,
    optional derived subtotal), an optional grand-total line and an
    optional derived (row-sum) column.  All aggregates are true sums
    of the *displayed* values, with empty (missing) cells counting as
    zero — exactly the arithmetic Algorithm 2 performs.
    """
    group_col = spec.group_column and spec.n_groups > 0
    lead_cols = 2 if group_col else 1
    total_cols = (
        lead_cols + spec.n_numeric_cols + (1 if spec.derived_column else 0)
    )
    _header_rows(builder, spec, domain, rng, total_cols, lead_cols)
    if spec.blank_after_header:
        builder.add_empty_row()

    keys = vocab.KEY_NAMES[domain]
    group_names = vocab.GROUP_NAMES[domain]
    total_words = (
        vocab.TOTAL_WORDS_ANCHORED
        if spec.anchored_total_words
        else vocab.TOTAL_WORDS_UNANCHORED
    )

    n_sections = max(spec.n_groups, 1)
    grand_sum = np.zeros(spec.n_numeric_cols)

    def pick_total_word() -> str:
        # Unanchored tables may key their derived lines with ordinary
        # key names, making them lexically identical to data lines —
        # the paper's hardest derived case.
        if not spec.anchored_total_words and spec.plain_key_totals:
            return vocab.pick(rng, keys)
        return vocab.pick(rng, total_words)

    def add_with_group_prefix(
        row: tuple[list[str], list[CellClass], CellClass],
        group_value: str = "",
    ) -> None:
        """Emit a row, prepending the group column when configured."""
        cells, classes, line_class = row
        if group_col:
            cells = [group_value] + cells
            classes = [
                CellClass.GROUP if group_value else CellClass.EMPTY
            ] + classes
        builder.add_row(cells, classes, line_class)

    def subtotal_row(section_sum: np.ndarray) -> tuple:
        return _format_row(
            pick_total_word(), section_sum,
            np.zeros(len(section_sum), dtype=bool), spec,
            key_class=CellClass.GROUP,
            value_class=CellClass.DERIVED,
            line_class=CellClass.DERIVED,
        )

    for section in range(n_sections):
        group_name = ""
        if spec.n_groups > 0:
            group_name = vocab.pick(rng, group_names)
            if not group_col:
                group_row = [group_name] + [""] * (total_cols - 1)
                builder.add_row(
                    group_row,
                    [CellClass.GROUP] * total_cols,
                    CellClass.GROUP,
                )
        values = draw_values(
            rng, spec.rows_per_group, spec.n_numeric_cols, spec.float_values
        )
        # Missing cells count as zero in every aggregate, matching the
        # detector's NaN-as-zero accumulation.
        missing = rng.random(values.shape) < spec.missing_value_rate
        visible = np.where(missing, 0.0, values)
        section_sum = visible.sum(axis=0)
        grand_sum += section_sum

        if spec.group_subtotals and spec.subtotals_on_top:
            add_with_group_prefix(subtotal_row(section_sum))
        for row_index in range(spec.rows_per_group):
            key = vocab.pick(rng, keys)
            row = _format_row(
                key, values[row_index], missing[row_index], spec,
                key_class=CellClass.DATA,
                value_class=CellClass.DATA,
                line_class=CellClass.DATA,
            )
            # The spanning group value goes only to the section's
            # top-left cell, per the paper's preprocessing convention.
            add_with_group_prefix(
                row, group_value=group_name if row_index == 0 else ""
            )
        if spec.group_subtotals and not spec.subtotals_on_top:
            add_with_group_prefix(subtotal_row(section_sum))
        if spec.blank_between_groups and section < n_sections - 1:
            builder.add_empty_row()

    if spec.grand_total:
        word = pick_total_word()
        if spec.anchored_total_words and not word.lower().startswith("grand"):
            word = "Grand " + word.lower()
        row = _format_row(
            word, grand_sum, np.zeros(len(grand_sum), dtype=bool), spec,
            key_class=CellClass.GROUP,
            value_class=CellClass.DERIVED,
            line_class=CellClass.DERIVED,
        )
        add_with_group_prefix(row)


# ----------------------------------------------------------------------
# Whole files
# ----------------------------------------------------------------------
def _metadata_block(
    builder: FileBuilder, spec: FileSpec, rng: np.random.Generator
) -> None:
    if spec.metadata_as_table and spec.metadata_lines > 1:
        # Elaborate metadata organized as a small key:value table —
        # the paper's "metadata as data" hard case.
        builder.add_row(
            [vocab.make_title(rng, spec.domain, builder.n_rows + 1)],
            [CellClass.METADATA],
            CellClass.METADATA,
        )
        labels = ["Coverage", "Unit", "Release", "Source", "Edition"]
        for line in range(spec.metadata_lines - 1):
            builder.add_row(
                [labels[line % len(labels)], vocab.make_metadata_extra(rng)],
                [CellClass.METADATA, CellClass.METADATA],
                CellClass.METADATA,
            )
        return
    for line in range(spec.metadata_lines):
        if line == 0:
            text = vocab.make_title(rng, spec.domain, builder.n_rows + 1)
        elif spec.domain == "science" and rng.random() < 0.6:
            # Instrument-configuration metadata: a name,value,unit
            # triple whose numeric middle cell makes the line look
            # like data — the Mendeley transfer hard case.
            cells = vocab.make_config_metadata(rng)
            builder.add_row(
                cells, [CellClass.METADATA] * len(cells),
                CellClass.METADATA,
            )
            continue
        else:
            text = vocab.make_metadata_extra(rng)
        if spec.metadata_split_cells and rng.random() < 0.85:
            # The Mendeley "delimiter dilemma": the table delimiter
            # tears free text into many short cells, so metadata lines
            # masquerade as wide header/data lines.
            words = text.split(" ")
            cells = []
            index = 0
            while index < len(words):
                step = int(rng.integers(1, 3))
                cells.append(" ".join(words[index : index + step]))
                index += step
        else:
            cells = [text]
        builder.add_row(
            cells, [CellClass.METADATA] * len(cells), CellClass.METADATA
        )


def _notes_block(
    builder: FileBuilder, spec: FileSpec, rng: np.random.Generator
) -> None:
    if spec.notes_as_table and spec.notes_lines > 0:
        # Notes organized as a small two-column table (common in DeEx).
        for _ in range(spec.notes_lines):
            mark = vocab.pick(rng, ["*", "1", "2", "a", "b"])
            detail = vocab.pick(rng, vocab.NOTE_DETAILS)
            builder.add_row(
                [mark, detail],
                [CellClass.NOTES, CellClass.NOTES],
                CellClass.NOTES,
            )
        return
    for _ in range(spec.notes_lines):
        text = vocab.make_note(rng)
        if spec.notes_multicell and rng.random() < 0.6:
            # Notes torn across cells (delimiter inside the text, or a
            # mark in its own cell) — harder to separate from short
            # data lines.  Files with the delimiter dilemma tear notes
            # as aggressively as metadata.
            words = text.split(" ")
            if spec.metadata_split_cells:
                cells = []
                index = 0
                while index < len(words):
                    step = int(rng.integers(1, 3))
                    cells.append(" ".join(words[index : index + step]))
                    index += step
            else:
                cut = max(1, len(words) // 3)
                cells = [" ".join(words[:cut]), " ".join(words[cut:])]
        else:
            cells = [text]
        builder.add_row(
            cells, [CellClass.NOTES] * len(cells), CellClass.NOTES
        )


def generate_file(
    spec: FileSpec, rng: np.random.Generator, name: str
) -> AnnotatedFile:
    """Generate one annotated verbose CSV file from ``spec``."""
    builder = FileBuilder()
    _metadata_block(builder, spec, rng)
    if spec.metadata_lines:
        builder.add_empty_rows(spec.blank_between_sections)

    table_specs = spec.tables or [TableSpec()]
    first_table_line = builder.n_rows
    for index, table_spec in enumerate(table_specs):
        if index > 0:
            builder.add_empty_rows(max(spec.blank_between_sections, 1))
            # Later tables in a stack usually carry their own caption.
            caption = vocab.make_title(rng, spec.domain, index + 1)
            builder.add_row(
                [caption], [CellClass.METADATA], CellClass.METADATA
            )
        generate_table_block(builder, table_spec, spec.domain, rng)

    if spec.notes_right_of_table:
        # Side notes: short remarks attached to the right of data
        # rows ("authors place notes to the right of a table" — the
        # paper's notes-as-data confusion source).
        candidate_lines = [
            i
            for i in range(first_table_line, builder.n_rows)
            if builder._line_labels[i] is CellClass.DATA
        ]
        rng.shuffle(candidate_lines)
        for i in candidate_lines[: min(2, len(candidate_lines))]:
            remark = vocab.pick(rng, ["*", "(r)", "see note 1", "prelim."])
            builder.attach_right(i, remark, CellClass.NOTES)

    if spec.notes_lines:
        builder.add_empty_rows(spec.blank_between_sections)
        _notes_block(builder, spec, rng)
    return builder.build(name)
