"""Generator configuration dataclasses.

``TableSpec`` shapes a single table block, ``FileSpec`` a whole file,
``CorpusSpec`` an entire corpus personality.  The corpus builders in
:mod:`repro.datagen.corpora` sample Table/File specs from the ranges a
``CorpusSpec`` defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GenerationError


@dataclass
class TableSpec:
    """Shape of one table block inside a generated file.

    Attributes
    ----------
    n_numeric_cols:
        Numeric data columns (a leading string key column is always
        added, so table width is ``n_numeric_cols + 1`` plus an
        optional derived column).
    n_groups:
        Number of group sections; 0 means a flat table without group
        lines.
    rows_per_group:
        Data rows per group section (or total rows for flat tables).
    header_rows:
        Number of header lines (0 allows the headless tables the
        paper's reforged annotations discuss).
    numeric_headers:
        Use year numbers instead of words for column headers — the
        "header as data" hard case.
    group_subtotals:
        Emit a derived subtotal line after each group section.
    grand_total:
        Emit a grand-total derived line after the last section.
    derived_column:
        Append a row-sum derived column on the right.
    anchored_total_words:
        Whether derived lines lead with an aggregation keyword (e.g.
        ``Total``); unanchored lines reproduce the paper's dominant
        derived-as-data error source.
    plain_key_totals:
        For unanchored tables only: lead derived lines with an
        ordinary key name (e.g. ``United States``) instead of a
        distinctive word, making them lexically identical to data.
    subtotals_on_top:
        Place each group's derived line *above* its data rows (the
        paper observes derived lines between header and data areas,
        its main derived-as-header confusion source).
    group_column:
        Organize groups as a leading *column* instead of group lines:
        the group name appears in an extra leftmost column at the top
        of each section (spanning values go to the top-left cell, as
        in the paper's preprocessing), so group cells co-occur with
        data cells in the same line — the paper's "group as data"
        hard case.
    blank_after_header:
        Insert an empty separator line between header and data.
    blank_between_groups:
        Insert empty separator lines between group sections.
    missing_value_rate:
        Probability that a data cell is left empty.
    float_values:
        Generate decimal values instead of integers.
    thousands_separators:
        Format large integers with thousands separators.
    """

    n_numeric_cols: int = 4
    n_groups: int = 2
    rows_per_group: int = 5
    header_rows: int = 1
    numeric_headers: bool = False
    group_subtotals: bool = True
    grand_total: bool = True
    derived_column: bool = False
    anchored_total_words: bool = True
    plain_key_totals: bool = False
    subtotals_on_top: bool = False
    group_column: bool = False
    blank_after_header: bool = False
    blank_between_groups: bool = False
    missing_value_rate: float = 0.03
    float_values: bool = False
    thousands_separators: bool = True

    def __post_init__(self) -> None:
        if self.n_numeric_cols < 1:
            raise GenerationError("n_numeric_cols must be >= 1")
        if self.rows_per_group < 1:
            raise GenerationError("rows_per_group must be >= 1")
        if self.n_groups < 0:
            raise GenerationError("n_groups must be >= 0")
        if not 0.0 <= self.missing_value_rate < 1.0:
            raise GenerationError("missing_value_rate must be in [0, 1)")


@dataclass
class FileSpec:
    """Shape of one generated file."""

    domain: str = "admin"
    n_tables: int = 1
    metadata_lines: int = 2
    notes_lines: int = 2
    notes_as_table: bool = False
    notes_multicell: bool = False
    notes_right_of_table: bool = False
    metadata_as_table: bool = False
    blank_between_sections: int = 1
    metadata_split_cells: bool = False
    tables: list[TableSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_tables < 1:
            raise GenerationError("n_tables must be >= 1")
        if self.metadata_lines < 0 or self.notes_lines < 0:
            raise GenerationError("metadata/notes line counts must be >= 0")


@dataclass
class CorpusSpec:
    """Personality of a whole corpus: ranges the file sampler draws from.

    ``scale`` multiplies ``n_files`` so experiments can run on reduced
    corpora without changing the per-file structure distribution.
    """

    name: str
    domain: str
    n_files: int
    tables_per_file: tuple[int, int] = (1, 1)
    numeric_cols: tuple[int, int] = (3, 6)
    groups: tuple[int, int] = (1, 3)
    rows_per_group: tuple[int, int] = (4, 10)
    metadata_lines: tuple[int, int] = (1, 3)
    notes_lines: tuple[int, int] = (1, 3)
    header_rows: tuple[int, int] = (1, 2)
    numeric_header_rate: float = 0.1
    anchored_total_rate: float = 0.9
    plain_key_total_rate: float = 0.5
    subtotal_top_rate: float = 0.0
    multicell_notes_rate: float = 0.0
    group_column_rate: float = 0.0
    metadata_table_rate: float = 0.0
    side_notes_rate: float = 0.0
    subtotal_rate: float = 0.7
    grand_total_rate: float = 0.8
    derived_column_rate: float = 0.1
    notes_as_table_rate: float = 0.0
    metadata_split_rate: float = 0.0
    blank_after_header_rate: float = 0.2
    blank_between_groups_rate: float = 0.3
    missing_value_rate: float = 0.03
    float_value_rate: float = 0.3
    template_count: int | None = None

    def scaled_files(self, scale: float) -> int:
        """Number of files at ``scale`` (at least 2)."""
        return max(2, int(round(self.n_files * scale)))
