"""Simulation of the paper's annotation protocol (Section 6.1.1).

The GovUK ground truth was produced by three human annotators per
line, reconciled by majority vote; lines with complete disagreement
(fewer than 250 of ~110,000) went to an independent fourth annotator.
Observed disagreement affected about 1% of lines.

This module reproduces that protocol over the generated corpora:

* :class:`NoisyAnnotator` — a simulated labeller who errs with a
  configurable rate, drawing mistakes from a class-confusion prior
  that mirrors the hard pairs the paper reports (derived<->data,
  header<->data, group<->data, metadata<->notes);
* :func:`annotate_corpus` — runs three annotators plus the
  tie-breaking fourth, returning the reconciled corpus and agreement
  statistics.

Besides exercising the protocol, the reconciliation gives a handle on
*label noise*: the annotation-noise benchmark trains Strudel on
reconciled-vs-single-annotator labels to measure how much the paper's
protocol buys.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import GenerationError
from repro.types import AnnotatedFile, CellClass, Corpus
from repro.util.rng import as_generator

#: For each true class, the plausible mistakes and their relative odds
#: (mirroring the confusion structure of Figure 3).
CONFUSION_PRIOR: dict[CellClass, list[tuple[CellClass, float]]] = {
    CellClass.METADATA: [(CellClass.NOTES, 2.0), (CellClass.HEADER, 1.0),
                         (CellClass.DATA, 1.0)],
    CellClass.HEADER: [(CellClass.DATA, 2.0), (CellClass.METADATA, 1.0)],
    CellClass.GROUP: [(CellClass.DATA, 2.0), (CellClass.HEADER, 1.0)],
    CellClass.DATA: [(CellClass.DERIVED, 2.0), (CellClass.HEADER, 1.0)],
    CellClass.DERIVED: [(CellClass.DATA, 3.0), (CellClass.HEADER, 1.0)],
    CellClass.NOTES: [(CellClass.METADATA, 2.0), (CellClass.DATA, 1.0)],
}


class NoisyAnnotator:
    """A simulated human labeller with a per-line error rate."""

    def __init__(self, error_rate: float,
                 rng: int | np.random.Generator | None = None):
        if not 0.0 <= error_rate < 1.0:
            raise GenerationError("error_rate must be in [0, 1)")
        self.error_rate = error_rate
        self._rng = as_generator(rng)

    def annotate_line(self, truth: CellClass) -> CellClass:
        """This annotator's label for a line whose true class is known."""
        if truth is CellClass.EMPTY:
            return truth
        if self._rng.random() >= self.error_rate:
            return truth
        mistakes = CONFUSION_PRIOR[truth]
        weights = np.array([w for _, w in mistakes])
        weights = weights / weights.sum()
        index = int(self._rng.choice(len(mistakes), p=weights))
        return mistakes[index][0]

    def annotate_file(self, annotated: AnnotatedFile) -> list[CellClass]:
        """One label per line of the file."""
        return [self.annotate_line(label) for label in annotated.line_labels]


@dataclass
class AnnotationReport:
    """Agreement statistics from a reconciliation run."""

    total_lines: int
    unanimous: int
    majority_resolved: int
    tie_broken: int
    reconciled_errors: int

    @property
    def disagreement_rate(self) -> float:
        """Share of lines where the annotators did not all agree."""
        if self.total_lines == 0:
            return 0.0
        return 1.0 - self.unanimous / self.total_lines

    @property
    def residual_error_rate(self) -> float:
        """Share of reconciled labels that still differ from truth."""
        if self.total_lines == 0:
            return 0.0
        return self.reconciled_errors / self.total_lines


def annotate_corpus(
    corpus: Corpus,
    error_rate: float = 0.02,
    tie_breaker_error_rate: float | None = None,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Corpus, AnnotationReport]:
    """Run the three-annotator protocol over ``corpus``.

    Each non-empty line gets three independent labels; majority wins.
    Complete three-way disagreement is resolved by a fourth annotator
    who must pick one of the three candidate answers — exactly the
    paper's procedure.  Returns the reconciled corpus (cell labels are
    left untouched; the protocol was line-level) and the agreement
    report.
    """
    rng = as_generator(seed)
    annotators = [
        NoisyAnnotator(error_rate, rng=rng) for _ in range(3)
    ]
    fourth = NoisyAnnotator(
        tie_breaker_error_rate
        if tie_breaker_error_rate is not None
        else error_rate,
        rng=rng,
    )

    reconciled_files: list[AnnotatedFile] = []
    total = unanimous = majority = ties = errors = 0
    for annotated in corpus:
        votes_per_line = list(
            zip(*(a.annotate_file(annotated) for a in annotators))
        )
        labels: list[CellClass] = []
        for i, votes in enumerate(votes_per_line):
            truth = annotated.line_labels[i]
            if truth is CellClass.EMPTY:
                labels.append(CellClass.EMPTY)
                continue
            total += 1
            counts = Counter(votes)
            top, top_count = counts.most_common(1)[0]
            if top_count == 3:
                unanimous += 1
                decided = top
            elif top_count == 2:
                majority += 1
                decided = top
            else:
                # Complete disagreement: the fourth annotator picks
                # "which one of the three answers to apply".
                ties += 1
                preferred = fourth.annotate_line(truth)
                decided = preferred if preferred in votes else votes[0]
            if decided is not truth:
                errors += 1
            labels.append(decided)
        reconciled_files.append(
            AnnotatedFile(
                name=annotated.name,
                table=annotated.table,
                line_labels=labels,
                cell_labels=annotated.cell_labels,
            )
        )
    report = AnnotationReport(
        total_lines=total,
        unanimous=unanimous,
        majority_resolved=majority,
        tie_broken=ties,
        reconciled_errors=errors,
    )
    return Corpus(name=f"{corpus.name}-annotated", files=reconciled_files), report
