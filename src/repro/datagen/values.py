"""Numeric value generation and formatting for synthetic tables.

Derived lines in generated files must be *actual* aggregates of the
data above them — otherwise Algorithm 2 would have nothing to detect.
To keep formatted text and arithmetic consistent, generators first
draw a numeric matrix, round it to the display precision, and compute
all aggregates from the rounded values.
"""

from __future__ import annotations

import numpy as np


def draw_values(
    rng: np.random.Generator,
    n_rows: int,
    n_cols: int,
    float_values: bool,
) -> np.ndarray:
    """A ``(n_rows, n_cols)`` matrix of display-rounded values.

    Integers land in [10, 9999]; floats in [0.1, 999.9] with one
    decimal place.  Each column gets its own magnitude so columns look
    like distinct measures.
    """
    scales = rng.uniform(0.5, 3.0, size=n_cols)
    base = rng.uniform(10, 3000, size=(n_rows, n_cols)) * scales[None, :]
    if float_values:
        return np.round(base / 10.0, 1)
    return np.round(base)


def format_value(
    value: float,
    float_values: bool,
    thousands_separators: bool,
) -> str:
    """Format one numeric value the way verbose CSV files print them."""
    if float_values:
        return f"{value:.1f}"
    integer = int(round(value))
    if thousands_separators and abs(integer) >= 1000:
        return f"{integer:,}"
    return str(integer)
