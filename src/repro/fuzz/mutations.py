"""Deterministic byte-level mutators for the ingestion fuzz harness.

Each mutator is a pure function ``(data, rng) -> bytes`` drawing all
randomness from the explicitly seeded generator it is handed, so a
fixed harness seed replays a bit-identical mutation sequence (the
reproducibility invariant rule R001 enforces everywhere else).

The registry :data:`MUTATORS` is an ordered tuple — iteration order,
and therefore which mutator a given random index picks, never depends
on dict or set ordering.  The mutations mirror the damage classes the
hardened ingestion stage (:mod:`repro.io.ingest`) claims to survive:
byte-order marks (including lying and doubled ones), encoding mixing
and invalid UTF-8, NUL bytes, quote truncation, mid-character chops,
record-separator chaos, random byte splices and giant single lines.
"""

from __future__ import annotations

import codecs
import gzip
import io
import json
import tarfile
import zipfile
from typing import Callable
from xml.sax import saxutils

import numpy as np

#: A mutator: raw bytes plus a seeded generator in, raw bytes out.
Mutator = Callable[[bytes, np.random.Generator], bytes]

_BOMS: tuple[bytes, ...] = (
    codecs.BOM_UTF8,
    codecs.BOM_UTF16_LE,
    codecs.BOM_UTF16_BE,
    codecs.BOM_UTF32_LE,
    codecs.BOM_UTF32_BE,
)

#: Re-encodings applied by :func:`reencode`; every codec here can
#: represent arbitrary text (unlike e.g. latin-1), so the mutator
#: never raises on exotic input.
_REENCODINGS: tuple[str, ...] = ("utf-8", "utf-16-le", "utf-16-be")

#: High bytes that are invalid as UTF-8 lead bytes or form truncated
#: multi-byte sequences — the raw material for encoding damage.
_BAD_UTF8: tuple[bytes, ...] = (
    b"\x80", b"\xbf", b"\xc3", b"\xe2\x82", b"\xf0\x9f", b"\xff", b"\xfe",
)


def _index(rng: np.random.Generator, bound: int) -> int:
    """A draw in ``[0, bound)`` (``0`` when the bound is empty)."""
    return int(rng.integers(bound)) if bound > 0 else 0


def insert_bom(data: bytes, rng: np.random.Generator) -> bytes:
    """Prepend one of the five Unicode byte-order marks."""
    return _BOMS[_index(rng, len(_BOMS))] + data


def double_bom(data: bytes, rng: np.random.Generator) -> bytes:
    """Prepend a doubled UTF-8 BOM (written by BOM-blind concatenation)."""
    return codecs.BOM_UTF8 + codecs.BOM_UTF8 + data


def lying_bom(data: bytes, rng: np.random.Generator) -> bytes:
    """A UTF-16/32 BOM in front of payload bytes that stay UTF-8."""
    return _BOMS[1 + _index(rng, len(_BOMS) - 1)] + data


def reencode(data: bytes, rng: np.random.Generator) -> bytes:
    """Re-encode the (replace-decoded) payload in another codec."""
    text = data.decode("utf-8", errors="replace")
    return text.encode(_REENCODINGS[_index(rng, len(_REENCODINGS))])


def mix_encoding(data: bytes, rng: np.random.Generator) -> bytes:
    """Splice latin-1-looking high bytes into an otherwise-UTF-8 file."""
    payload = bytes(
        [0xE9, 0xFC, 0xB0, 0xA7][_index(rng, 4)]
        for _ in range(1 + _index(rng, 4))
    )
    at = _index(rng, len(data) + 1)
    return data[:at] + payload + data[at:]


def invalid_utf8(data: bytes, rng: np.random.Generator) -> bytes:
    """Insert a truncated or ill-formed UTF-8 sequence."""
    bad = _BAD_UTF8[_index(rng, len(_BAD_UTF8))]
    at = _index(rng, len(data) + 1)
    return data[:at] + bad + data[at:]


def nul_bytes(data: bytes, rng: np.random.Generator) -> bytes:
    """Sprinkle 1–8 NUL bytes at random offsets."""
    for _ in range(1 + _index(rng, 8)):
        at = _index(rng, len(data) + 1)
        data = data[:at] + b"\x00" + data[at:]
    return data


def open_quote(data: bytes, rng: np.random.Generator) -> bytes:
    """Insert an opening double quote that nothing terminates."""
    at = _index(rng, len(data) + 1)
    return data[:at] + b'"' + data[at:]


def truncate_quote(data: bytes, rng: np.random.Generator) -> bytes:
    """Cut the file just after a quote (EOF inside a quoted field)."""
    quote_at = data.find(b'"')
    if quote_at < 0:
        return open_quote(data, rng)
    keep = quote_at + 1 + _index(rng, max(1, len(data) - quote_at - 1))
    return data[:keep]


def chop(data: bytes, rng: np.random.Generator) -> bytes:
    """Truncate at an arbitrary byte offset (may split a character)."""
    return data[: _index(rng, len(data) + 1)]


def record_separator_chaos(data: bytes, rng: np.random.Generator) -> bytes:
    """Rewrite some LF record separators as CR or CRLF."""
    out = bytearray()
    for byte in data:
        if byte == 0x0A and _index(rng, 3) != 0:
            out += b"\r" if _index(rng, 2) else b"\r\n"
        else:
            out.append(byte)
    return bytes(out)


def random_splice(data: bytes, rng: np.random.Generator) -> bytes:
    """Overwrite a short window with uniformly random bytes."""
    if not data:
        return bytes(rng.integers(0, 256, size=8, dtype=np.uint8))
    at = _index(rng, len(data))
    window = 1 + _index(rng, 16)
    noise = bytes(rng.integers(0, 256, size=window, dtype=np.uint8))
    return data[:at] + noise + data[at + window:]


def giant_line(data: bytes, rng: np.random.Generator) -> bytes:
    """Append one enormous single line (8–48 KiB, many delimiters)."""
    cells = 64 * (1 + _index(rng, 6))
    cell = b"x" * (128 * (1 + _index(rng, 6)))
    return data + b",".join([cell] * cells) + b"\n"


#: Ordered registry: (name, mutator).  The harness indexes into this
#: tuple with seeded draws, so order is part of the replay contract —
#: append new mutators at the end.
MUTATORS: tuple[tuple[str, Mutator], ...] = (
    ("insert_bom", insert_bom),
    ("double_bom", double_bom),
    ("lying_bom", lying_bom),
    ("reencode", reencode),
    ("mix_encoding", mix_encoding),
    ("invalid_utf8", invalid_utf8),
    ("nul_bytes", nul_bytes),
    ("open_quote", open_quote),
    ("truncate_quote", truncate_quote),
    ("chop", chop),
    ("record_separator_chaos", record_separator_chaos),
    ("random_splice", random_splice),
    ("giant_line", giant_line),
)


# ----------------------------------------------------------------------
# Container builders for the adapter fuzz mode (repro fuzz --adapters)
# ----------------------------------------------------------------------
# Each builder assembles a *valid* container around seeded member
# texts: ``(texts, rng) -> (container_name, container_bytes)``.  The
# harness then applies the byte mutators above to the container bytes,
# producing truncated zips, mixed-encoding members, malformed NDJSON
# and unparseable XML — the damage classes the adapter layer must
# answer with a typed ``AdapterError``, never a raw stdlib exception.
# Builders are deterministic given the same draws: zip entries pin the
# 1980 epoch timestamp and tar compression uses ``gzip.compress`` with
# ``mtime=0``, so a fixed seed replays bit-identical containers.
ContainerBuilder = Callable[
    ["list[str]", np.random.Generator], "tuple[str, bytes]"
]

#: Encodings the zip builder writes members in — mixed on purpose, so
#: one archive can hold UTF-8, BOM'd UTF-16 and latin-1 members at
#: once and every member still routes through the ingest front door.
_MEMBER_ENCODINGS: tuple[str, ...] = ("utf-8", "utf-16", "latin-1")


def build_zip_container(
    texts: "list[str]", rng: np.random.Generator
) -> "tuple[str, bytes]":
    """A zip of CSV members: mixed encodings, mixed-case names,
    nested directories, occasionally a nested inner zip."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        for index, text in enumerate(texts):
            encoding = _MEMBER_ENCODINGS[
                _index(rng, len(_MEMBER_ENCODINGS))
            ]
            name = f"member{index}.csv"
            if _index(rng, 2):
                name = name.upper()
            if _index(rng, 3) == 0:
                name = f"sub/{name}"
            info = zipfile.ZipInfo(name)  # pins the 1980 timestamp
            archive.writestr(
                info, text.encode(encoding, errors="replace")
            )
        if _index(rng, 3) == 0:
            inner = io.BytesIO()
            with zipfile.ZipFile(inner, "w") as nested:
                nested.writestr(
                    zipfile.ZipInfo("nested.csv"),
                    texts[0].encode("utf-8"),
                )
            archive.writestr(zipfile.ZipInfo("inner.zip"), inner.getvalue())
    return "fuzz.zip", buffer.getvalue()


def build_tar_container(
    texts: "list[str]", rng: np.random.Generator
) -> "tuple[str, bytes]":
    """A tar of CSV members, gzip-compressed half the time."""
    buffer = io.BytesIO()
    with tarfile.open(fileobj=buffer, mode="w") as archive:
        for index, text in enumerate(texts):
            data = text.encode("utf-8")
            info = tarfile.TarInfo(f"member{index}.csv")
            info.size = len(data)
            archive.addfile(info, io.BytesIO(data))
    data = buffer.getvalue()
    if _index(rng, 2):
        return "fuzz.tgz", gzip.compress(data, mtime=0)
    return "fuzz.tar", data


def build_ndjson_container(
    texts: "list[str]", rng: np.random.Generator
) -> "tuple[str, bytes]":
    """An NDJSON log of object records with optional array fields."""
    words = [word for text in texts for word in text.split()][:64]
    if not words:
        words = ["x"]
    lines: "list[str]" = []
    for index in range(2 + _index(rng, 6)):
        record: "dict[str, object]" = {"id": index}
        if _index(rng, 2):
            record["name"] = words[_index(rng, len(words))]
        if _index(rng, 2):
            record["tags"] = [
                words[_index(rng, len(words))]
                for _ in range(1 + _index(rng, 3))
            ]
        if _index(rng, 4) == 0:
            record["flag"] = bool(_index(rng, 2))
        lines.append(json.dumps(record))
    return "fuzz.ndjson", ("\n".join(lines) + "\n").encode("utf-8")


def build_xml_container(
    texts: "list[str]", rng: np.random.Generator
) -> "tuple[str, bytes]":
    """A dblp-style XML dump: repeated elements with attributes and
    repeated (array-valued) child tags."""
    words = [word for text in texts for word in text.split()][:64]
    if not words:
        words = ["x"]
    rows: "list[str]" = []
    for index in range(1 + _index(rng, 5)):
        word = saxutils.escape(words[_index(rng, len(words))])
        authors = "".join(
            f"<author>{word}</author>"
            for _ in range(1 + _index(rng, 2))
        )
        rows.append(
            f'<article key="k{index}">{authors}'
            f"<title>{word}</title></article>"
        )
    document = f"<dblp>{''.join(rows)}</dblp>"
    return "fuzz.xml", document.encode("utf-8")


#: Ordered registry, same replay contract as :data:`MUTATORS`:
#: the harness indexes into it with seeded draws — append only.
CONTAINER_BUILDERS: tuple[tuple[str, ContainerBuilder], ...] = (
    ("zip", build_zip_container),
    ("tar", build_tar_container),
    ("ndjson", build_ndjson_container),
    ("xml", build_xml_container),
)
