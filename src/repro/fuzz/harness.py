"""The seeded ingestion fuzz harness.

:func:`run_fuzz` generates deterministic byte-level mutations (see
:mod:`repro.fuzz.mutations`) over datagen corpora plus a set of
handcrafted degenerate inputs, pushes every mutant through the
hardened ingestion stage in **both** strict and lenient mode, and
checks three properties:

1. **Totality** — every input yields either an
   :class:`~repro.io.ingest.IngestResult` or a
   :class:`~repro.errors.ReproError`; a raw ``UnicodeDecodeError`` /
   ``IndexError`` / anything else escaping is recorded as a failure.
2. **Table invariants** — accepted inputs produce a rectangular,
   non-empty table (the ``[[""]]`` sentinel at minimum).
3. **Mode parity** — when an input is accepted by both modes and no
   recovery fired, the tables and the Table-1 line feature matrices
   must be byte-identical: strict mode may only ever *reject more*,
   never *read differently*.

Everything is driven by one explicitly seeded generator
(:func:`repro.util.rng.as_generator`), so a fixed seed replays the
exact mutation sequence — the CI ``fuzz-smoke`` job and the
regression suite rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.line_features import LineFeatureExtractor
from repro.datagen.corpora import make_corpus
from repro.errors import ReproError
from repro.fuzz.mutations import CONTAINER_BUILDERS, MUTATORS
from repro.io.adapters import SourcePayload, payloads_from_bytes
from repro.io.ingest import IngestPolicy, IngestResult, ingest_bytes
from repro.io.writer import write_csv_text
from repro.util.rng import as_generator

#: Size guard used by the harness: small enough that ``giant_line``
#: mutants regularly exercise truncation and strict-mode rejection.
FUZZ_MAX_BYTES: int = 192 * 1024

#: Parity feature extraction is skipped above this cell count; the
#: point of the check is divergence, not throughput on huge mutants.
_PARITY_CELL_LIMIT: int = 100_000

#: Handcrafted degenerate bases mixed in with the generated corpus.
_EDGE_BASES: tuple[str, ...] = (
    "",
    "x",
    '"unterminated\nquoted,field',
    "a,b,c\n1,2\n,,,,,,\n",
    "just a sentence of plain text\nand another one\n",
    "col a;col b\n1;2\n3;4\n",
    "k\tv\n1\t2\n",
    "\n\n\n",
    "a,b\r1,2\r",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Workload of one fuzz run; every field shapes the replay.

    With ``adapters`` set, each iteration builds a seeded *container*
    (zip/tar/NDJSON/XML, see ``CONTAINER_BUILDERS``) around corpus
    texts, byte-mutates the container, and pushes it through the
    source-adapter layer instead of ingesting raw CSV bytes.
    """

    seed: int = 0
    iterations: int = 500
    corpus: str = "saus"
    scale: float = 0.02
    max_mutations: int = 3
    max_bytes: int = FUZZ_MAX_BYTES
    adapters: bool = False


@dataclass(frozen=True)
class FuzzFailure:
    """One contract violation: the mutant and what escaped."""

    iteration: int
    mutators: tuple[str, ...]
    mode: str
    error: str
    payload_preview: str


@dataclass
class FuzzReport:
    """Aggregated outcome of one :func:`run_fuzz` call."""

    config: FuzzConfig
    iterations: int = 0
    lenient_accepted: int = 0
    lenient_rejected: dict[str, int] = field(default_factory=dict)
    strict_accepted: int = 0
    strict_rejected: dict[str, int] = field(default_factory=dict)
    recovered: int = 0
    parity_checks: int = 0
    mutator_counts: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether every input honored the Table-or-ReproError contract."""
        return not self.failures


def _base_inputs(config: FuzzConfig) -> list[str]:
    """Deterministic pool of base texts: generated corpus + edges."""
    corpus = make_corpus(
        config.corpus, seed=config.seed, scale=config.scale
    )
    texts = [
        write_csv_text(annotated.table.rows())
        for annotated in corpus.files
    ]
    texts.extend(_EDGE_BASES)
    return texts


def _guarded_ingest(
    data: bytes, policy: IngestPolicy
) -> tuple[IngestResult | None, ReproError | None, BaseException | None]:
    """One ingest attempt bucketed into the contract's three outcomes."""
    try:
        return ingest_bytes(data, policy=policy), None, None
    except ReproError as error:
        return None, error, None
    except Exception as error:  # the crash class under test
        return None, None, error


def _check_table(result: IngestResult) -> None:
    """Structural invariants every accepted ingest must satisfy."""
    table = result.table
    n_rows, n_cols = table.shape
    assert n_rows >= 1 and n_cols >= 1, "empty table escaped the sentinel"
    for i in range(n_rows):
        assert len(table.row(i)) == n_cols, "non-rectangular table"


def run_fuzz(config: FuzzConfig | None = None) -> FuzzReport:
    """Run the harness; see the module docstring for the contract."""
    config = config or FuzzConfig()
    rng = as_generator(config.seed)
    bases = _base_inputs(config)
    lenient = IngestPolicy(max_bytes=config.max_bytes)
    strict = IngestPolicy(strict=True, max_bytes=config.max_bytes)
    extractor = LineFeatureExtractor()
    report = FuzzReport(config=config)
    if config.adapters:
        return _run_adapter_fuzz(config, rng, bases, lenient, strict, report)

    for iteration in range(config.iterations):
        base = bases[int(rng.integers(len(bases)))]
        data = base.encode("utf-8")
        names: list[str] = []
        for _ in range(1 + int(rng.integers(config.max_mutations))):
            name, mutate = MUTATORS[int(rng.integers(len(MUTATORS)))]
            data = mutate(data, rng)
            names.append(name)
            report.mutator_counts[name] = (
                report.mutator_counts.get(name, 0) + 1
            )
        report.iterations += 1
        chain = tuple(names)

        outcomes: dict[str, IngestResult | None] = {}
        for mode, policy, accepted_attr, rejected in (
            ("lenient", lenient, "lenient_accepted",
             report.lenient_rejected),
            ("strict", strict, "strict_accepted",
             report.strict_rejected),
        ):
            result, repro_error, escaped = _guarded_ingest(data, policy)
            if escaped is not None:
                report.failures.append(_failure(
                    iteration, chain, mode, escaped, data
                ))
                continue
            if repro_error is not None:
                kind = type(repro_error).__name__
                rejected[kind] = rejected.get(kind, 0) + 1
                continue
            try:
                _check_table(result)
            except AssertionError as error:
                report.failures.append(_failure(
                    iteration, chain, mode, error, data
                ))
                continue
            outcomes[mode] = result
            setattr(
                report, accepted_attr,
                getattr(report, accepted_attr) + 1,
            )
            if mode == "lenient" and result.report.recovered:
                report.recovered += 1

        # Strict rejecting inputs lenient accepts is the design; the
        # other direction (strict accepts, lenient rejects) cannot
        # happen because lenient never raises after decode succeeds.
        report.failures.extend(
            _parity_failures(iteration, chain, data, outcomes, extractor)
        )
        report.parity_checks += _counted_parity(outcomes)

    return report


def _run_adapter_fuzz(
    config: FuzzConfig,
    rng,
    bases: list[str],
    lenient: IngestPolicy,
    strict: IngestPolicy,
    report: FuzzReport,
) -> FuzzReport:
    """The adapter mode: build a container, mutate it, enumerate it.

    Contract per iteration and mode: the container either enumerates
    fully — every payload routed through ``ingest_bytes`` yields a
    valid table — or raises a typed :class:`~repro.errors.ReproError`
    (:class:`~repro.errors.AdapterError` for container damage); raw
    ``zipfile``/``tarfile``/``json``/``xml`` exceptions are failures.
    Parity: whenever *strict* enumeration succeeds, no repair was
    needed anywhere, so lenient enumeration of the same bytes must
    produce an identical ``(provenance, bytes)`` payload sequence.
    """
    for iteration in range(config.iterations):
        kind, build = CONTAINER_BUILDERS[
            int(rng.integers(len(CONTAINER_BUILDERS)))
        ]
        members = [
            bases[int(rng.integers(len(bases)))]
            for _ in range(1 + int(rng.integers(3)))
        ]
        name, data = build(members, rng)
        names = [f"container:{kind}"]
        # Zero mutations is a valid draw: pristine containers must
        # enumerate cleanly in both modes.
        for _ in range(int(rng.integers(config.max_mutations + 1))):
            mutator_name, mutate = MUTATORS[
                int(rng.integers(len(MUTATORS)))
            ]
            data = mutate(data, rng)
            names.append(mutator_name)
        for applied in names:
            report.mutator_counts[applied] = (
                report.mutator_counts.get(applied, 0) + 1
            )
        report.iterations += 1
        chain = tuple(names)

        outcomes: dict[str, list[SourcePayload] | None] = {}
        for mode, policy, accepted_attr, rejected in (
            ("lenient", lenient, "lenient_accepted",
             report.lenient_rejected),
            ("strict", strict, "strict_accepted",
             report.strict_rejected),
        ):
            payloads, recovered, repro_error, escaped = (
                _guarded_enumerate(name, data, policy)
            )
            if escaped is not None:
                report.failures.append(_failure(
                    iteration, chain, mode, escaped, data
                ))
                continue
            if repro_error is not None:
                kind_name = type(repro_error).__name__
                rejected[kind_name] = rejected.get(kind_name, 0) + 1
                continue
            outcomes[mode] = payloads
            setattr(
                report, accepted_attr,
                getattr(report, accepted_attr) + 1,
            )
            if mode == "lenient" and recovered:
                report.recovered += 1

        strict_payloads = outcomes.get("strict")
        if strict_payloads is None:
            continue
        lenient_payloads = outcomes.get("lenient")
        if lenient_payloads is None:
            report.failures.append(_failure(
                iteration, chain, "parity",
                AssertionError(
                    "strict enumeration succeeded but lenient failed"
                ),
                data,
            ))
            continue
        if (
            [(p.provenance, p.data) for p in lenient_payloads]
            != [(p.provenance, p.data) for p in strict_payloads]
        ):
            report.failures.append(_failure(
                iteration, chain, "parity",
                AssertionError(
                    "payload sequences differ between modes"
                ),
                data,
            ))
            continue
        report.parity_checks += 1

    return report


def _guarded_enumerate(
    name: str, data: bytes, policy: IngestPolicy
) -> tuple[
    list[SourcePayload] | None, bool, ReproError | None,
    BaseException | None,
]:
    """Enumerate one container and ingest every payload, bucketed
    into the contract's outcomes; the bool is whether any lenient
    repair fired along the way."""
    payloads: list[SourcePayload] = []
    recovered = False
    try:
        for payload in payloads_from_bytes(name, data, policy):
            payloads.append(payload)
            result = ingest_bytes(payload.data, policy=policy)
            _check_table(result)
            recovered = recovered or result.report.recovered
        return payloads, recovered, None, None
    except ReproError as error:
        return None, recovered, error, None
    except Exception as error:  # the crash class under test
        return None, recovered, None, error


def _counted_parity(outcomes: dict[str, IngestResult | None]) -> int:
    lenient = outcomes.get("lenient")
    strict = outcomes.get("strict")
    if lenient is None or strict is None:
        return 0
    if lenient.report.recovered or strict.report.recovered:
        return 0
    return 1


def _parity_failures(
    iteration: int,
    chain: tuple[str, ...],
    data: bytes,
    outcomes: dict[str, IngestResult | None],
    extractor: LineFeatureExtractor,
) -> list[FuzzFailure]:
    """Strict-vs-lenient byte-identity when no recovery fired."""
    if not _counted_parity(outcomes):
        return []
    lenient = outcomes["lenient"]
    strict = outcomes["strict"]
    problems: list[str] = []
    if lenient.text != strict.text:
        problems.append("cleaned text differs between modes")
    if lenient.table != strict.table:
        problems.append("parsed tables differ between modes")
    else:
        n_rows, n_cols = lenient.table.shape
        if n_rows * n_cols <= _PARITY_CELL_LIMIT:
            a = extractor.extract(lenient.table)
            b = extractor.extract(strict.table)
            if a.tobytes() != b.tobytes():
                problems.append("line feature matrices differ")
    return [
        _failure(iteration, chain, "parity", AssertionError(p), data)
        for p in problems
    ]


def _failure(
    iteration: int,
    chain: tuple[str, ...],
    mode: str,
    error: BaseException,
    data: bytes,
) -> FuzzFailure:
    preview = repr(data[:80])
    return FuzzFailure(
        iteration=iteration,
        mutators=chain,
        mode=mode,
        error=f"{type(error).__name__}: {error}",
        payload_preview=preview,
    )


def format_fuzz_report(report: FuzzReport, max_failures: int = 10) -> str:
    """Human-readable summary printed by ``repro fuzz``."""
    lines = [
        f"iterations            {report.iterations}",
        f"lenient accepted      {report.lenient_accepted} "
        f"({report.recovered} with recovery)",
        f"lenient rejected      {_kinds(report.lenient_rejected)}",
        f"strict accepted       {report.strict_accepted}",
        f"strict rejected       {_kinds(report.strict_rejected)}",
        f"parity checks         {report.parity_checks}",
        f"mutations applied     {_kinds(report.mutator_counts)}",
    ]
    if report.ok:
        lines.append("result                OK — no contract violations")
    else:
        lines.append(
            f"result                {len(report.failures)} FAILURE(S)"
        )
        for failure in report.failures[:max_failures]:
            lines.append(
                f"  iteration {failure.iteration} "
                f"[{'+'.join(failure.mutators)}] {failure.mode}: "
                f"{failure.error} on {failure.payload_preview}"
            )
        hidden = len(report.failures) - max_failures
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
    return "\n".join(lines)


def _kinds(counts: dict[str, int]) -> str:
    if not counts:
        return "0"
    total = sum(counts.values())
    parts = ", ".join(
        f"{name}={counts[name]}" for name in sorted(counts)
    )
    return f"{total} ({parts})"
