"""Seeded byte-level fuzzing of the hardened ingestion stage.

The harness locks in the ingestion contract of
:mod:`repro.io.ingest`: any byte string yields a ``Table`` or a
``ReproError`` — never a raw decoding or indexing exception — and
strict/lenient mode are byte-identical whenever no recovery fired.
Run it as ``repro fuzz --seed 0 --iterations 500`` (the CI
``fuzz-smoke`` job) or through :func:`run_fuzz`.
"""

from repro.fuzz.harness import (
    FuzzConfig,
    FuzzFailure,
    FuzzReport,
    format_fuzz_report,
    run_fuzz,
)
from repro.fuzz.mutations import MUTATORS, Mutator

__all__ = [
    "FuzzConfig",
    "FuzzFailure",
    "FuzzReport",
    "MUTATORS",
    "Mutator",
    "format_fuzz_report",
    "run_fuzz",
]
