"""RNN-C — recurrent cell classification over content embeddings.

The comparison baseline of Ghasemi-Gol et al. (ICDM 2019): cells are
embedded, a bidirectional recurrent network propagates context along
each line, and every cell receives a softmax class.  The paper
evaluates the authors' style-less variant, which is what this module
reproduces (see :mod:`repro.baselines.embeddings` for the embedding
substitution note).
"""

from __future__ import annotations

import numpy as np

from repro.baselines.embeddings import embed_rows
from repro.errors import NotFittedError
from repro.ml.rnn import SequenceRNNClassifier
from repro.types import (
    CLASS_TO_INDEX,
    INDEX_TO_CLASS,
    AnnotatedFile,
    CellClass,
    Table,
)


class RNNCellClassifier:
    """Bidirectional RNN over per-line cell embedding sequences.

    Parameters
    ----------
    hidden_size, epochs, learning_rate, batch_size, random_state:
        Passed through to the underlying
        :class:`~repro.ml.rnn.SequenceRNNClassifier`.
    """

    def __init__(
        self,
        hidden_size: int = 32,
        epochs: int = 12,
        learning_rate: float = 1e-2,
        batch_size: int = 64,
        random_state: int | None = None,
    ):
        self._rnn = SequenceRNNClassifier(
            hidden_size=hidden_size,
            epochs=epochs,
            learning_rate=learning_rate,
            batch_size=batch_size,
            random_state=random_state,
        )
        self._fitted = False

    # ------------------------------------------------------------------
    def fit(self, files: list[AnnotatedFile]) -> "RNNCellClassifier":
        """Train on the non-empty cell sequences of ``files``."""
        sequences: list[np.ndarray] = []
        labels: list[np.ndarray] = []
        for annotated in files:
            positions, embedded = embed_rows(annotated.table)
            for line_positions, sequence in zip(positions, embedded):
                sequences.append(sequence)
                labels.append(
                    np.array(
                        [
                            CLASS_TO_INDEX[annotated.cell_labels[i][j]]
                            for i, j in line_positions
                        ]
                    )
                )
        self._rnn.fit(sequences, labels)
        self._fitted = True
        return self

    # ------------------------------------------------------------------
    def predict_with_positions(
        self, table: Table
    ) -> tuple[list[tuple[int, int]], list[CellClass]]:
        """Positions and predicted classes of all non-empty cells."""
        if not self._fitted:
            raise NotFittedError("RNNCellClassifier must be fitted first")
        positions, embedded = embed_rows(table)
        flat_positions: list[tuple[int, int]] = []
        flat_labels: list[CellClass] = []
        if embedded:
            predictions = self._rnn.predict(embedded)
            for line_positions, path in zip(positions, predictions):
                flat_positions.extend(line_positions)
                flat_labels.extend(INDEX_TO_CLASS[int(k)] for k in path)
        return flat_positions, flat_labels

    def predict(self, table: Table) -> dict[tuple[int, int], CellClass]:
        """Mapping from non-empty cell positions to predicted classes."""
        positions, labels = self.predict_with_positions(table)
        return dict(zip(positions, labels))
